"""E21: the provenance plane — cost, lineage fidelity, and replay verify.

Three claims:

* **The ledger is effectively free.**  Recording a provenance event is
  one bounded-deque append behind an ``enabled`` check, so a steady-state
  write+read with the ledger on must stay within ``OVERHEAD_BOUND`` of
  the identical workload with it off (health plane on in both — its own
  cost is E17's claim).

* **The DAG tells the truth.**  After a partition conflict and an
  automatic resolve, the composed cross-host DAG holds the invariants
  ARCHITECTURE.md promises: every live ``(fh, vv)`` has a node, the
  merge head has >= 2 parents, and ``feeds_of_conflict`` names exactly
  the per-branch write sets.

* **Histories replay byte-identically.**  A recorded chaos workload
  re-executed on a fresh cluster converges to the same trees, version
  vectors, and provenance ledgers (replicate-and-verify).

``provenance_snapshot()`` produces the BENCH_provenance.json payload
that report_all.py writes.  Run directly (``python
benchmarks/bench_provenance.py --fast``) it sizes the workload down and
exits non-zero if any bound is violated — the CI gate.
"""

import json
import sys
import time

from repro.sim import DaemonConfig, FicusSystem
from repro.workload.chaos import ChaosConfig, run_chaos

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: enabled/disabled steady-state cost ratio the CI gate enforces
OVERHEAD_BOUND = 1.05

#: the chaos seed replicate-and-verify replays (must stay deterministic)
VERIFY_SEED = 7


def _steady_state_fs(ledger_on: bool):
    system = FicusSystem(["solo"], daemon_config=QUIET)
    for host in system.hosts.values():
        host.health_plane.provenance.enabled = ledger_on
    fs = system.host("solo").fs()
    fs.write_file("/f", b"warm")
    return fs


def measure_overhead(
    ops: int = 200, repeats: int = 9
) -> tuple[float, float, float]:
    """(disabled_s_per_op, enabled_s_per_op, ratio) for a write+read loop.

    The two arms alternate chunk-by-chunk so a machine-load spike hits
    both rather than skewing one; the gated ratio is the **median of the
    paired per-chunk ratios** (robust to spikes in either direction),
    while the reported absolute times are each arm's best chunk.
    """
    fs_off = _steady_state_fs(ledger_on=False)
    fs_on = _steady_state_fs(ledger_on=True)
    best = {False: float("inf"), True: float("inf")}
    ratios = []
    for _ in range(repeats):
        pair = {}
        for ledger_on, fs in ((False, fs_off), (True, fs_on)):
            start = time.perf_counter()
            for _ in range(ops):
                fs.write_file("/f", b"x" * 64)
                fs.read_file("/f")
            pair[ledger_on] = (time.perf_counter() - start) / ops
            best[ledger_on] = min(best[ledger_on], pair[ledger_on])
        ratios.append(pair[True] / pair[False])
    ratios.sort()
    return best[False], best[True], ratios[len(ratios) // 2]


def lineage_scenario() -> dict:
    """Conflict + auto-resolve; check the published DAG invariants."""
    system = FicusSystem(["west", "east"])
    system.enable_resolvers()
    west = system.host("west").fs()
    east = system.host("east").fs()
    west.mkdir("/d")
    west.write_file("/d/box.log", b"base\n")
    west.set_merge_policy("/d/box.log", "append-log")
    system.reconcile_everything()

    system.partition([{"west"}, {"east"}])
    west.write_file("/d/box.log", b"base\nwest\n")
    east.write_file("/d/box.log", b"base\neast\n")

    # snapshot the feed sets while the conflict is open
    pre = system.provenance_dag()
    conflicted = [fh for fh in pre.file_handles() if len(pre.heads(fh)) >= 2]
    feeds_exact = False
    if conflicted:
        feeds = pre.feeds_of_conflict(conflicted[0])
        hosts_per_branch = sorted(
            tuple(sorted({e.host for e in events})) for events in feeds.values()
        )
        feeds_exact = hosts_per_branch == [("east",), ("west",)]

    system.heal()
    system.reconcile_everything(rounds=6)
    dag = system.provenance_dag()

    merge_parent_counts = []
    live_versions = 0
    versions_ledgered = 0
    for name in ("west", "east"):
        host = system.host(name)
        for store in host.physical.stores.values():
            for dir_fh in store.all_directory_handles():
                for entry in store.read_entries(dir_fh):
                    fh = entry.fh.logical
                    if not entry.live or not store.has_file(dir_fh, fh):
                        continue
                    vv = store.read_file_aux(dir_fh, fh).vv
                    if not vv:
                        continue
                    live_versions += 1
                    if dag.node(fh.to_hex(), vv.encode()) is not None:
                        versions_ledgered += 1
    for fh in dag.file_handles():
        for node in dag.nodes_for(fh):
            if node.is_merge:
                merge_parent_counts.append(len(node.parents))
    return {
        "conflict_detected": bool(conflicted),
        "feeds_of_conflict_exact": feeds_exact,
        "converged_identical": (
            west.read_file("/d/box.log") == east.read_file("/d/box.log")
        ),
        "open_conflicts_after": system.total_conflicts(),
        "live_versions": live_versions,
        "versions_ledgered": versions_ledgered,
        "every_live_version_has_node": live_versions == versions_ledgered,
        "merge_nodes": len(merge_parent_counts),
        "all_merges_have_2plus_parents": bool(merge_parent_counts)
        and all(n >= 2 for n in merge_parent_counts),
    }


def verify_scenario(seed: int = VERIFY_SEED) -> dict:
    """Record one chaos run and replay it on a fresh cluster."""
    report = run_chaos(seed, ChaosConfig(verify_replication=True))
    verify = report.verify
    return {
        "seed": seed,
        "converged": report.converged,
        "ops_recorded": len(report.history),
        "ops_replayed": verify.ops_replayed if verify else 0,
        "replay_identical": bool(verify and verify.identical),
        "problems": list(verify.problems) if verify else ["verify did not run"],
    }


def provenance_snapshot(fast: bool = False) -> dict:
    """The BENCH_provenance.json payload."""
    ops = 120 if fast else 300
    off, on, ratio = measure_overhead(ops=ops)
    return {
        "overhead": {
            "disabled_us_per_op": off * 1e6,
            "enabled_us_per_op": on * 1e6,
            "ratio": ratio,
            "bound": f"<= {OVERHEAD_BOUND}x (median of paired chunks)",
        },
        "lineage_scenario": lineage_scenario(),
        "replicate_and_verify": verify_scenario(),
    }


def check_bounds(snapshot: dict) -> list[str]:
    """The CI gate: returns a list of violated bounds (empty = pass)."""
    violations = []
    ratio = snapshot["overhead"]["ratio"]
    if ratio > OVERHEAD_BOUND:
        violations.append(
            f"provenance ledger overhead {ratio:.3f}x (bound: {OVERHEAD_BOUND}x)"
        )
    scenario = snapshot["lineage_scenario"]
    for key in (
        "conflict_detected",
        "feeds_of_conflict_exact",
        "converged_identical",
        "every_live_version_has_node",
        "all_merges_have_2plus_parents",
    ):
        if not scenario[key]:
            violations.append(f"lineage scenario: {key} is False")
    if scenario["open_conflicts_after"] != 0:
        violations.append(
            f"lineage scenario left {scenario['open_conflicts_after']} open conflicts"
        )
    verify = snapshot["replicate_and_verify"]
    if not verify["converged"]:
        violations.append(f"chaos seed {verify['seed']} did not converge")
    if not verify["replay_identical"]:
        violations.append(
            f"replicate-and-verify diverged on seed {verify['seed']}: "
            + "; ".join(verify["problems"][:3])
        )
    return violations


class TestShape:
    def test_lineage_scenario_invariants(self):
        scenario = lineage_scenario()
        assert scenario["conflict_detected"]
        assert scenario["feeds_of_conflict_exact"]
        assert scenario["converged_identical"]
        assert scenario["open_conflicts_after"] == 0
        assert scenario["every_live_version_has_node"]
        assert scenario["all_merges_have_2plus_parents"]

    def test_replicate_and_verify_identical(self):
        verify = verify_scenario()
        assert verify["converged"]
        assert verify["replay_identical"], verify["problems"]
        assert verify["ops_replayed"] > 0

    def test_overhead_is_small(self):
        # the hard 1.05x gate runs in main(); under pytest parallel load
        # timing is too noisy for that, so only guard against regressions
        # an order of magnitude past the budget
        _, _, ratio = measure_overhead(ops=80, repeats=3)
        assert ratio < 1.5


def test_bench_write_read_ledger_off(benchmark):
    fs = _steady_state_fs(ledger_on=False)

    def op():
        fs.write_file("/f", b"x" * 64)
        return fs.read_file("/f")

    benchmark(op)


def test_bench_write_read_ledger_on(benchmark):
    fs = _steady_state_fs(ledger_on=True)

    def op():
        fs.write_file("/f", b"x" * 64)
        return fs.read_file("/f")

    benchmark(op)


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    snapshot = provenance_snapshot(fast=fast)
    print(json.dumps(snapshot, indent=2, default=str))
    violations = check_bounds(snapshot)
    for violation in violations:
        print(f"BOUND VIOLATED: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
