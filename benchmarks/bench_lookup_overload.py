"""E10 (Section 2.3): Ficus operations across an unmodified NFS hop.

The paper smuggled open/close through the lookup service as encoded name
strings because NFS would pass a name "without interpretation or
interference".  This repo has since promoted open/close to first-class
``session_open``/``session_close`` vnode operations carried natively by
the RPC protocol; only the directory-mutation ops (insert/remove/shadow/
commit/...) still ride the lookup encoding.

Shape tests: session boundaries traverse a real NFS hop and have their
effect at the far physical layer; plain vnode open/close does NOT; the
remaining insert encoding still leaves a user-name budget of well over
150 characters (paper: "255 to about 200").
"""

import pytest

from repro.physical import max_user_name_length
from repro.sim import DaemonConfig, FicusSystem
from repro.ufs import MAX_NAME_LEN
from repro.vv import VersionVector

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def remote_world():
    """Logical layer on 'client', the only replica on 'server'."""
    system = FicusSystem(["server", "client"], root_volume_hosts=["server"], daemon_config=QUIET)
    return system, system.host("server"), system.host("client")


class TestShape:
    def test_open_close_effective_across_nfs(self):
        """Through the session ops, a 3-write session on a REMOTE replica
        still counts as one update."""
        system, server, client = remote_world()
        fs = client.fs()
        with fs.open("/f", "w") as f:
            f.write(b"one")
            f.write(b"two")
            f.write(b"three")
        volrep = system.root_locations[0].volrep
        store = server.physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        assert store.read_file_aux(store.root_handle(), fh).vv.total_updates == 1

    def test_plain_vnode_open_is_dropped_by_nfs(self):
        """The problem session ops solve: a plain open on an NFS client
        vnode never reaches the server's physical layer."""
        system, server, client = remote_world()
        nfs_mount = client.fabric.nfs_mount("server")
        remote_root = nfs_mount.root()
        remote_root.open()
        assert nfs_mount.counters.by_op.get("open-dropped") == 1
        assert "open" not in server.physical.counters.by_op

    def test_name_budget_about_200(self, capsys):
        budget = max_user_name_length()
        with capsys.disabled():
            print(
                f"\n[E10] name component budget: UFS limit={MAX_NAME_LEN}, "
                f"after insert encoding={budget} (paper: 255 -> about 200)"
            )
        assert budget >= 150

    def test_long_user_names_survive_up_to_budget(self):
        system, server, client = remote_world()
        fs = client.fs()
        budget = max_user_name_length()
        longest = "n" * budget
        fs.write_file("/" + longest, b"fits")
        assert fs.read_file("/" + longest) == b"fits"
        from repro.errors import NameTooLong

        with pytest.raises(NameTooLong):
            fs.write_file("/" + "n" * (budget + 1), b"too long")

    def test_hostile_names_round_trip_the_encoding(self):
        system, server, client = remote_world()
        fs = client.fs()
        for name in ["with space", "eq=uals", "pi|pe", "back\\slash", "mixed =|\\ all"]:
            fs.write_file("/" + name, name.encode())
            assert fs.read_file("/" + name) == name.encode()

    def test_commit_over_lookup_across_nfs(self):
        system, server, client = remote_world()
        fs = client.fs()
        fs.write_file("/f", b"v1")
        volrep = system.root_locations[0].volrep
        store = server.physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        remote_root = client.fabric.volume_root("server", volrep)
        from repro.physical import op_commit, op_shadow

        remote_root.lookup(op_shadow(fh)).write(0, b"v2 via lookup-encoded commit")
        remote_root.lookup(op_commit(fh, VersionVector({1: 5})))
        assert fs.read_file("/f") == b"v2 via lookup-encoded commit"


def test_bench_session_open_close_roundtrip(benchmark):
    system, server, client = remote_world()
    fs = client.fs()
    fs.write_file("/f", b"x")
    volrep = system.root_locations[0].volrep
    remote_root = client.fabric.volume_root("server", volrep)
    store = server.physical.store_for(volrep)
    fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")

    def run():
        remote_root.session_open(fh)
        remote_root.session_close(fh)

    benchmark(run)


def test_bench_session_write_vs_bare_writes(benchmark):
    """Cost of a 5-write session (incl. the two session RPCs)."""
    system, server, client = remote_world()
    fs = client.fs()
    fs.write_file("/f", b"x")

    def run():
        with fs.open("/f", "a") as f:
            for _ in range(5):
                f.write(b"y")

    benchmark(run)
