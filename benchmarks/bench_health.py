"""E17: the consistency observability plane — cost and correctness.

Two claims:

* **The plane is effectively free.**  The always-on hooks are attribute
  checks, dict scans, and one bounded-deque append per vnode operation,
  so a steady-state write+read with the health plane enabled must stay
  within ``OVERHEAD_BOUND`` of the same workload with it disabled
  (telemetry off in both, its cost is measured separately in E14; the
  provenance ledger off in both, its cost is measured in E21).

* **The gauges tell the truth.**  A write during a partition raises
  divergence suspicion for the unreachable replica hosts immediately;
  a completed reconciliation round after heal clears it.  The flight
  ring stays bounded no matter how many operations run, and an anomaly
  dump renders offline through ``ficus_top``.

``health_snapshot()`` produces the BENCH_health.json payload that
report_all.py writes.  Run directly (``python benchmarks/bench_health.py
--fast``) it sizes the workload down and exits non-zero if any bound is
violated — the CI gate.
"""

import json
import sys
import tempfile
import time

from repro.sim import DaemonConfig, FicusSystem
from repro.telemetry import FLIGHT_RING_CAPACITY

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: enabled/disabled steady-state cost ratio the CI gate enforces
OVERHEAD_BOUND = 1.05


def _steady_state_fs(health: bool):
    system = FicusSystem(["solo"], daemon_config=QUIET, health=health)
    if health:
        # isolate the health plane's own cost: the provenance ledger it
        # hosts is a separate plane, A/B-measured by bench_provenance
        # (E21) the same way telemetry is measured by E14
        for host in system.hosts.values():
            host.health_plane.provenance.enabled = False
    fs = system.host("solo").fs()
    fs.write_file("/f", b"warm")
    return fs


def measure_overhead(ops: int = 200, repeats: int = 5) -> tuple[float, float]:
    """(disabled_seconds_per_op, enabled_seconds_per_op) for a write+read."""
    results = []
    for health in (False, True):
        fs = _steady_state_fs(health)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(ops):
                fs.write_file("/f", b"x" * 64)
                fs.read_file("/f")
            best = min(best, (time.perf_counter() - start) / ops)
        results.append(best)
    return results[0], results[1]


def partition_scenario() -> dict:
    """Suspicion raised by a partitioned write, cleared by reconciliation."""
    system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
    fs = system.host("a").fs()
    fs.write_file("/doc", b"agreed")
    system.reconcile_everything()

    system.partition([{"a"}, {"b", "c"}])
    fs.write_file("/doc", b"partitioned edit")
    during = system.host("a").health()
    raised = during.divergence_suspected
    suspected_peers = sorted(
        {peer for peers in during.suspected.values() for peer in peers}
    )
    flagged_read = fs.read_file_checked("/doc").divergence_suspected

    system.heal()
    system.reconcile_everything()
    after = system.host("a").health()
    cleared = not after.divergence_suspected
    clean_read = not fs.read_file_checked("/doc").divergence_suspected
    return {
        "suspicion_raised_during_partition": raised,
        "suspected_peers": suspected_peers,
        "checked_read_flagged": flagged_read,
        "suspicion_cleared_after_recon": cleared,
        "checked_read_clean_after_recon": clean_read,
    }


def recorder_scenario(ops: int = FLIGHT_RING_CAPACITY + 44) -> dict:
    """The flight ring stays bounded; an anomaly dump renders offline."""
    from repro.tools.ficus_top import render_dump

    system = FicusSystem(["solo"], daemon_config=QUIET)
    fs = system.host("solo").fs()
    for i in range(ops):
        fs.write_file("/f", b"x")
    plane = system.host("solo").health_plane
    ring_size = len(plane.recorder.ring)

    with tempfile.TemporaryDirectory() as tmp:
        plane.recorder.dump_dir = tmp
        plane.anomaly("pull_digest_mismatch", fh="synthetic", block=0)
        rendered = render_dump(plane.recorder.dump_paths[-1])
    return {
        "ops_recorded": ops * 4,  # open/truncate/write/close per write_file
        "ring_capacity": FLIGHT_RING_CAPACITY,
        "ring_size": ring_size,
        "ring_bounded": ring_size <= FLIGHT_RING_CAPACITY,
        "dump_renders": "pull_digest_mismatch" in rendered,
    }


def health_snapshot(fast: bool = False) -> dict:
    """The BENCH_health.json payload."""
    ops = 120 if fast else 300
    off, on = measure_overhead(ops=ops)
    return {
        "overhead": {
            "disabled_us_per_op": off * 1e6,
            "enabled_us_per_op": on * 1e6,
            "ratio": on / off if off else 1.0,
            "bound": f"<= {OVERHEAD_BOUND}x",
        },
        "partition_scenario": partition_scenario(),
        "flight_recorder": recorder_scenario(),
    }


def check_bounds(snapshot: dict) -> list[str]:
    """The CI gate: returns a list of violated bounds (empty = pass)."""
    violations = []
    ratio = snapshot["overhead"]["ratio"]
    if ratio > OVERHEAD_BOUND:
        violations.append(
            f"health plane overhead {ratio:.3f}x (bound: {OVERHEAD_BOUND}x)"
        )
    scenario = snapshot["partition_scenario"]
    for key in (
        "suspicion_raised_during_partition",
        "checked_read_flagged",
        "suspicion_cleared_after_recon",
        "checked_read_clean_after_recon",
    ):
        if not scenario[key]:
            violations.append(f"partition scenario: {key} is False")
    recorder = snapshot["flight_recorder"]
    if not recorder["ring_bounded"]:
        violations.append(f"flight ring grew to {recorder['ring_size']} entries")
    if not recorder["dump_renders"]:
        violations.append("flight-recorder dump did not render offline")
    return violations


class TestShape:
    def test_partition_scenario_gauges(self):
        scenario = partition_scenario()
        assert scenario["suspicion_raised_during_partition"]
        assert scenario["suspected_peers"] == ["b", "c"]
        assert scenario["checked_read_flagged"]
        assert scenario["suspicion_cleared_after_recon"]
        assert scenario["checked_read_clean_after_recon"]

    def test_flight_ring_bounded_and_dump_renders(self):
        recorder = recorder_scenario()
        assert recorder["ring_size"] == FLIGHT_RING_CAPACITY
        assert recorder["dump_renders"]

    def test_overhead_is_small(self):
        # the hard 1.05x gate runs in main(); under pytest parallel load
        # timing is too noisy for that, so only guard against regressions
        # an order of magnitude past the budget
        off, on = measure_overhead(ops=80, repeats=3)
        assert on / off < 1.5


def test_bench_write_read_health_off(benchmark):
    fs = _steady_state_fs(health=False)

    def op():
        fs.write_file("/f", b"x" * 64)
        return fs.read_file("/f")

    benchmark(op)


def test_bench_write_read_health_on(benchmark):
    fs = _steady_state_fs(health=True)

    def op():
        fs.write_file("/f", b"x" * 64)
        return fs.read_file("/f")

    benchmark(op)


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    snapshot = health_snapshot(fast=fast)
    print(json.dumps(snapshot, indent=2, default=str))
    violations = check_bounds(snapshot)
    for violation in violations:
        print(f"BOUND VIOLATED: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
