"""E13 (Section 1's scale argument): cost as the system grows.

The paper's design decisions are all justified by scale: no global state,
no quorums, per-replica independence.  These benchmarks check that the
implementation actually has the scaling shape those decisions buy:

* a local update's cost does not grow with the number of HOSTS in the
  system (only notification fan-out grows, and those are fire-and-forget
  datagrams);
* pathname translation cost is independent of cluster size;
* one reconciliation pass is pairwise — its cost tracks divergence, not
  cluster size;
* autograft lookup cost is independent of how many volumes exist.
"""

import pytest

from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

CLUSTER_SIZES = [2, 4, 8, 16]


def build(n_hosts: int, replicas: int = 2) -> FicusSystem:
    hosts = [f"h{i}" for i in range(n_hosts)]
    return FicusSystem(hosts, root_volume_hosts=hosts[:replicas], daemon_config=QUIET)


class TestShape:
    def test_update_rpc_cost_independent_of_cluster_size(self, capsys):
        """Writes touch one replica + datagrams; RPCs must not scale with
        the host count."""
        rows = {}
        for n in CLUSTER_SIZES:
            system = build(n)
            fs = system.host("h0").fs()
            fs.write_file("/warm", b"x")
            before = system.network.stats.rpcs_sent
            fs.write_file("/f", b"payload")
            rows[n] = system.network.stats.rpcs_sent - before
        with capsys.disabled():
            print("\n[E13] RPCs for one create+write vs cluster size:", rows)
        assert max(rows.values()) <= min(rows.values()) + 2

    def test_datagram_fanout_tracks_replicas_not_hosts(self):
        """Notification goes to hosts holding OTHER replicas — adding
        non-replica hosts must not add datagrams."""
        fanouts = {}
        for n in [4, 16]:
            system = build(n, replicas=3)
            fs = system.host("h0").fs()
            before = system.network.stats.datagrams_sent
            fs.write_file("/f", b"x")
            fanouts[n] = system.network.stats.datagrams_sent - before
        assert fanouts[4] == fanouts[16]

    def test_lookup_cost_independent_of_cluster_size(self, capsys):
        rows = {}
        for n in CLUSTER_SIZES:
            system = build(n)
            fs = system.host("h0").fs()
            fs.makedirs("/a/b/c")
            fs.write_file("/a/b/c/leaf", b"x")
            fs.read_file("/a/b/c/leaf")
            before = system.network.stats.rpcs_sent
            fs.read_file("/a/b/c/leaf")
            rows[n] = system.network.stats.rpcs_sent - before
        with capsys.disabled():
            print("[E13] RPCs for one deep read vs cluster size:", rows)
        assert max(rows.values()) <= min(rows.values()) + 2

    def test_recon_is_pairwise(self):
        """One reconciliation pass contacts ONE peer regardless of how
        many replicas the volume has."""
        costs = {}
        for replicas in [2, 4, 8]:
            system = build(8, replicas=replicas)
            system.host("h0").fs().write_file("/f", b"x")
            before = system.network.stats.rpcs_sent
            system.host("h1").recon_daemon.tick()
            costs[replicas] = system.network.stats.rpcs_sent - before
        assert max(costs.values()) <= min(costs.values()) + 2


@pytest.mark.parametrize("n_hosts", CLUSTER_SIZES)
def test_bench_write_at_scale(benchmark, n_hosts):
    system = build(n_hosts)
    fs = system.host("h0").fs()
    counter = iter(range(10**9))
    benchmark(lambda: fs.write_file(f"/f{next(counter)}", b"scaled"))


@pytest.mark.parametrize("n_hosts", [2, 8])
def test_bench_cluster_construction(benchmark, n_hosts):
    benchmark(build, n_hosts)
