"""E2 (Section 6): the cost of crossing a layer boundary.

"The actual cost of crossing a layer boundary is low — one additional
procedure call, one pointer indirection, and storage for another vnode
block."  We stack 0..16 null layers over UFS and measure getattr latency;
the per-crossing increment is the measured analogue of that claim.
"""

import time

import pytest

from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import UfsLayer, build_null_stack

DEPTHS = [0, 1, 2, 4, 8, 16]


def make_stack(depth: int):
    base = UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=64))
    top = build_null_stack(base, depth)
    root = top.root()
    root.create("probe").write(0, b"x")
    return top, root


@pytest.mark.parametrize("depth", DEPTHS)
def test_bench_getattr_through_layers(benchmark, depth):
    _, root = make_stack(depth)
    probe = root.lookup("probe")
    benchmark(probe.getattr)


@pytest.mark.parametrize("depth", DEPTHS)
def test_bench_lookup_through_layers(benchmark, depth):
    _, root = make_stack(depth)
    benchmark(root.lookup, "probe")


class TestShape:
    def test_crossing_adds_no_io(self):
        """A layer crossing costs CPU only — zero additional disk I/O."""
        base = UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=64))
        root0 = base.root()
        root0.create("probe").write(0, b"x")
        root0.lookup("probe").getattr()  # warm
        snap = base.fs.device.counters.snapshot()
        root0.lookup("probe").getattr()
        direct = base.fs.device.counters.delta_since(snap).total

        deep = build_null_stack(base, 16).root()
        deep.lookup("probe").getattr()  # warm wrappers
        snap = base.fs.device.counters.snapshot()
        deep.lookup("probe").getattr()
        layered = base.fs.device.counters.delta_since(snap).total
        assert direct == layered == 0

    def test_per_crossing_overhead_is_small_and_linear(self, capsys):
        """Measure wall time per getattr at each depth; the fitted
        per-crossing increment should be a fraction of the base op cost."""
        samples = {}
        for depth in DEPTHS:
            _, root = make_stack(depth)
            probe = root.lookup("probe")
            n = 2000
            best = float("inf")
            for _ in range(3):  # best-of-3 damps scheduler jitter
                start = time.perf_counter()
                for _ in range(n):
                    probe.getattr()
                best = min(best, (time.perf_counter() - start) / n)
            samples[depth] = best
        base_cost = samples[0]
        per_crossing = (samples[16] - samples[0]) / 16
        with capsys.disabled():
            print("\n[E2] getattr microseconds by null-layer depth:")
            for depth, cost in samples.items():
                print(f"  depth {depth:>2}: {cost * 1e6:8.2f} us")
            print(
                f"  base op {base_cost * 1e6:.2f} us, per-crossing "
                f"{per_crossing * 1e6:.2f} us ({per_crossing / base_cost:.1%} of base)"
            )
        # "low": one crossing costs well under the base operation itself
        assert per_crossing < base_cost
        # and cost grows monotonically-ish with depth (allow jitter)
        assert samples[16] > samples[0]
