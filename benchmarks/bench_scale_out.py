"""E20: gossip/ring anti-entropy at 500 simulated hosts.

The paper runs Ficus on a handful of hosts; its reconciliation design is
pairwise ("one remote peer, rotating around the replica ring", Section
3.3), which is exactly the primitive epidemic anti-entropy scales.  Two
claims, both about making the *number* of rounds cheap now that PR 3
made each pairwise round cheap:

* **Gossip converges in O(log n) rounds at O(log n) per-host load.**  A
  500-host cluster with hash-sharded volumes plus one widely-replicated
  volume, driven from silent divergence to convergence, must converge
  within ``ROUNDS_LOG_FACTOR * log2(n)`` rounds with every host issuing
  at most ``PER_PEER_RPC_ALLOWANCE * log_fanout(n)`` RPCs per round.

* **Full mesh is the O(n) baseline.**  The same cluster, same divergence,
  same process, driven with the historical full-mesh sweep: it converges
  in very few rounds, but the busiest host pays O(n) RPCs per round —
  the per-round load a 500-host deployment cannot sustain.

``scale_out_snapshot()`` produces the BENCH_scale_out.json payload that
report_all.py writes.  Run directly (``python benchmarks/bench_scale_out.py
--fast``) it trims the volume count (the host count stays at 500 — that
is the claim under test) and exits non-zero if any bound is violated —
the CI gate.
"""

import json
import math
import sys

from repro.physical import EntryType, op_insert
from repro.sim import DaemonConfig, FicusSystem, HostConfig, make_topology
from repro.sim.topology import log_fanout
from repro.util import FicusFileHandle

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: small disks keep a 500-host cluster light; each host stores at most a
#: few dozen small files
TINY_HOST = HostConfig(disk_blocks=512, num_inodes=96, cache_blocks=32, name_cache_size=64)

#: the acceptance bounds: gossip must converge within
#: ROUNDS_LOG_FACTOR * ceil(log2(hosts + 1)) rounds...
ROUNDS_LOG_FACTOR = 3
#: ...with max per-host RPCs per round within PER_PEER_RPC_ALLOWANCE *
#: log_fanout(hosts) — generous per-pairwise-round RPC allowance times an
#: O(log n) number of partners
PER_PEER_RPC_ALLOWANCE = 14
#: and the full-mesh baseline's busiest host must pay at least this many
#: times more RPCs per round than gossip's
BASELINE_LOAD_FACTOR = 2.0


def build_cluster(
    hosts: int,
    sharded_volumes: int,
    replicas_per_volume: int,
    wide_replicas: int,
    topology: str,
    seed: int = 20,
):
    """A cluster with hash-sharded small volumes plus one wide volume.

    The root volume lives on host 0 only — a 500-host cluster must not
    replicate one root volume everywhere — and ``place_volumes`` shards
    ``sharded_volumes`` three-way volumes across the fleet by stable
    hash.  One extra volume spans ``wide_replicas`` hosts: the stress
    case where full-mesh peer scans are O(n) per round.
    """
    names = [f"h{i:03d}" for i in range(hosts)]
    system = FicusSystem(
        names,
        root_volume_hosts=[names[0]],
        host_config=TINY_HOST,
        daemon_config=QUIET,
        topology=make_topology(topology, seed=seed),
    )
    volumes = system.place_volumes(sharded_volumes, replicas_per_volume=replicas_per_volume)
    volumes.append(system.create_volume(names[:wide_replicas], learn_locations=True))
    return system, volumes


def _insert_file(system: FicusSystem, location, name: str, payload: bytes) -> None:
    """Create a file directly in one replica's physical store.

    The write is deliberately silent — no logical layer, no update
    notification — so the only way the other replicas ever learn of it
    is anti-entropy, which is the machinery under test.
    """
    host = system.hosts[location.host]
    store = host.physical.store_for(location.volrep)
    root = host.physical.root().lookup(location.volrep.to_hex())
    fh = FicusFileHandle(location.volrep.volume, store.new_file_id())
    vnode = root.create(op_insert(store.new_entry_id(), name, fh, EntryType.FILE))
    vnode.write(0, payload)


def diverge(system: FicusSystem, volumes, files_per_volume: int) -> int:
    """Write fresh files into one replica of every volume; returns files."""
    written = 0
    for index, (_volume, locations) in enumerate(volumes):
        source = locations[index % len(locations)]
        for f in range(files_per_volume):
            _insert_file(system, source, f"f{f}", f"v{index}:f{f}".encode() * 8)
            written += 1
    return written


def converged(system: FicusSystem, volumes) -> bool:
    """Every volume's replicas report identical subtree digests."""
    for _volume, locations in volumes:
        digests = set()
        for location in locations:
            store = system.hosts[location.host].physical.store_for(location.volrep)
            digests.add(store.subtree_digest(store.root_handle()))
            if len(digests) > 1:
                return False
    return True


def drive_to_convergence(system: FicusSystem, volumes, max_rounds: int) -> dict:
    """Run topology rounds until every volume converges; account per host.

    One round = one topology sweep per host (full mesh: a tick per peer,
    the historical behavior; ring/gossip: one tick).  Per-host RPC and
    byte loads come from ``NetworkStats``'s per-peer ledger, folded by
    source host each round.
    """
    topology = system.topology
    stats = system.network.stats
    rounds = 0
    max_host_rpcs_per_round = 0
    max_host_bytes_per_round = 0
    round_profile = []
    rpcs_before = stats.rpcs_by_host()
    bytes_before = stats.bytes_by_host()
    total_before = stats.rpcs_sent
    while rounds < max_rounds and not converged(system, volumes):
        for host in system.hosts.values():
            peer_count = host.recon_daemon.max_peer_count()
            if not peer_count:
                continue
            for _ in range(topology.sweep_ticks(peer_count)):
                host.recon_daemon.tick()
        rpcs_after = stats.rpcs_by_host()
        bytes_after = stats.bytes_by_host()
        round_max_rpcs = max(
            (rpcs_after.get(h, 0) - rpcs_before.get(h, 0) for h in rpcs_after), default=0
        )
        round_max_bytes = max(
            (bytes_after.get(h, 0) - bytes_before.get(h, 0) for h in bytes_after), default=0
        )
        max_host_rpcs_per_round = max(max_host_rpcs_per_round, round_max_rpcs)
        max_host_bytes_per_round = max(max_host_bytes_per_round, round_max_bytes)
        round_profile.append(round_max_rpcs)
        rpcs_before, bytes_before = rpcs_after, bytes_after
        rounds += 1
    return {
        "topology": topology.name,
        "rounds_to_converge": rounds,
        "converged": converged(system, volumes),
        "max_host_rpcs_per_round": max_host_rpcs_per_round,
        "max_host_bytes_per_round": max_host_bytes_per_round,
        "max_host_rpcs_by_round": round_profile,
        "total_rpcs": stats.rpcs_sent - total_before,
    }


def measure_topology(
    topology: str,
    hosts: int,
    sharded_volumes: int,
    replicas_per_volume: int,
    wide_replicas: int,
    files_per_volume: int,
    max_rounds: int,
) -> dict:
    system, volumes = build_cluster(
        hosts, sharded_volumes, replicas_per_volume, wide_replicas, topology
    )
    files = diverge(system, volumes, files_per_volume)
    result = drive_to_convergence(system, volumes, max_rounds)
    result.update(
        hosts=hosts,
        volumes=len(volumes),
        wide_replicas=wide_replicas,
        files_written=files,
        fanout=system.topology.fanout(wide_replicas - 1),
    )
    return result


def scale_out_snapshot(fast: bool = False) -> dict:
    """The BENCH_scale_out.json payload: gossip vs full-mesh, one process.

    ``fast`` trims the volume count and wide-replica width, not the host
    count — 500 hosts is the claim the CI gate certifies.
    """
    hosts = 500
    sharded = 30 if fast else 100
    wide = 32 if fast else 64
    files = 2 if fast else 3
    rounds_bound = ROUNDS_LOG_FACTOR * math.ceil(math.log2(hosts + 1))
    rpc_bound = PER_PEER_RPC_ALLOWANCE * log_fanout(hosts)
    gossip = measure_topology(
        "gossip", hosts, sharded, replicas_per_volume=3, wide_replicas=wide,
        files_per_volume=files, max_rounds=rounds_bound + 4,
    )
    # the O(n) baseline, same cluster shape and divergence, same process:
    # few rounds, but the busiest host pays for every peer every round
    full_mesh = measure_topology(
        "full_mesh", hosts, sharded, replicas_per_volume=3, wide_replicas=wide,
        files_per_volume=files, max_rounds=max(4, rounds_bound // 2),
    )
    return {
        "hosts": hosts,
        "bounds": {
            "rounds_to_converge": f"<= {rounds_bound} ({ROUNDS_LOG_FACTOR} * log2(n))",
            "rounds_bound": rounds_bound,
            "max_host_rpcs_per_round": (
                f"<= {rpc_bound} ({PER_PEER_RPC_ALLOWANCE} * log-fanout(n))"
            ),
            "rpc_bound": rpc_bound,
            "baseline_load_factor": f">= {BASELINE_LOAD_FACTOR}x gossip",
        },
        "gossip": gossip,
        "full_mesh_baseline": full_mesh,
        "load_ratio_full_mesh_over_gossip": (
            full_mesh["max_host_rpcs_per_round"]
            / max(1, gossip["max_host_rpcs_per_round"])
        ),
    }


def check_bounds(snapshot: dict) -> list[str]:
    """The CI gate: returns a list of violated bounds (empty = pass)."""
    violations = []
    gossip = snapshot["gossip"]
    baseline = snapshot["full_mesh_baseline"]
    bounds = snapshot["bounds"]
    if not gossip["converged"]:
        violations.append(
            f"gossip did not converge within {gossip['rounds_to_converge']} rounds"
        )
    if not baseline["converged"]:
        violations.append(
            f"full-mesh baseline did not converge within "
            f"{baseline['rounds_to_converge']} rounds"
        )
    if gossip["rounds_to_converge"] > bounds["rounds_bound"]:
        violations.append(
            f"gossip took {gossip['rounds_to_converge']} rounds "
            f"(bound: {bounds['rounds_bound']})"
        )
    if gossip["max_host_rpcs_per_round"] > bounds["rpc_bound"]:
        violations.append(
            f"gossip max per-host RPCs per round {gossip['max_host_rpcs_per_round']} "
            f"(bound: {bounds['rpc_bound']})"
        )
    ratio = snapshot["load_ratio_full_mesh_over_gossip"]
    if gossip["converged"] and baseline["converged"] and ratio < BASELINE_LOAD_FACTOR:
        violations.append(
            f"full-mesh per-host load only {ratio:.1f}x gossip's "
            f"(expected >= {BASELINE_LOAD_FACTOR}x: the baseline should hurt)"
        )
    return violations


class TestShape:
    """Small-cluster shape checks (CI runs these under plain pytest)."""

    def _measure(self, topology: str, max_rounds: int) -> dict:
        return measure_topology(
            topology, hosts=48, sharded_volumes=8, replicas_per_volume=3,
            wide_replicas=16, files_per_volume=2, max_rounds=max_rounds,
        )

    def test_gossip_converges_in_log_rounds(self):
        result = self._measure("gossip", max_rounds=3 * math.ceil(math.log2(49)) + 4)
        assert result["converged"]
        assert result["rounds_to_converge"] <= 3 * math.ceil(math.log2(49))

    def test_ring_converges(self):
        result = self._measure("ring", max_rounds=2 * 48)
        assert result["converged"]

    def test_gossip_per_host_load_beats_full_mesh(self):
        gossip = self._measure("gossip", max_rounds=30)
        mesh = self._measure("full_mesh", max_rounds=10)
        assert gossip["converged"] and mesh["converged"]
        assert gossip["max_host_rpcs_per_round"] < mesh["max_host_rpcs_per_round"]

    def test_sharded_placement_spreads_replicas(self):
        system, volumes = build_cluster(
            hosts=40, sharded_volumes=20, replicas_per_volume=3,
            wide_replicas=4, topology="gossip",
        )
        per_host = {}
        for _volume, locations in volumes[:-1]:
            for location in locations:
                per_host[location.host] = per_host.get(location.host, 0) + 1
        # 60 replicas over 40 hosts: no host may hoard a quarter of them
        assert max(per_host.values()) <= 15
        assert len(per_host) >= 10


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    snapshot = scale_out_snapshot(fast=fast)
    print(json.dumps(snapshot, indent=2, default=str))
    violations = check_bounds(snapshot)
    for violation in violations:
        print(f"BOUND VIOLATED: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
