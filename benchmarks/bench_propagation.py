"""E6 (Section 3.2): the update propagation delay policy.

"Rapid propagation enhances the availability of the new version of the
file; delayed propagation may reduce the overall propagation cost when
updates are bursty."

We replay the same bursty update workload while sweeping the propagation
daemon's ``min_age`` (how long a new-version note must ripen before being
pulled) and measure both sides of the trade: pulls performed (cost) and
mean staleness window (how long peers served the old version).
"""

import pytest

from repro.sim import DaemonConfig, FicusSystem
from repro.workload import BurstyUpdateGenerator

BURSTS = dict(burst_size=5, intra_burst_gap=0.2, mean_burst_interval=120.0)
DURATION = 1800.0
DELAYS = [0.0, 1.0, 5.0, 30.0, 120.0]


def run_with_delay(min_age: float, seed: int = 13):
    config = DaemonConfig(
        propagation_period=1.0,
        propagation_min_age=min_age,
        recon_period=None,
        graft_prune_period=None,
    )
    system = FicusSystem(["writer", "reader"], daemon_config=config)
    writer = system.host("writer").fs()
    reader_host = system.host("reader")
    writer.write_file("/hot", b"v0")
    system.run_for(5.0)
    reader_host.propagation_daemon.stats.pulls_succeeded = 0
    reader_host.propagation_daemon.stats.bytes_copied = 0

    events = BurstyUpdateGenerator(["/hot"], seed=seed, **BURSTS).schedule(DURATION, start=system.clock.now())
    updates = 0
    for event in events:
        system.run_for(event.at - system.clock.now())
        writer.write_file(event.path, event.payload)
        updates += 1
    system.run_for(min_age + 10.0)  # let the last notes ripen and drain
    stats = reader_host.propagation_daemon.stats
    return updates, stats.pulls_succeeded, stats.bytes_copied


class TestShape:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {delay: run_with_delay(delay) for delay in DELAYS}

    def test_updates_eventually_propagate_at_every_delay(self, sweep):
        for delay, (updates, pulls, _) in sweep.items():
            assert updates > 10
            assert pulls >= 1, f"delay {delay}: nothing propagated"

    def test_delay_coalesces_bursts(self, sweep):
        """The cost side: with delay >> burst width, one pull serves a
        whole burst, so pulls drop well below the update count."""
        updates, eager_pulls, _ = sweep[0.0]
        _, lazy_pulls, _ = sweep[120.0]
        assert lazy_pulls < eager_pulls
        assert lazy_pulls <= updates / 2  # bursts of ~5 collapse

    def test_overall_cost_reduction_trend(self, sweep):
        """Longer delays never cost more than eager propagation, and the
        longest delay is cheapest (small jitter between middle points is
        expected — bursts land at random offsets within the window)."""
        pulls = [sweep[d][1] for d in DELAYS]
        assert pulls[0] == max(pulls), pulls
        assert pulls[-1] == min(pulls), pulls

    def test_report(self, sweep, capsys):
        with capsys.disabled():
            print("\n[E6] propagation delay policy (bursty updates, 30 virtual minutes):")
            print(f"{'min_age (s)':>12} | {'updates':>8} | {'pulls':>6} | {'bytes':>8}")
            for delay, (updates, pulls, copied) in sweep.items():
                print(f"{delay:>12.1f} | {updates:>8} | {pulls:>6} | {copied:>8}")


def test_staleness_side_of_the_trade(capsys):
    """The availability side: a longer delay widens the window in which a
    reader's local replica is stale."""
    windows = {}
    for delay in [0.0, 60.0]:
        config = DaemonConfig(
            propagation_period=1.0, propagation_min_age=delay,
            recon_period=None, graft_prune_period=None,
        )
        system = FicusSystem(["writer", "reader"], daemon_config=config)
        writer = system.host("writer").fs()
        reader_host = system.host("reader")
        writer.write_file("/f", b"v0")
        system.run_for(delay + 5.0)
        writer.write_file("/f", b"v1")
        written_at = system.clock.now()
        # poll the reader's LOCAL replica until it serves v1
        volrep = next(l.volrep for l in system.root_locations if l.host == "reader")
        store = reader_host.physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        while store.file_vnode(store.root_handle(), fh).read_all() != b"v1":
            system.run_for(1.0)
        windows[delay] = system.clock.now() - written_at
    with capsys.disabled():
        print(f"\n[E6] staleness window: eager={windows[0.0]:.1f}s lazy={windows[60.0]:.1f}s")
    assert windows[60.0] > windows[0.0]


@pytest.mark.parametrize("delay", [0.0, 30.0])
def test_bench_propagation_run(benchmark, delay):
    benchmark(run_with_delay, delay)
