"""E3 + E4 + E19 (Section 6): I/O accounting and hot-path throughput.

"The Ficus physical layer design and implementation accrues additional
I/O overhead when opening a file in a non-recently accessed directory.
Four I/Os beyond the normal Unix overhead occur: an inode and data page
for the underlying Unix directory and an auxiliary replication data file
must be loaded from disk, as well as the Ficus directory inode and data
page.  (The last two correspond to normal Unix overhead.)  Opening a
recently accessed file or directory involves no overhead not already
incurred by the normal Unix file system."

The paper's four I/Os are reproduced exactly in the cold-open breakdown,
plus two more our batched attribute plane spends eagerly: the directory's
OWN aux record (inode + data page), which the paper's lazy scheme left on
disk until a directory-level operation needed it.  The batch buys that
back immediately — once it is cached, every further open in the directory
skips ALL four aux I/Os, and a warm open costs zero extra, matching E4
exactly.  Inodes are isolated one-per-block so that one inode fetch is
one disk I/O — the unit the paper counts in.

E19 (the throughput mode) measures the fused-chain hot path: the same
open/write/read workload driven through the full stack twice — once on
the legacy path (decoded-object caches off, transparent crossings all
paid) and once on the optimized path (fastpath caches on, the stack's
transparent prefix fused away).  ``open_io_throughput()`` produces the
BENCH_open_io.json payload; run directly (``python
benchmarks/bench_open_io.py --fast``) it sizes the workload down and
exits non-zero if the speedup gate or the E3/E4 accounting is violated —
the CI gate.
"""

import json
import sys
import time

from repro import fastpath
from repro.layers import MonitorLayer
from repro.sim import DaemonConfig, FicusSystem, HostConfig
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import UfsLayer, build_null_stack, fuse_stack

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)
ISOLATED = HostConfig(disk_blocks=65536, num_inodes=512, isolate_inodes=True)

#: The paper's number: extra I/Os for a cold open vs. plain UFS.
PAPER_EXTRA_IOS = 4

#: What the batched attribute plane adds to a fully cold open: the
#: directory's own aux record (inode + data page), fetched eagerly with
#: the children's so replica selection never needs a second RPC.
BATCH_EXTRA_IOS = 2

#: E19 gate: optimized (fused + fastpath) throughput over legacy.
THROUGHPUT_BOUND = 5.0

#: Files in the benchmark directory.  The legacy path re-decodes the
#: Ficus directory (O(entries)) and re-selects replicas on every
#: operation, so the speedup grows with directory size; 64 entries is a
#: modest working directory, far from the cache-friendly best case.
DIR_FILES = 64

#: vnode operations per workload iteration: 2 lookups + open + write +
#: read + close.
OPS_PER_ITERATION = 6


def ufs_open_reads() -> tuple[int, int]:
    """(cold, warm) disk reads to open /d/f on plain UFS."""
    device = BlockDevice(65536)
    fs = Ufs.mkfs(device, num_inodes=512, inode_size=device.block_size)
    d = fs.mkdir(2, "d")
    fs.write_file(fs.create(d, "f"), 0, b"x")
    e = fs.mkdir(2, "e")
    fs.write_file(fs.create(e, "g"), 0, b"y")
    fs.cache.invalidate_all()
    fs.namecache.invalidate_all()
    fs.getattr(fs.path_lookup("/e/g"))  # warm the globals and the root
    snap = device.counters.snapshot()
    fs.getattr(fs.path_lookup("/d/f"))
    cold = device.counters.delta_since(snap).reads
    snap = device.counters.snapshot()
    fs.getattr(fs.path_lookup("/d/f"))
    warm = device.counters.delta_since(snap).reads
    return cold, warm


def ficus_open_reads() -> tuple[int, int]:
    """(cold, warm) disk reads to open /d/f through the full Ficus stack."""
    system = FicusSystem(["solo"], daemon_config=QUIET, host_config=ISOLATED)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")
    fs.mkdir("/e")
    fs.write_file("/e/g", b"y")
    host.ufs.cache.invalidate_all()
    host.ufs.namecache.invalidate_all()
    # "non-recently accessed" includes the logical layer's attribute
    # cache: were its batch still warm, the aux files would never be
    # re-read and the paper's aux I/Os would not appear
    host.logical.attr_cache.clear()
    fs.stat("/e/g")  # warm the globals and the root directory
    snap = host.device.counters.snapshot()
    fs.stat("/d/f")
    cold = host.device.counters.delta_since(snap).reads
    snap = host.device.counters.snapshot()
    fs.stat("/d/f")
    warm = host.device.counters.delta_since(snap).reads
    return cold, warm


class TestShape:
    def test_cold_open_costs_the_four_paper_ios_plus_dir_aux(self, capsys):
        """E3: the paper's 'four I/Os beyond the normal Unix overhead' —
        unix-dir inode + page, file-aux inode + page — plus the directory's
        own aux (inode + page) that the batched attribute plane front-loads."""
        ufs_cold, _ = ufs_open_reads()
        ficus_cold, _ = ficus_open_reads()
        with capsys.disabled():
            print(
                f"\n[E3] cold open of a file in a non-recently-accessed directory:"
                f" UFS={ufs_cold} reads, Ficus={ficus_cold} reads,"
                f" extra={ficus_cold - ufs_cold}"
                f" (paper: {PAPER_EXTRA_IOS}, + {BATCH_EXTRA_IOS} batched dir aux)"
            )
        assert ficus_cold - ufs_cold == PAPER_EXTRA_IOS + BATCH_EXTRA_IOS

    def test_warm_batch_skips_every_aux_io(self):
        """The payback for the two extra cold I/Os: with the attribute
        batch cached (UFS caches still cleared), a second open in the same
        directory performs NO aux I/O at all — only the underlying-Unix
        directory extras remain."""
        system = FicusSystem(["solo"], daemon_config=QUIET, host_config=ISOLATED)
        host = system.host("solo")
        fs = host.fs()
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        fs.mkdir("/e")
        fs.write_file("/e/g", b"y")
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        host.logical.attr_cache.clear()
        fs.stat("/e/g")  # warm globals + the root directory
        fs.stat("/d/f")  # cold: pays all aux I/Os, caches the batch
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        fs.stat("/e/g")
        snap = host.device.counters.snapshot()
        fs.stat("/d/f")
        batched_cold = host.device.counters.delta_since(snap).reads
        ufs_cold, _ = ufs_open_reads()
        # the 4 aux I/Os (.faux + file aux, inode and page each) are gone;
        # only the underlying-Unix-directory inode + page remain extra
        assert batched_cold - ufs_cold == 2

    def test_warm_open_costs_nothing_extra(self, capsys):
        """E4: 'no overhead not already incurred by the normal Unix file
        system' — here both warm opens cost zero disk reads."""
        _, ufs_warm = ufs_open_reads()
        _, ficus_warm = ficus_open_reads()
        with capsys.disabled():
            print(f"\n[E4] warm open: UFS={ufs_warm} reads, Ficus={ficus_warm} reads")
        assert ufs_warm == 0
        assert ficus_warm == 0

    def test_the_four_ios_are_the_documented_objects(self):
        """The 4 extra fetches are: underlying Unix dir inode + data page,
        auxiliary file inode + data page.  Check by eliminating the aux
        read path: opening the *directory* itself (no aux involved) costs
        only the 2 extra underlying-Unix-directory I/Os."""
        system = FicusSystem(["solo"], daemon_config=QUIET, host_config=ISOLATED)
        host = system.host("solo")
        fs = host.fs()
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        fs.stat("/")  # warm globals + root
        snap = host.device.counters.snapshot()
        fs.stat("/d")  # open the directory: unix-dir inode+data, fdir inode+data
        dir_cold = host.device.counters.delta_since(snap).reads
        assert dir_cold == 4  # 2 "normal Unix" + 2 underlying-dir extras


# -- E19: fused-chain hot-path throughput ---------------------------------


def _throughput_stack(nfiles: int) -> MonitorLayer:
    """The full Figure-2 stack plus a transparent prefix: four null
    layers and a disabled monitor over the logical layer — the stack
    shape fusion exists for."""
    system = FicusSystem(["solo"], daemon_config=QUIET)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    for i in range(nfiles):
        fs.write_file(f"/d/f{i}", b"x" * 256)
    top = MonitorLayer(build_null_stack(host.logical, 4))
    top.set_enabled(False)
    return top


def _drive(root, iterations: int, nfiles: int) -> None:
    payload = b"y" * 256
    for i in range(iterations):
        f = root.lookup("d").lookup(f"f{i % nfiles}")
        f.open()
        f.write(0, payload)
        f.read(0, 256)
        f.close()


def _ops_per_second(root, iterations: int, nfiles: int, repeats: int = 3) -> float:
    _drive(root, max(10, iterations // 5), nfiles)  # warm the stack
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _drive(root, iterations, nfiles)
        best = min(best, time.perf_counter() - start)
    return iterations * OPS_PER_ITERATION / best


def crossing_cost(fast: bool = False) -> dict:
    """Per-crossing cost of a transparent layer, unfused vs fused (E2's
    measured quantity, now with the fused counterpoint)."""
    depth = 8
    iterations = 600 if fast else 2000
    device = BlockDevice(1024)
    fs = Ufs.mkfs(device)
    base = UfsLayer(fs)
    deep = build_null_stack(base, depth)
    base.root().create("f")

    def seconds_per_op(root) -> float:
        for _ in range(100):
            root.getattr()
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(iterations):
                root.getattr()
            best = min(best, (time.perf_counter() - start) / iterations)
        return best

    flat = seconds_per_op(base.root())
    unfused = seconds_per_op(deep.root())
    fused = seconds_per_op(fuse_stack(deep).root())
    return {
        "stack_depth": depth,
        "unfused_us": max(0.0, (unfused - flat) / depth * 1e6),
        "fused_us": max(0.0, (fused - flat) / depth * 1e6),
    }


def open_io_throughput(fast: bool = False) -> dict:
    """The BENCH_open_io.json payload."""
    nfiles = DIR_FILES
    iterations = 60 if fast else 200
    top = _throughput_stack(nfiles)
    # legacy: every decoded-object cache off, every crossing paid
    previous = fastpath.set_enabled(False)
    try:
        legacy = _ops_per_second(top.root(), iterations, nfiles)
    finally:
        fastpath.set_enabled(previous)
    fused = fuse_stack(top)
    optimized = _ops_per_second(fused.root(), iterations, nfiles)
    ufs_cold, ufs_warm = ufs_open_reads()
    ficus_cold, ficus_warm = ficus_open_reads()
    return {
        "workload": {
            "directory_files": nfiles,
            "iterations": iterations,
            "ops_per_iteration": OPS_PER_ITERATION,
        },
        "ops_per_second": {
            "legacy": legacy,
            "optimized": optimized,
            "speedup": optimized / legacy if legacy else 0.0,
            "bound": f">= {THROUGHPUT_BOUND}x",
        },
        "fusion": fused.stats(),
        "per_crossing_us": crossing_cost(fast),
        # the invariant the optimization must not disturb: the paper's
        # disk-I/O accounting, byte for byte
        "io_accounting": {
            "cold_extra_ios": ficus_cold - ufs_cold,
            "expected_cold_extra": PAPER_EXTRA_IOS + BATCH_EXTRA_IOS,
            "warm_extra_ios": ficus_warm - ufs_warm,
            "expected_warm_extra": 0,
        },
    }


def check_bounds(snapshot: dict) -> list[str]:
    """The CI gate: returns a list of violated bounds (empty = pass)."""
    violations = []
    speedup = snapshot["ops_per_second"]["speedup"]
    if speedup < THROUGHPUT_BOUND:
        violations.append(
            f"hot-path speedup {speedup:.2f}x (bound: >= {THROUGHPUT_BOUND}x)"
        )
    if snapshot["fusion"]["hit_rate"] < 0.99:
        violations.append(
            f"fusion hit rate {snapshot['fusion']['hit_rate']:.3f} "
            "(a fully transparent prefix should fuse every dispatch)"
        )
    accounting = snapshot["io_accounting"]
    if accounting["cold_extra_ios"] != accounting["expected_cold_extra"]:
        violations.append(
            f"E3 cold open costs {accounting['cold_extra_ios']} extra I/Os "
            f"(paper + batch: {accounting['expected_cold_extra']})"
        )
    if accounting["warm_extra_ios"] != accounting["expected_warm_extra"]:
        violations.append(
            f"E4 warm open costs {accounting['warm_extra_ios']} extra I/Os (paper: 0)"
        )
    return violations


class TestThroughput:
    def test_fused_fastpath_beats_legacy(self):
        # the hard 5x gate runs in main(); under pytest parallel load
        # timing is too noisy for that, so only guard against regressions
        # that would lose most of the optimization
        snapshot = open_io_throughput(fast=True)
        assert snapshot["ops_per_second"]["speedup"] > 2.0
        assert snapshot["fusion"]["hit_rate"] == 1.0
        assert not snapshot["fusion"]["chained_dispatches"]

    def test_fastpath_switch_restored_after_measurement(self):
        assert fastpath.ENABLED


def test_bench_cold_open_ufs(benchmark):
    device = BlockDevice(65536)
    fs = Ufs.mkfs(device, num_inodes=512)
    d = fs.mkdir(2, "d")
    fs.write_file(fs.create(d, "f"), 0, b"x")

    def cold_open():
        fs.cache.invalidate_all()
        fs.namecache.invalidate_all()
        return fs.getattr(fs.path_lookup("/d/f"))

    benchmark(cold_open)


def test_bench_cold_open_ficus(benchmark):
    system = FicusSystem(["solo"], daemon_config=QUIET)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")

    def cold_open():
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        return fs.stat("/d/f")

    benchmark(cold_open)


def test_bench_warm_open_ficus(benchmark):
    system = FicusSystem(["solo"], daemon_config=QUIET)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")
    fs.stat("/d/f")
    benchmark(fs.stat, "/d/f")


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    snapshot = open_io_throughput(fast=fast)
    print(json.dumps(snapshot, indent=2, default=str))
    violations = check_bounds(snapshot)
    for violation in violations:
        print(f"BOUND VIOLATED: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
