"""E3 + E4 (Section 6): the paper's headline I/O accounting.

"The Ficus physical layer design and implementation accrues additional
I/O overhead when opening a file in a non-recently accessed directory.
Four I/Os beyond the normal Unix overhead occur: an inode and data page
for the underlying Unix directory and an auxiliary replication data file
must be loaded from disk, as well as the Ficus directory inode and data
page.  (The last two correspond to normal Unix overhead.)  Opening a
recently accessed file or directory involves no overhead not already
incurred by the normal Unix file system."

The paper's four I/Os are reproduced exactly in the cold-open breakdown,
plus two more our batched attribute plane spends eagerly: the directory's
OWN aux record (inode + data page), which the paper's lazy scheme left on
disk until a directory-level operation needed it.  The batch buys that
back immediately — once it is cached, every further open in the directory
skips ALL four aux I/Os, and a warm open costs zero extra, matching E4
exactly.  Inodes are isolated one-per-block so that one inode fetch is
one disk I/O — the unit the paper counts in.
"""


from repro.sim import DaemonConfig, FicusSystem, HostConfig
from repro.storage import BlockDevice
from repro.ufs import Ufs

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)
ISOLATED = HostConfig(disk_blocks=65536, num_inodes=512, isolate_inodes=True)

#: The paper's number: extra I/Os for a cold open vs. plain UFS.
PAPER_EXTRA_IOS = 4

#: What the batched attribute plane adds to a fully cold open: the
#: directory's own aux record (inode + data page), fetched eagerly with
#: the children's so replica selection never needs a second RPC.
BATCH_EXTRA_IOS = 2


def ufs_open_reads() -> tuple[int, int]:
    """(cold, warm) disk reads to open /d/f on plain UFS."""
    device = BlockDevice(65536)
    fs = Ufs.mkfs(device, num_inodes=512, inode_size=device.block_size)
    d = fs.mkdir(2, "d")
    fs.write_file(fs.create(d, "f"), 0, b"x")
    e = fs.mkdir(2, "e")
    fs.write_file(fs.create(e, "g"), 0, b"y")
    fs.cache.invalidate_all()
    fs.namecache.invalidate_all()
    fs.getattr(fs.path_lookup("/e/g"))  # warm the globals and the root
    snap = device.counters.snapshot()
    fs.getattr(fs.path_lookup("/d/f"))
    cold = device.counters.delta_since(snap).reads
    snap = device.counters.snapshot()
    fs.getattr(fs.path_lookup("/d/f"))
    warm = device.counters.delta_since(snap).reads
    return cold, warm


def ficus_open_reads() -> tuple[int, int]:
    """(cold, warm) disk reads to open /d/f through the full Ficus stack."""
    system = FicusSystem(["solo"], daemon_config=QUIET, host_config=ISOLATED)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")
    fs.mkdir("/e")
    fs.write_file("/e/g", b"y")
    host.ufs.cache.invalidate_all()
    host.ufs.namecache.invalidate_all()
    # "non-recently accessed" includes the logical layer's attribute
    # cache: were its batch still warm, the aux files would never be
    # re-read and the paper's aux I/Os would not appear
    host.logical.attr_cache.clear()
    fs.stat("/e/g")  # warm the globals and the root directory
    snap = host.device.counters.snapshot()
    fs.stat("/d/f")
    cold = host.device.counters.delta_since(snap).reads
    snap = host.device.counters.snapshot()
    fs.stat("/d/f")
    warm = host.device.counters.delta_since(snap).reads
    return cold, warm


class TestShape:
    def test_cold_open_costs_the_four_paper_ios_plus_dir_aux(self, capsys):
        """E3: the paper's 'four I/Os beyond the normal Unix overhead' —
        unix-dir inode + page, file-aux inode + page — plus the directory's
        own aux (inode + page) that the batched attribute plane front-loads."""
        ufs_cold, _ = ufs_open_reads()
        ficus_cold, _ = ficus_open_reads()
        with capsys.disabled():
            print(
                f"\n[E3] cold open of a file in a non-recently-accessed directory:"
                f" UFS={ufs_cold} reads, Ficus={ficus_cold} reads,"
                f" extra={ficus_cold - ufs_cold}"
                f" (paper: {PAPER_EXTRA_IOS}, + {BATCH_EXTRA_IOS} batched dir aux)"
            )
        assert ficus_cold - ufs_cold == PAPER_EXTRA_IOS + BATCH_EXTRA_IOS

    def test_warm_batch_skips_every_aux_io(self):
        """The payback for the two extra cold I/Os: with the attribute
        batch cached (UFS caches still cleared), a second open in the same
        directory performs NO aux I/O at all — only the underlying-Unix
        directory extras remain."""
        system = FicusSystem(["solo"], daemon_config=QUIET, host_config=ISOLATED)
        host = system.host("solo")
        fs = host.fs()
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        fs.mkdir("/e")
        fs.write_file("/e/g", b"y")
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        host.logical.attr_cache.clear()
        fs.stat("/e/g")  # warm globals + the root directory
        fs.stat("/d/f")  # cold: pays all aux I/Os, caches the batch
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        fs.stat("/e/g")
        snap = host.device.counters.snapshot()
        fs.stat("/d/f")
        batched_cold = host.device.counters.delta_since(snap).reads
        ufs_cold, _ = ufs_open_reads()
        # the 4 aux I/Os (.faux + file aux, inode and page each) are gone;
        # only the underlying-Unix-directory inode + page remain extra
        assert batched_cold - ufs_cold == 2

    def test_warm_open_costs_nothing_extra(self, capsys):
        """E4: 'no overhead not already incurred by the normal Unix file
        system' — here both warm opens cost zero disk reads."""
        _, ufs_warm = ufs_open_reads()
        _, ficus_warm = ficus_open_reads()
        with capsys.disabled():
            print(f"\n[E4] warm open: UFS={ufs_warm} reads, Ficus={ficus_warm} reads")
        assert ufs_warm == 0
        assert ficus_warm == 0

    def test_the_four_ios_are_the_documented_objects(self):
        """The 4 extra fetches are: underlying Unix dir inode + data page,
        auxiliary file inode + data page.  Check by eliminating the aux
        read path: opening the *directory* itself (no aux involved) costs
        only the 2 extra underlying-Unix-directory I/Os."""
        system = FicusSystem(["solo"], daemon_config=QUIET, host_config=ISOLATED)
        host = system.host("solo")
        fs = host.fs()
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        fs.stat("/")  # warm globals + root
        snap = host.device.counters.snapshot()
        fs.stat("/d")  # open the directory: unix-dir inode+data, fdir inode+data
        dir_cold = host.device.counters.delta_since(snap).reads
        assert dir_cold == 4  # 2 "normal Unix" + 2 underlying-dir extras


def test_bench_cold_open_ufs(benchmark):
    device = BlockDevice(65536)
    fs = Ufs.mkfs(device, num_inodes=512)
    d = fs.mkdir(2, "d")
    fs.write_file(fs.create(d, "f"), 0, b"x")

    def cold_open():
        fs.cache.invalidate_all()
        fs.namecache.invalidate_all()
        return fs.getattr(fs.path_lookup("/d/f"))

    benchmark(cold_open)


def test_bench_cold_open_ficus(benchmark):
    system = FicusSystem(["solo"], daemon_config=QUIET)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")

    def cold_open():
        host.ufs.cache.invalidate_all()
        host.ufs.namecache.invalidate_all()
        return fs.stat("/d/f")

    benchmark(cold_open)


def test_bench_warm_open_ficus(benchmark):
    system = FicusSystem(["solo"], daemon_config=QUIET)
    host = system.host("solo")
    fs = host.fs()
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")
    fs.stat("/d/f")
    benchmark(fs.stat, "/d/f")
