"""E11 (Sections 1, 2.6): locality makes the dual mapping cheap.

"More recent studies of general purpose (university) Unix file usage
indicate a strong degree of file reference locality... The Ficus file
system design takes advantage of these locality observations to avoid
much of the overhead previously encountered in building on top of an
existing Unix file system implementation."

Sweep Zipf skew (locality strength) and cache size; disk reads per open
must fall as locality rises — the opposite of what sank the early AFS
prototype's dual mapping ([19]).
"""

import pytest

from repro.sim import DaemonConfig, FicusSystem, HostConfig
from repro.workload import ZipfReferenceGenerator, hit_ratio_estimate

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)
SKEWS = [0.0, 0.75, 1.5, 2.25]


def build_populated_host(cache_blocks: int = 48):
    config = HostConfig(cache_blocks=cache_blocks, name_cache_size=64)
    system = FicusSystem(["solo"], daemon_config=QUIET, host_config=config)
    host = system.host("solo")
    fs = host.fs()
    gen = ZipfReferenceGenerator(num_directories=8, files_per_directory=12, skew=1.0, seed=9)
    for directory in gen.directories:
        fs.mkdir("/" + directory)
    for ref in gen.files:
        fs.write_file("/" + ref.path, f"contents of {ref.path}".encode())
    return system, host, fs


def replay(skew: float, cache_blocks: int = 48, references: int = 1000):
    system, host, fs = build_populated_host(cache_blocks)
    gen = ZipfReferenceGenerator(num_directories=8, files_per_directory=12, skew=skew, seed=9)
    trace = gen.trace(references)
    host.ufs.cache.invalidate_all()
    host.ufs.namecache.invalidate_all()
    before = host.device.counters.snapshot()
    for ref in trace:
        fs.read_file("/" + ref.path)
    reads = host.device.counters.delta_since(before).reads
    return reads / references, hit_ratio_estimate(trace, 20)


class TestShape:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {skew: replay(skew) for skew in SKEWS}

    def test_stronger_locality_means_fewer_ios(self, sweep):
        ios = [sweep[s][0] for s in SKEWS]
        assert all(a >= b for a, b in zip(ios, ios[1:])), ios

    def test_high_locality_open_is_nearly_free(self, sweep):
        """With strong locality the dual mapping approaches zero I/Os per
        open — the Section 6 'recently accessed' case dominating."""
        assert sweep[SKEWS[-1]][0] < sweep[SKEWS[0]][0] / 3

    def test_report(self, sweep, capsys):
        with capsys.disabled():
            print("\n[E11] disk reads per open vs reference locality (48-block cache):")
            print(f"{'zipf skew':>10} | {'locality':>9} | {'reads/open':>10}")
            for skew in SKEWS:
                ios, locality = sweep[skew]
                print(f"{skew:>10.2f} | {locality:>9.3f} | {ios:>10.3f}")

    def test_bigger_cache_compensates_for_weak_locality(self, capsys):
        small = replay(0.0, cache_blocks=32)[0]
        large = replay(0.0, cache_blocks=2048)[0]
        with capsys.disabled():
            print(f"\n[E11] uniform trace: 32-block cache {small:.3f} r/open, 2048-block {large:.3f} r/open")
        assert large < small


@pytest.mark.parametrize("skew", [0.0, 1.5])
def test_bench_trace_replay(benchmark, skew):
    system, host, fs = build_populated_host()
    gen = ZipfReferenceGenerator(num_directories=8, files_per_directory=12, skew=skew, seed=9)
    trace = gen.trace(200)

    def run():
        for ref in trace:
            fs.read_file("/" + ref.path)

    benchmark(run)
