"""E18: the automatic conflict-resolution subsystem.

Two claims:

* **Resolution throughput.**  The resolver engine merges a
  concurrent-update conflict in one reconciliation visit — read both
  versions, join, shadow-commit — so a backlog of covered conflicts
  clears at wire speed rather than waiting on an owner.  Measured as
  resolutions/second over a batch of conflicted append-logs.

* **Convergence rounds.**  With resolvers enabled, a cluster whose
  covered files all diverged reaches byte-identical replicas with zero
  open conflicts within a bounded number of reconciliation rounds.  The
  manual baseline (same workload, no registry) never gets there on its
  own: the conflicts sit in the log until an owner acts.

``resolvers_snapshot()`` produces the BENCH_resolvers.json payload.  Run
directly (``python benchmarks/bench_resolvers.py --fast``) it sizes the
workload down, writes the JSON, and exits non-zero if a bound is
violated — the CI gate.
"""

import json
import sys
import time
from pathlib import Path

from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: acceptance bounds: every covered conflict must auto-resolve, replicas
#: must be byte-identical within this many post-heal recon rounds, and a
#: conflicted-log backlog must clear faster than an owner plausibly could
CONVERGENCE_ROUND_BOUND = 3
MIN_RESOLUTIONS_PER_SEC = 5.0

RESOLVERS_JSON = Path(__file__).resolve().parent.parent / "BENCH_resolvers.json"


def build_conflicted(files: int, resolvers: bool) -> FicusSystem:
    """Two replicas holding ``files`` append-logs, every one conflicted."""
    system = FicusSystem(["a", "b"], daemon_config=QUIET)
    if resolvers:
        system.enable_resolvers()
    fs_a = system.host("a").fs()
    for i in range(files):
        fs_a.write_file(f"/m{i}.log", b"seed\n")
    system.reconcile_everything()
    for name in system.hosts:
        system.host(name).propagation_daemon.tick()
    system.reconcile_everything()  # converged pass retains merge ancestors
    system.partition([{"a"}, {"b"}])
    fs_b = system.host("b").fs()
    for i in range(files):
        fs_a.write_file(f"/m{i}.log", f"seed\nfrom-a-{i}\n".encode())
        fs_b.write_file(f"/m{i}.log", f"seed\nfrom-b-{i}\n".encode())
    system.heal()
    return system


def covered_logs_identical(system: FicusSystem) -> bool:
    """Do all replicas hold byte-identical contents for every *.log file?"""
    per_name: dict[str, set[bytes]] = {}
    for host_name in system.hosts:
        for store in system.host(host_name).physical.stores.values():
            for dir_fh in store.all_directory_handles():
                for entry in store.read_entries(dir_fh):
                    if (
                        entry.live
                        and entry.name.endswith(".log")
                        and store.has_file(dir_fh, entry.fh)
                    ):
                        per_name.setdefault(entry.name, set()).add(
                            store.file_vnode(dir_fh, entry.fh).read_all()
                        )
    return bool(per_name) and all(len(v) == 1 for v in per_name.values())


def measure_throughput(files: int) -> dict:
    """Resolutions/second clearing a backlog of covered conflicts."""
    system = build_conflicted(files, resolvers=True)
    daemon = system.host("a").recon_daemon
    start = time.perf_counter()
    daemon.tick()
    elapsed = time.perf_counter() - start
    resolved = daemon.stats.total_auto_resolved
    return {
        "conflicted_files": files,
        "auto_resolved": resolved,
        "seconds": elapsed,
        "resolutions_per_sec": resolved / elapsed if elapsed else float("inf"),
    }


def measure_convergence(files: int, resolvers: bool, round_cap: int = 8) -> dict:
    """Post-heal recon rounds until identical covered contents (or cap)."""
    system = build_conflicted(files, resolvers=resolvers)
    rounds = None
    for round_index in range(1, round_cap + 1):
        for host_name in sorted(system.hosts):
            host = system.host(host_name)
            host.recon_daemon.tick()
            host.propagation_daemon.tick()
        if covered_logs_identical(system) and system.total_conflicts() == 0:
            rounds = round_index
            break
    return {
        "mode": "resolvers" if resolvers else "manual-baseline",
        "conflicted_files": files,
        "rounds_to_convergence": rounds,  # None: never within the cap
        "round_cap": round_cap,
        "unresolved_conflicts": system.total_conflicts(),
        "auto_resolved": sum(
            system.host(n).recon_daemon.stats.total_auto_resolved for n in system.hosts
        ),
    }


def resolvers_snapshot(fast: bool = False) -> dict:
    """The BENCH_resolvers.json payload."""
    files = 8 if fast else 32
    return {
        "throughput": measure_throughput(files),
        "convergence_with_resolvers": measure_convergence(files, resolvers=True),
        "convergence_manual_baseline": measure_convergence(files, resolvers=False),
    }


def check_bounds(snapshot: dict) -> list[str]:
    """The CI gate: returns a list of violated bounds (empty = pass)."""
    violations = []
    throughput = snapshot["throughput"]
    if throughput["auto_resolved"] != throughput["conflicted_files"]:
        violations.append(
            f"only {throughput['auto_resolved']} of "
            f"{throughput['conflicted_files']} covered conflicts auto-resolved"
        )
    if throughput["resolutions_per_sec"] < MIN_RESOLUTIONS_PER_SEC:
        violations.append(
            f"resolution throughput {throughput['resolutions_per_sec']:.1f}/s "
            f"(bound: >= {MIN_RESOLUTIONS_PER_SEC}/s)"
        )
    auto = snapshot["convergence_with_resolvers"]
    if auto["rounds_to_convergence"] is None:
        violations.append("resolver-enabled run never converged within the round cap")
    elif auto["rounds_to_convergence"] > CONVERGENCE_ROUND_BOUND:
        violations.append(
            f"resolver-enabled convergence took {auto['rounds_to_convergence']} rounds "
            f"(bound: {CONVERGENCE_ROUND_BOUND})"
        )
    if auto["unresolved_conflicts"] != 0:
        violations.append(
            f"{auto['unresolved_conflicts']} covered conflicts left unresolved"
        )
    manual = snapshot["convergence_manual_baseline"]
    if manual["unresolved_conflicts"] == 0:
        violations.append(
            "manual baseline reported no conflicts — the workload stopped conflicting"
        )
    return violations


class TestShape:
    def test_backlog_fully_resolves_in_one_visit(self):
        stats = measure_throughput(files=6)
        assert stats["auto_resolved"] == 6

    def test_resolvers_converge_within_bound(self):
        stats = measure_convergence(files=6, resolvers=True)
        assert stats["rounds_to_convergence"] is not None
        assert stats["rounds_to_convergence"] <= CONVERGENCE_ROUND_BOUND
        assert stats["unresolved_conflicts"] == 0

    def test_manual_baseline_stays_conflicted(self):
        stats = measure_convergence(files=6, resolvers=False, round_cap=4)
        assert stats["rounds_to_convergence"] is None
        assert stats["unresolved_conflicts"] > 0
        assert stats["auto_resolved"] == 0

    def test_fast_snapshot_passes_its_own_gate(self):
        assert check_bounds(resolvers_snapshot(fast=True)) == []


def test_bench_resolution_backlog(benchmark):
    def clear_backlog():
        system = build_conflicted(4, resolvers=True)
        system.host("a").recon_daemon.tick()
        return system

    benchmark(clear_backlog)


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    snapshot = resolvers_snapshot(fast=fast)
    print(json.dumps(snapshot, indent=2, default=str))
    RESOLVERS_JSON.write_text(json.dumps(snapshot, indent=2, default=str) + "\n")
    violations = check_bounds(snapshot)
    for violation in violations:
        print(f"BOUND VIOLATED: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
