"""E16: the incremental sync plane — subtree pruning and block deltas.

Two claims, both about making sync cost O(what changed):

* **Subtree pruning.**  Each directory's aux record carries a recon digest
  folded over its entries and stored children; ``sync_probe`` exposes the
  Merkle-style subtree digest plus per-child hints in one RPC.  A no-change
  reconciliation round against a converged peer is a constant number of
  RPCs — one volume-root fetch, at most one replica-name lookup, and one
  probe — regardless of how many directories the volume holds.

* **Block deltas.**  ``block_digests``/``read_blocks`` let ``pull_file``
  fetch only the blocks that differ; a one-block change to a large file
  re-propagates about one block of bytes instead of the whole file.

``delta_sync_snapshot()`` produces the BENCH_delta_sync.json payload that
report_all.py writes.  Run directly (``python benchmarks/bench_delta_sync.py
--fast``) it sizes the workload down and exits non-zero if either bound is
violated — the CI gate.
"""

import json
import sys

from repro.errors import NotSupported
from repro.physical.wire import DELTA_BLOCK_SIZE
from repro.recon import PullOutcome, pull_file, reconcile_subtree
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

# the acceptance bounds: a no-change round is at most NO_CHANGE_RPC_BOUND
# RPCs per peer; a one-block change copies at most DELTA_BLOCK_BOUND blocks
NO_CHANGE_RPC_BOUND = 3
DELTA_BLOCK_BOUND = 2


def build_volume(dirs: int, files_per_dir: int = 2) -> FicusSystem:
    """A converged two-replica volume with ``dirs`` populated directories."""
    system = FicusSystem(["a", "b"], daemon_config=QUIET)
    fs = system.host("a").fs()
    for d in range(dirs):
        fs.mkdir(f"/d{d}")
        for f in range(files_per_dir):
            fs.write_file(f"/d{d}/f{f}", bytes(40 * (f + 1)))
    system.reconcile_everything()
    system.reconcile_everything()
    return system


def _volrep(system: FicusSystem, host: str):
    return next(loc.volrep for loc in system.root_locations if loc.host == host)


class _NoProbe:
    """A remote root that predates ``sync_probe`` — forces the full walk."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def sync_probe(self, fh=None, ctx=None):
        raise NotSupported("sync_probe")


def measure_no_change_round(dirs: int) -> dict:
    """RPC cost of reconciling an already-converged volume, with and
    without pruning, on the same tree."""
    system = build_volume(dirs)
    host_b = system.host("b")

    before = system.network.stats.rpcs_sent
    results = host_b.recon_daemon.tick()
    pruned_rpcs = system.network.stats.rpcs_sent - before
    peers = max(1, len(results))

    # the pre-pruning protocol, measured: a full subtree walk that cannot
    # probe (one op_dir read + one getattrs_batch per directory, per peer)
    remote_root = host_b.fabric.volume_root("a", _volrep(system, "a"))
    before = system.network.stats.rpcs_sent
    legacy = reconcile_subtree(host_b.physical, _volrep(system, "b"), _NoProbe(remote_root), "a")
    legacy_rpcs = system.network.stats.rpcs_sent - before

    result = results[0]
    return {
        "directories": dirs + 1,  # + the root
        "rpcs_per_peer": pruned_rpcs / peers,
        "bound": f"<= {NO_CHANGE_RPC_BOUND} RPCs per peer",
        "subtrees_pruned": result.subtrees_pruned,
        "probe_rpcs": result.probe_rpcs,
        "directories_reconciled": result.directories_reconciled,
        "legacy_full_walk_rpcs": legacy_rpcs,
        "legacy_directories_reconciled": legacy.directories_reconciled,
        "speedup": legacy_rpcs / max(1, pruned_rpcs),
    }


def measure_delta_propagation(blocks: int) -> dict:
    """Bytes copied to re-propagate a large file after a one-block edit."""
    size = blocks * DELTA_BLOCK_SIZE
    system = build_volume(dirs=1)
    contents = bytes((i * 13) % 256 for i in range(size))
    system.host("a").root().create("big").write(0, contents)
    system.reconcile_everything()

    mutated = bytearray(contents)
    mutated[size // 2] ^= 0xFF
    big = system.host("a").root().lookup("big")
    big.write(0, bytes(mutated))

    store_b = system.host("b").physical.store_for(_volrep(system, "b"))
    root_fh = store_b.root_handle()
    remote = system.host("b").fabric.volume_root("a", _volrep(system, "a"))
    result = pull_file(store_b, root_fh, big.fh, remote)
    assert result.outcome is PullOutcome.PULLED
    assert store_b.file_vnode(root_fh, big.fh).read_all() == bytes(mutated)

    return {
        "file_bytes": size,
        "changed_bytes": 1,
        "bytes_copied": result.bytes_copied,
        "bytes_saved": result.bytes_saved,
        "blocks_copied": result.bytes_copied / DELTA_BLOCK_SIZE,
        "bound": f"<= {DELTA_BLOCK_BOUND} blocks",
        "whole_file_equivalent_bytes": size,
        "reduction_factor": size / max(1, result.bytes_copied),
    }


def delta_sync_snapshot(fast: bool = False) -> dict:
    """The BENCH_delta_sync.json payload."""
    dirs = 12 if fast else 50
    blocks = 16 if fast else 64
    return {
        "block_size": DELTA_BLOCK_SIZE,
        "no_change_round": measure_no_change_round(dirs),
        "delta_propagation": measure_delta_propagation(blocks),
    }


def check_bounds(snapshot: dict) -> list[str]:
    """The CI gate: returns a list of violated bounds (empty = pass)."""
    violations = []
    round_ = snapshot["no_change_round"]
    if round_["rpcs_per_peer"] > NO_CHANGE_RPC_BOUND:
        violations.append(
            f"no-change recon round cost {round_['rpcs_per_peer']} RPCs per peer "
            f"(bound: {NO_CHANGE_RPC_BOUND})"
        )
    if round_["directories_reconciled"] != 0:
        violations.append(
            f"no-change recon round read {round_['directories_reconciled']} directories"
        )
    delta = snapshot["delta_propagation"]
    if delta["bytes_copied"] > DELTA_BLOCK_BOUND * DELTA_BLOCK_SIZE:
        violations.append(
            f"one-block change copied {delta['bytes_copied']} bytes "
            f"(bound: {DELTA_BLOCK_BOUND} blocks = {DELTA_BLOCK_BOUND * DELTA_BLOCK_SIZE})"
        )
    return violations


class TestShape:
    def test_no_change_round_is_constant_rpcs(self):
        stats = measure_no_change_round(dirs=12)
        assert stats["rpcs_per_peer"] <= NO_CHANGE_RPC_BOUND
        assert stats["directories_reconciled"] == 0
        assert stats["subtrees_pruned"] >= 1

    def test_pruned_round_beats_full_walk(self):
        stats = measure_no_change_round(dirs=12)
        assert stats["legacy_full_walk_rpcs"] > stats["rpcs_per_peer"]
        assert stats["legacy_directories_reconciled"] == 13  # root + 12

    def test_one_block_change_copies_at_most_two_blocks(self):
        stats = measure_delta_propagation(blocks=16)
        assert stats["bytes_copied"] <= DELTA_BLOCK_BOUND * DELTA_BLOCK_SIZE
        assert stats["bytes_saved"] >= (16 - DELTA_BLOCK_BOUND) * DELTA_BLOCK_SIZE

    def test_fast_snapshot_passes_its_own_gate(self):
        assert check_bounds(delta_sync_snapshot(fast=True)) == []


def test_bench_no_change_round(benchmark):
    system = build_volume(dirs=12)
    system.host("b").recon_daemon.tick()  # converge any stragglers
    benchmark(lambda: system.host("b").recon_daemon.tick())


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    snapshot = delta_sync_snapshot(fast=fast)
    print(json.dumps(snapshot, indent=2, default=str))
    violations = check_bounds(snapshot)
    for violation in violations:
        print(f"BOUND VIOLATED: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
