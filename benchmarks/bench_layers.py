"""E1 (Figures 1-2): transparent layer composition.

The same operation script runs through four stack configurations —
plain UFS, physical-over-UFS, the full local Ficus stack, and the full
stack with an NFS hop between logical and physical — producing identical
results.  The timing comparison shows what each added layer costs.
"""

import pytest

from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import UfsLayer

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def op_script(root) -> list[bytes]:
    """The workload every stack runs: namespace churn + file I/O."""
    out = []
    d = root.mkdir("work")
    f = d.create("data.bin")
    f.write(0, b"0123456789" * 20)
    out.append(root.walk("work/data.bin").read_all())
    d.create("second").write(0, b"more")
    d.rename("second", d, "renamed")

    def names(dirv):
        # UFS lists './..' but Ficus directories have no dot entries;
        # the comparison is about user-visible names
        return b",".join(e.name.encode() for e in dirv.readdir() if e.name not in (".", ".."))

    out.append(names(d))
    d.remove("renamed")
    out.append(names(d))
    out.append(root.walk("work").getattr().ftype.name.encode())
    return out


def make_ufs_stack():
    return UfsLayer(Ufs.mkfs(BlockDevice(8192), num_inodes=512)).root()


def make_local_ficus_stack():
    system = FicusSystem(["solo"], daemon_config=QUIET)
    return system.host("solo").root()


def make_remote_ficus_stack():
    """Logical on 'client', physical on 'server': NFS in the middle."""
    system = FicusSystem(["server", "client"], root_volume_hosts=["server"], daemon_config=QUIET)
    return system.host("client").root()


STACKS = {
    "ufs-only": make_ufs_stack,
    "ficus-local": make_local_ficus_stack,
    "ficus-over-nfs": make_remote_ficus_stack,
}


class TestShape:
    def test_all_stacks_produce_identical_results(self):
        """Transparent insertion: replication (and an NFS hop) change
        nothing observable about the op script's results."""
        results = {name: op_script(factory()) for name, factory in STACKS.items()}
        baseline = results["ufs-only"]
        for name, outcome in results.items():
            assert outcome == baseline, f"stack {name} diverged"

    def test_report(self, capsys):
        with capsys.disabled():
            print("\n[E1] identical op-script results across stacks:", ", ".join(STACKS))


@pytest.mark.parametrize("stack", list(STACKS))
def test_bench_op_script(benchmark, stack):
    factory = STACKS[stack]

    def run():
        return op_script(factory())

    result = benchmark(run)
    assert result[0] == b"0123456789" * 20
