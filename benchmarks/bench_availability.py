"""E5 (Sections 1, 3): one-copy availability vs. the classical protocols.

"One-copy availability provides strictly greater availability than
primary copy, voting, weighted voting, and quorum consensus."

Every policy runs as a working replicated register over the same network
against identical partition traces; the table printed here is the
measured analogue of the paper's claim, and the assertions pin the shape:
one-copy >= everyone, everywhere, with the conflict count shown as the
price.
"""

import pytest

from repro.workload import AvailabilityExperiment

FAILURE_PROBS = [0.1, 0.3, 0.5, 0.7, 0.9]
POLICIES = ["one-copy", "primary-copy", "majority-voting", "weighted-voting", "quorum-consensus"]


def run_experiment(prob: float, epochs: int = 120):
    return AvailabilityExperiment(
        num_hosts=5, link_failure_prob=prob, epochs=epochs, seed=42
    ).run()


class TestShape:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {prob: run_experiment(prob) for prob in FAILURE_PROBS}

    def test_one_copy_dominates_every_policy_at_every_failure_rate(self, sweep):
        for prob, results in sweep.items():
            one = results["one-copy"]
            for name in POLICIES[1:]:
                other = results[name]
                assert one.write_availability >= other.write_availability, (prob, name)
                assert one.read_availability >= other.read_availability, (prob, name)

    def test_one_copy_total_when_every_host_stores_a_replica(self, sweep):
        for results in sweep.values():
            assert results["one-copy"].write_availability == 1.0
            assert results["one-copy"].read_availability == 1.0

    def test_gap_widens_as_partitions_worsen(self, sweep):
        """The crossover shape: at low failure rates everyone is close;
        at high failure rates quorum policies collapse while one-copy
        stays at 1.0."""
        gap = {
            prob: results["one-copy"].write_availability
            - results["majority-voting"].write_availability
            for prob, results in sweep.items()
        }
        assert gap[0.1] < 0.1
        assert gap[0.9] > 0.5
        assert gap[0.9] > gap[0.5] > gap[0.1]

    def test_conflicts_only_under_one_copy(self, sweep):
        results = sweep[0.5]
        assert results["one-copy"].conflicts > 0
        for name in POLICIES[1:]:
            assert results[name].conflicts == 0

    def test_report(self, sweep, capsys):
        with capsys.disabled():
            print("\n[E5] write availability (5 replicas, 120 epochs/point):")
            header = f"{'p(link down)':>12} | " + " | ".join(f"{n:>16}" for n in POLICIES)
            print(header)
            for prob, results in sweep.items():
                row = " | ".join(f"{results[n].write_availability:>16.3f}" for n in POLICIES)
                print(f"{prob:>12.1f} | {row}")
            print("one-copy conflicts per point:", [sweep[p]["one-copy"].conflicts for p in FAILURE_PROBS])


@pytest.mark.parametrize("prob", [0.3, 0.7])
def test_bench_availability_experiment(benchmark, prob):
    benchmark(run_experiment, prob, 30)
