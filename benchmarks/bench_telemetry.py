"""Telemetry: export snapshot and instrumentation overhead.

Two questions:

1. What does one standard cross-host workload look like through the new
   telemetry subsystem?  ``telemetry_snapshot()`` answers with the full
   export (span/trace totals, every metric, every event count) — this is
   what ``report_all.py`` serializes into ``BENCH_telemetry.json``.
2. What does instrumentation cost?  With a disabled hub every span is the
   shared no-op singleton and every instrument a shared null, so the
   steady-state write path should be indistinguishable from the
   pre-telemetry code (<5% is the acceptance bound; the pytest benchmarks
   below measure both sides).
"""

import time

from repro.sim import DaemonConfig, FicusSystem
from repro.telemetry import Telemetry

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def run_workload(telemetry: Telemetry | None = None) -> FicusSystem:
    """The standard two-host scenario: update, partition, heal, pull."""
    system = FicusSystem(["west", "east"], telemetry=telemetry)
    west = system.host("west").fs()
    west.write_file("/a.txt", b"before the partition")
    system.run_for(30.0)
    system.partition([{"west"}, {"east"}])
    west.write_file("/a.txt", b"updated during the partition")
    west.write_file("/b.txt", b"created during the partition")
    system.heal()
    system.run_for(120.0)
    system.reconcile_everything()
    return system


def telemetry_snapshot() -> dict:
    """The BENCH_telemetry.json payload: one instrumented workload, exported."""
    system = run_workload(telemetry=Telemetry())
    hub = system.telemetry
    tracer = hub.tracer
    spans = list(tracer.finished)
    return {
        "workload": "two-host update/partition/heal/pull (virtual time)",
        "spans": {
            "finished": len(spans),
            "traces": len(tracer.trace_ids()),
            "dropped": tracer.dropped,
            "by_layer": _count_by(spans, "layer"),
            "by_host": _count_by(spans, "host"),
        },
        "metrics": hub.metrics.snapshot(),
        "events": dict(sorted(hub.events.counts.items())),
        "events_evicted": hub.events.evicted,
    }


def _count_by(spans, attr: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for span in spans:
        key = getattr(span, attr) or "-"
        out[key] = out.get(key, 0) + 1
    return dict(sorted(out.items()))


def _steady_state_fs():
    """A warmed single-host fs, optionally instrumented."""
    def build(telemetry: Telemetry | None):
        system = FicusSystem(["solo"], daemon_config=QUIET, telemetry=telemetry)
        fs = system.host("solo").fs()
        fs.write_file("/f", b"warm")
        return fs

    return build


def measure_overhead(ops: int = 200, repeats: int = 3) -> tuple[float, float]:
    """(disabled_seconds_per_op, enabled_seconds_per_op) for a write+read."""
    build = _steady_state_fs()
    results = []
    for telemetry in (None, Telemetry(max_spans=10 * ops)):
        fs = build(telemetry)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for i in range(ops):
                fs.write_file("/f", b"x" * 64)
                fs.read_file("/f")
            best = min(best, (time.perf_counter() - start) / ops)
        results.append(best)
    return results[0], results[1]


class TestShape:
    def test_snapshot_covers_every_signal(self):
        snap = telemetry_snapshot()
        assert snap["spans"]["finished"] > 0
        assert {"west", "east"} <= set(snap["spans"]["by_host"])
        assert {"logical", "physical", "nfs-client", "nfs-server"} <= set(
            snap["spans"]["by_layer"]
        )
        assert snap["metrics"]["logical.notifications_sent"]["value"] >= 1
        assert snap["events"].get("notification.sent", 0) >= 1

    def test_disabled_hub_leaves_no_residue(self):
        system = run_workload(telemetry=None)
        assert len(system.telemetry.metrics) == 0
        assert len(system.telemetry.tracer.finished) == 0


def test_bench_write_read_telemetry_off(benchmark):
    fs = _steady_state_fs()(None)

    def op():
        fs.write_file("/f", b"x" * 64)
        return fs.read_file("/f")

    benchmark(op)


def test_bench_write_read_telemetry_on(benchmark):
    fs = _steady_state_fs()(Telemetry(max_spans=1000))

    def op():
        fs.write_file("/f", b"x" * 64)
        return fs.read_file("/f")

    benchmark(op)


if __name__ == "__main__":
    off, on = measure_overhead()
    print(f"steady-state write+read: telemetry off {off * 1e6:.1f} us/op, "
          f"on {on * 1e6:.1f} us/op ({(on - off) / off:+.1%})")
