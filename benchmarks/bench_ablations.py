"""Ablations of the design choices the paper motivates.

Each ablation turns one mechanism off (or swaps one design decision) and
measures what it was buying:

* A1 — kernel-resident vs application-level execution (Section 5's
  address-space-crossing penalty).
* A2 — the directory name lookup cache and buffer cache: what warm opens
  cost without them (the Section 6 claim depends on them).
* A3 — update notification vs reconciliation-only propagation: how stale
  a peer replica stays when the notification datagrams are lost.
* A4 — open/close session coalescing vs per-write version bumps: how much
  aux-file traffic the smuggled open/close information saves.
"""

import pytest

from repro.devel import measure_crossing_penalty
from repro.sim import DaemonConfig, FicusSystem, HostConfig
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import UfsLayer

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def ufs_factory():
    return UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=128))


class TestA1AddressSpaceCrossing:
    def test_user_level_penalty_exists_and_report(self, capsys):
        penalty = measure_crossing_penalty(ufs_factory, ops=500)
        with capsys.disabled():
            print(
                f"\n[A1] getattr: kernel {penalty.kernel_seconds_per_op * 1e6:.1f} us, "
                f"user-level {penalty.user_seconds_per_op * 1e6:.1f} us "
                f"({penalty.factor:.1f}x)"
            )
        assert penalty.factor > 1.0


class TestA2Caches:
    def _warm_open_reads(self, cache_blocks: int, name_cache: int) -> int:
        config = HostConfig(
            disk_blocks=65536, num_inodes=512,
            cache_blocks=cache_blocks, name_cache_size=name_cache,
            isolate_inodes=True,
        )
        system = FicusSystem(["solo"], daemon_config=QUIET, host_config=config)
        host = system.host("solo")
        fs = host.fs()
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        fs.stat("/d/f")  # warm (to whatever extent caches exist)
        snap = host.device.counters.snapshot()
        fs.stat("/d/f")
        return host.device.counters.delta_since(snap).reads

    def test_without_caches_every_open_hits_disk(self, capsys):
        with_caches = self._warm_open_reads(cache_blocks=512, name_cache=512)
        without = self._warm_open_reads(cache_blocks=0, name_cache=0)
        with capsys.disabled():
            print(f"\n[A2] warm open disk reads: caches on={with_caches}, caches off={without}")
        assert with_caches == 0
        # without caching every metadata object is re-fetched: the warm
        # open costs as much as the cold one
        assert without >= 6

    def test_name_cache_alone_saves_directory_scans(self):
        only_buffer = self._warm_open_reads(cache_blocks=512, name_cache=0)
        both = self._warm_open_reads(cache_blocks=512, name_cache=512)
        assert only_buffer == both == 0  # buffer cache covers repeat reads
        neither = self._warm_open_reads(cache_blocks=0, name_cache=512)
        assert neither > 0  # DNLC cannot substitute for data caching


class TestA3NotificationValue:
    def _staleness(self, drop_notifications: bool) -> float:
        config = DaemonConfig(
            propagation_period=1.0, propagation_min_age=0.0,
            recon_period=60.0, graft_prune_period=None,
        )
        system = FicusSystem(["w", "r"], daemon_config=config)
        writer = system.host("w").fs()
        reader = system.host("r")
        writer.write_file("/f", b"v0")
        system.run_for(65.0)  # fully settled
        if drop_notifications:
            # sever the datagram path only: clear the cache after the write
            writer.write_file("/f", b"v1")
            reader.physical._new_versions.clear()
        else:
            writer.write_file("/f", b"v1")
        written_at = system.clock.now()
        volrep = next(l.volrep for l in system.root_locations if l.host == "r")
        store = reader.physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        while store.file_vnode(store.root_handle(), fh).read_all() != b"v1":
            system.run_for(1.0)
        return system.clock.now() - written_at

    def test_notifications_cut_staleness_vs_recon_only(self, capsys):
        with_notify = self._staleness(drop_notifications=False)
        recon_only = self._staleness(drop_notifications=True)
        with capsys.disabled():
            print(
                f"\n[A3] replica staleness: with notification {with_notify:.1f}s, "
                f"reconciliation-only {recon_only:.1f}s"
            )
        # notification converges within a couple propagation periods;
        # without it the next periodic recon (60 s) must come around
        assert with_notify <= 5.0
        assert recon_only > with_notify * 4


class TestA4SessionCoalescing:
    def _aux_writes_for_k_writes(self, use_session: bool, k: int = 20) -> int:
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        fs.write_file("/f", b"")
        snap = host.device.counters.snapshot()
        if use_session:
            with fs.open("/f", "a") as f:
                for _ in range(k):
                    f.write(b"x")
        else:
            vnode = host.root().lookup("f")
            for _ in range(k):
                vnode.write(0, b"x")  # bare writes: no session
        return host.device.counters.delta_since(snap).writes

    def test_sessions_cut_write_amplification(self, capsys):
        with_session = self._aux_writes_for_k_writes(True)
        without = self._aux_writes_for_k_writes(False)
        with capsys.disabled():
            print(
                f"\n[A4] device writes for 20 appends: session={with_session}, "
                f"bare={without} (each bare write rewrites the aux file)"
            )
        assert with_session < without

    def test_session_vv_stays_small(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        fs = system.host("solo").fs()
        with fs.open("/f", "w") as f:
            for _ in range(50):
                f.write(b"chunk")
        volrep = system.root_locations[0].volrep
        store = system.host("solo").physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        assert store.read_file_aux(store.root_handle(), fh).vv.total_updates == 1


@pytest.mark.parametrize("user_level", [False, True])
def test_bench_execution_mode(benchmark, user_level):
    from repro.devel import build_switchable

    layer = build_switchable(ufs_factory, user_level, name=f"m{int(user_level)}")
    root = layer.root()
    root.create("probe").write(0, b"x")
    probe = root.lookup("probe")
    benchmark(probe.getattr)
