#!/usr/bin/env python3
"""Regenerate the full evaluation in one command.

Prints every experiment table from EXPERIMENTS.md (E1–E21 and the A1–A4
ablations) by invoking the same measurement code the pytest benchmarks
use.  Pure stdout, no pytest required:

    python benchmarks/report_all.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_layers import STACKS, op_script  # noqa: E402
from bench_open_io import PAPER_EXTRA_IOS, ficus_open_reads, ufs_open_reads  # noqa: E402

#: Where the telemetry export lands: the repository root.
TELEMETRY_JSON = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

#: Where the attribute-plane / version-vector-cache export lands.
ATTR_CACHE_JSON = Path(__file__).resolve().parent.parent / "BENCH_attr_cache.json"

#: Where the incremental sync plane export lands.
DELTA_SYNC_JSON = Path(__file__).resolve().parent.parent / "BENCH_delta_sync.json"

#: Where the consistency observability plane export lands.
HEALTH_JSON = Path(__file__).resolve().parent.parent / "BENCH_health.json"

#: Where the conflict-resolver subsystem export lands.
RESOLVERS_JSON = Path(__file__).resolve().parent.parent / "BENCH_resolvers.json"

#: Where the fused hot-path throughput export lands.
OPEN_IO_JSON = Path(__file__).resolve().parent.parent / "BENCH_open_io.json"

#: Where the scale-out anti-entropy export lands.
SCALE_OUT_JSON = Path(__file__).resolve().parent.parent / "BENCH_scale_out.json"

#: Where the provenance-plane export lands.
PROVENANCE_JSON = Path(__file__).resolve().parent.parent / "BENCH_provenance.json"


def e1_layers() -> None:
    results = {name: op_script(factory()) for name, factory in STACKS.items()}
    baseline = next(iter(results.values()))
    verdict = "identical" if all(r == baseline for r in results.values()) else "DIVERGED"
    print(f"[E1] op-script results across {', '.join(results)}: {verdict}")


def e2_crossing() -> None:
    import time

    from bench_crossing import DEPTHS, make_stack

    samples = {}
    for depth in DEPTHS:
        _, root = make_stack(depth)
        probe = root.lookup("probe")
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(2000):
                probe.getattr()
            best = min(best, (time.perf_counter() - start) / 2000)
        samples[depth] = best
    per_crossing = (samples[max(DEPTHS)] - samples[0]) / max(DEPTHS)
    print(
        f"[E2] layer crossing: base getattr {samples[0] * 1e6:.2f} us, "
        f"per-crossing {per_crossing * 1e6:.2f} us "
        f"({per_crossing / samples[0]:.1%} of base)"
    )


def e3_e4_open_io() -> None:
    ufs_cold, ufs_warm = ufs_open_reads()
    ficus_cold, ficus_warm = ficus_open_reads()
    print(
        f"[E3] cold open: UFS={ufs_cold} reads, Ficus={ficus_cold} reads, "
        f"extra={ficus_cold - ufs_cold} (paper: {PAPER_EXTRA_IOS}, "
        f"+2 batched dir aux, amortized by the attr cache)"
    )
    print(f"[E4] warm open: UFS={ufs_warm} reads, Ficus={ficus_warm} reads (paper: 0 extra)")


def e5_availability() -> None:
    from repro.workload import AvailabilityExperiment

    policies = ["one-copy", "primary-copy", "majority-voting", "weighted-voting", "quorum-consensus"]
    print("[E5] write availability (5 replicas, 120 epochs/point):")
    print(f"  {'p(down)':>8} | " + " | ".join(f"{p:>16}" for p in policies))
    for prob in [0.1, 0.3, 0.5, 0.7, 0.9]:
        results = AvailabilityExperiment(
            num_hosts=5, link_failure_prob=prob, epochs=120, seed=42
        ).run()
        row = " | ".join(f"{results[p].write_availability:>16.3f}" for p in policies)
        print(f"  {prob:>8.1f} | {row}")


def e6_propagation() -> None:
    from bench_propagation import DELAYS, run_with_delay

    print("[E6] propagation delay vs pulls (bursty updates):")
    for delay in DELAYS:
        updates, pulls, copied = run_with_delay(delay)
        print(f"  min_age={delay:>6.1f}s: {updates} updates -> {pulls} pulls ({copied} bytes)")


def e7_commit() -> None:
    from bench_commit import SIZES, insert_file, make_world, point_update_via_shadow

    print("[E7] shadow-commit cost of a 16-byte point update:")
    for size in SIZES:
        _, _, store, root = make_world()
        fh, vnode = insert_file(store, root, "f", size)
        writes = point_update_via_shadow(store, root, fh, vnode.read_all())
        print(f"  file {size >> 10:>5} KiB -> {writes:>5} device writes")


def e8_reconciliation() -> None:
    from bench_reconciliation import QUIET, diverge

    from repro.sim import FicusSystem

    print("[E8] contended files -> reported conflicts:")
    for contended in [0, 2, 5, 10]:
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        diverge(system, creates_per_side=5, shared_conflicts=contended)
        system.reconcile_everything()
        found = len(system.host("a").conflict_log.unresolved())
        print(f"  {contended:>3} contended -> {found:>3} reported")


def e9_grafting() -> None:
    from bench_grafting import NUM_VOLUMES, build_forest

    system, hub = build_forest()
    fs = hub.fs()
    for i in range(NUM_VOLUMES):
        fs.read_file(f"/vol{i}/data")
    print(
        f"[E9] autografting: {hub.logical.grafter.grafts_performed} grafts for "
        f"{NUM_VOLUMES} volumes, {hub.logical.grafter.active_grafts} active"
    )


def e10_overload() -> None:
    from repro.physical import max_user_name_length
    from repro.ufs import MAX_NAME_LEN

    print(
        f"[E10] name budget: {MAX_NAME_LEN} -> {max_user_name_length()} after "
        f"insert encoding (paper: 'about 200'); session open/close are "
        f"first-class NFS ops, not lookup-encoded"
    )


def e11_locality() -> None:
    from bench_locality import SKEWS, replay

    print("[E11] disk reads per open vs Zipf skew (48-block cache):")
    for skew in SKEWS:
        ios, locality = replay(skew)
        print(f"  skew={skew:>5.2f} locality={locality:>5.3f} -> {ios:>6.3f} reads/open")


def e13_scale() -> None:
    from bench_scale import CLUSTER_SIZES, build

    rows = {}
    for n in CLUSTER_SIZES:
        system = build(n)
        fs = system.host("h0").fs()
        fs.write_file("/warm", b"x")
        before = system.network.stats.rpcs_sent
        fs.write_file("/f", b"payload")
        rows[n] = system.network.stats.rpcs_sent - before
    print(f"[E13] RPCs per create+write vs cluster size: {rows}")


def a1_to_a4_ablations() -> None:
    from repro.devel import measure_crossing_penalty
    from repro.storage import BlockDevice
    from repro.ufs import Ufs
    from repro.vnode import UfsLayer

    penalty = measure_crossing_penalty(
        lambda: UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=128)), ops=500
    )
    print(
        f"[A1] address-space crossing: kernel {penalty.kernel_seconds_per_op * 1e6:.1f} us "
        f"vs user-level {penalty.user_seconds_per_op * 1e6:.1f} us ({penalty.factor:.1f}x)"
    )

    from bench_ablations import TestA3NotificationValue

    probe = TestA3NotificationValue()
    fast = probe._staleness(drop_notifications=False)
    slow = probe._staleness(drop_notifications=True)
    print(f"[A3] staleness: with notification {fast:.1f}s, reconciliation-only {slow:.1f}s")

    from bench_ablations import TestA4SessionCoalescing

    coalesce = TestA4SessionCoalescing()
    with_session = coalesce._aux_writes_for_k_writes(True)
    without = coalesce._aux_writes_for_k_writes(False)
    print(f"[A4] 20 appends: {with_session} writes in a session vs {without} bare")


def e14_telemetry() -> None:
    from bench_telemetry import measure_overhead, telemetry_snapshot

    snap = telemetry_snapshot()
    off, on = measure_overhead(ops=100)
    snap["overhead"] = {
        "disabled_us_per_op": off * 1e6,
        "enabled_us_per_op": on * 1e6,
        "relative": (on - off) / off if off else 0.0,
    }
    TELEMETRY_JSON.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    spans = snap["spans"]
    print(
        f"[E14] telemetry: {spans['finished']} spans / {spans['traces']} traces, "
        f"{len(snap['metrics'])} metrics, {sum(snap['events'].values())} events; "
        f"overhead {snap['overhead']['relative']:+.1%} "
        f"-> {TELEMETRY_JSON.name}"
    )


def e15_attr_cache() -> None:
    from bench_attr_cache import attr_cache_snapshot

    snap = attr_cache_snapshot()
    ATTR_CACHE_JSON.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    print(
        f"[E15] attribute plane: cold selection {snap['cold']['rpcs']} RPCs "
        f"({snap['cold']['rpcs_per_remote_replica']:.1f}/remote replica, "
        f"un-batched would be {snap['unbatched_equivalent_rpcs']}), "
        f"warm {snap['warm']['rpcs']} RPCs "
        f"-> {ATTR_CACHE_JSON.name}"
    )


def e16_delta_sync() -> None:
    from bench_delta_sync import check_bounds, delta_sync_snapshot

    snap = delta_sync_snapshot()
    DELTA_SYNC_JSON.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    violations = check_bounds(snap)
    round_ = snap["no_change_round"]
    delta = snap["delta_propagation"]
    print(
        f"[E16] incremental sync: no-change round over {round_['directories']} dirs "
        f"= {round_['rpcs_per_peer']:.0f} RPCs/peer (full walk: "
        f"{round_['legacy_full_walk_rpcs']}, {round_['speedup']:.0f}x); "
        f"1-block edit of {delta['file_bytes'] >> 10} KiB file copied "
        f"{delta['bytes_copied']} bytes ({delta['reduction_factor']:.0f}x less) "
        f"-> {DELTA_SYNC_JSON.name}"
        + ("".join(f"\n  BOUND VIOLATED: {v}" for v in violations))
    )


def e17_health() -> None:
    from bench_health import check_bounds, health_snapshot

    snap = health_snapshot()
    HEALTH_JSON.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    violations = check_bounds(snap)
    overhead = snap["overhead"]
    scenario = snap["partition_scenario"]
    recorder = snap["flight_recorder"]
    print(
        f"[E17] observability plane: overhead {overhead['ratio']:.3f}x "
        f"(bound {overhead['bound']}); partitioned write suspects "
        f"{','.join(scenario['suspected_peers'])}, cleared after recon: "
        f"{scenario['suspicion_cleared_after_recon']}; flight ring "
        f"{recorder['ring_size']}/{recorder['ring_capacity']} entries "
        f"-> {HEALTH_JSON.name}"
        + ("".join(f"\n  BOUND VIOLATED: {v}" for v in violations))
    )


def e18_resolvers() -> None:
    from bench_resolvers import check_bounds, resolvers_snapshot

    snap = resolvers_snapshot(fast=True)
    RESOLVERS_JSON.write_text(json.dumps(snap, indent=2, default=str) + "\n")
    violations = check_bounds(snap)
    throughput = snap["throughput"]
    auto = snap["convergence_with_resolvers"]
    manual = snap["convergence_manual_baseline"]
    print(
        f"[E18] conflict resolvers: {throughput['auto_resolved']}/"
        f"{throughput['conflicted_files']} covered conflicts cleared in one visit "
        f"({throughput['resolutions_per_sec']:.0f}/s); convergence in "
        f"{auto['rounds_to_convergence']} rounds with 0 open conflicts vs manual "
        f"baseline stuck at {manual['unresolved_conflicts']} "
        f"-> {RESOLVERS_JSON.name}"
        + ("".join(f"\n  BOUND VIOLATED: {v}" for v in violations))
    )


def e19_open_io_throughput() -> None:
    from bench_open_io import check_bounds, open_io_throughput

    snap = open_io_throughput(fast=True)
    OPEN_IO_JSON.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    violations = check_bounds(snap)
    ops = snap["ops_per_second"]
    fusion = snap["fusion"]
    print(
        f"[E19] fused hot path: {ops['legacy']:.0f} -> {ops['optimized']:.0f} ops/s "
        f"({ops['speedup']:.1f}x, bound {ops['bound']}); fusion hit rate "
        f"{fusion['hit_rate']:.2f} over {fusion['members']} transparent members, "
        f"per-crossing {snap['per_crossing_us']['unfused_us']:.2f} -> "
        f"{snap['per_crossing_us']['fused_us']:.2f} us "
        f"-> {OPEN_IO_JSON.name}"
        + ("".join(f"\n  BOUND VIOLATED: {v}" for v in violations))
    )


def e20_scale_out() -> None:
    from bench_scale_out import check_bounds, scale_out_snapshot

    snap = scale_out_snapshot(fast=True)
    SCALE_OUT_JSON.write_text(json.dumps(snap, indent=2, default=str) + "\n")
    violations = check_bounds(snap)
    gossip = snap["gossip"]
    mesh = snap["full_mesh_baseline"]
    print(
        f"[E20] scale-out anti-entropy: {snap['hosts']} hosts, "
        f"{gossip['volumes']} volumes; gossip converged in "
        f"{gossip['rounds_to_converge']} rounds (bound "
        f"{snap['bounds']['rounds_bound']}) at <= "
        f"{gossip['max_host_rpcs_per_round']} RPCs/host/round (bound "
        f"{snap['bounds']['rpc_bound']}); full-mesh baseline peaked at "
        f"{mesh['max_host_rpcs_per_round']} RPCs/host/round "
        f"({snap['load_ratio_full_mesh_over_gossip']:.1f}x gossip) "
        f"-> {SCALE_OUT_JSON.name}"
        + ("".join(f"\n  BOUND VIOLATED: {v}" for v in violations))
    )


def e21_provenance() -> None:
    from bench_provenance import check_bounds, provenance_snapshot

    snap = provenance_snapshot(fast=True)
    PROVENANCE_JSON.write_text(json.dumps(snap, indent=2, default=str) + "\n")
    violations = check_bounds(snap)
    overhead = snap["overhead"]
    lineage = snap["lineage_scenario"]
    verify = snap["replicate_and_verify"]
    print(
        f"[E21] provenance plane: overhead {overhead['ratio']:.3f}x "
        f"(bound {overhead['bound']}); {lineage['versions_ledgered']}/"
        f"{lineage['live_versions']} live versions ledgered, feeds-of-conflict "
        f"exact: {lineage['feeds_of_conflict_exact']}; replicate-and-verify "
        f"seed {verify['seed']}: {verify['ops_replayed']}/{verify['ops_recorded']} "
        f"ops replayed, identical: {verify['replay_identical']} "
        f"-> {PROVENANCE_JSON.name}"
        + ("".join(f"\n  BOUND VIOLATED: {v}" for v in violations))
    )


def main() -> None:
    print("=" * 72)
    print("Ficus reproduction — full evaluation regeneration")
    print("=" * 72)
    for section in (
        e1_layers,
        e2_crossing,
        e3_e4_open_io,
        e5_availability,
        e6_propagation,
        e7_commit,
        e8_reconciliation,
        e9_grafting,
        e10_overload,
        e11_locality,
        e13_scale,
        a1_to_a4_ablations,
        e14_telemetry,
        e15_attr_cache,
        e16_delta_sync,
        e17_health,
        e18_resolvers,
        e19_open_io_throughput,
        e20_scale_out,
        e21_provenance,
    ):
        section()
        print()


if __name__ == "__main__":
    main()
