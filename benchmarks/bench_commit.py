"""E7 (Section 3.2 + footnote 5): the single-file atomic commit service.

"A shadow file replica is used to hold the new version until it is
completely propagated, and then the shadow atomically replaces the
original...  If a crash occurs before the shadow substitution, the
original replica is retained during recovery and the shadow discarded."

Footnote 5 concedes a cost: "it can have a significant effect if the
client is updating a few points in a large file.  To avoid alteration of
the UFS, rewriting the entire file is necessary."  The sweep below shows
exactly that: commit cost grows with file size even for a 16-byte point
update.
"""

import pytest

from repro.errors import CrashInjected
from repro.physical import EntryType, FicusPhysicalLayer, op_commit, op_insert, op_shadow
from repro.storage import BlockDevice
from repro.ufs import Ufs, fsck
from repro.util import FicusFileHandle, VolumeId, VolumeReplicaId
from repro.vnode import UfsLayer
from repro.vv import VersionVector

VOL = VolumeId(1, 1)
VR = VolumeReplicaId(VOL, 1)
SIZES = [1 << 10, 16 << 10, 128 << 10, 1 << 20]


def make_world(disk_blocks: int = 1 << 16):
    device = BlockDevice(disk_blocks)
    ufs_layer = UfsLayer(Ufs.mkfs(device, num_inodes=256))
    phys = FicusPhysicalLayer(ufs_layer, "host")
    store = phys.create_volume_replica(VR)
    root = phys.root().lookup(VR.to_hex())
    return device, ufs_layer, store, root


def insert_file(store, root, name, size):
    fh = FicusFileHandle(VOL, store.new_file_id())
    vnode = root.create(op_insert(store.new_entry_id(), name, fh, EntryType.FILE))
    vnode.write(0, b"a" * size)
    return fh, vnode


def point_update_via_shadow(store, root, fh, contents: bytes) -> int:
    """Propagation-style point update: whole file rewritten via shadow.

    Returns the number of device writes it cost.
    """
    device = store.lower_root.layer.fs.device
    snap = device.counters.snapshot()
    shadow = root.lookup(op_shadow(fh))
    patched = contents[:100] + b"PATCHED!" + contents[108:]
    shadow.write(0, patched)
    root.lookup(op_commit(fh, VersionVector({1: 2})))
    return device.counters.delta_since(snap).writes


class TestShape:
    def test_commit_cost_scales_with_file_size_not_update_size(self, capsys):
        rows = []
        for size in SIZES:
            device, _, store, root = make_world()
            fh, vnode = insert_file(store, root, "f", size)
            contents = vnode.read_all()
            writes = point_update_via_shadow(store, root, fh, contents)
            rows.append((size, writes))
        with capsys.disabled():
            print("\n[E7] device writes for a 16-byte point update via shadow commit:")
            for size, writes in rows:
                print(f"  file {size >> 10:>6} KiB -> {writes:>5} writes")
        # whole-file rewrite: cost grows roughly linearly with file size
        assert rows[-1][1] > rows[0][1] * 10

    def test_crash_before_substitution_preserves_original(self):
        device, ufs_layer, store, root = make_world()
        fh, _ = insert_file(store, root, "f", 4096)
        shadow = root.lookup(op_shadow(fh))
        shadow.write(0, b"b" * 4096)
        device.plan_crash_after_writes(0)  # crash at the rename
        with pytest.raises(CrashInjected):
            root.lookup(op_commit(fh, VersionVector({1: 2})))
        device.recover()
        assert store.scavenge_shadows(store.root_handle()) == 1
        assert root.lookup("f").read_all() == b"a" * 4096
        assert fsck(ufs_layer.fs).clean

    def test_crash_at_any_point_never_mixes_versions(self):
        """Sweep the crash point across the whole commit sequence: after
        recovery the file is exactly the old or exactly the new version."""
        old, new = b"o" * 8192, b"n" * 8192
        crash_point = 0
        seen_new = False
        while True:
            device, ufs_layer, store, root = make_world()
            fh, _ = insert_file(store, root, "f", 0)
            store.file_vnode(store.root_handle(), fh).write(0, old)
            shadow = store.shadow_vnode(store.root_handle(), fh, create=True)
            shadow.write(0, new)
            device.plan_crash_after_writes(crash_point)
            try:
                store.commit_shadow(store.root_handle(), fh, VersionVector({1: 2}))
                completed = True
            except CrashInjected:
                completed = False
            device.recover()
            store.scavenge_shadows(store.root_handle())
            data = store.file_vnode(store.root_handle(), fh).read_all()
            assert data in (old, new), f"mixed state at crash point {crash_point}"
            if data == new:
                seen_new = True
            if completed:
                break
            crash_point += 1
        assert seen_new
        assert crash_point >= 1  # we actually exercised intermediate points


@pytest.mark.parametrize("size", SIZES)
def test_bench_shadow_commit(benchmark, size):
    device, _, store, root = make_world()
    fh, vnode = insert_file(store, root, "f", size)
    contents = vnode.read_all()

    def run():
        shadow = root.lookup(op_shadow(fh))
        shadow.write(0, contents)
        root.lookup(op_commit(fh, VersionVector({1: 2})))

    benchmark(run)


def test_bench_in_place_point_write(benchmark):
    """The comparison point: an in-place 16-byte write (no commit)."""
    device, _, store, root = make_world()
    fh, vnode = insert_file(store, root, "f", 1 << 20)
    benchmark(vnode.write, 100, b"PATCHED!PATCHED!")
