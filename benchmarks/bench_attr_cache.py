"""E15: the batched attribute plane and the version-vector cache.

Replica selection needs every replica's version vector.  Before the
attribute plane, each replica cost one RPC for the directory's aux record
plus one RPC per interesting child; now ``getattrs_batch`` returns the
directory's aux record AND all stored children's in a single reply, and
the logical layer's :class:`~repro.logical.VersionVectorCache` remembers
it per (replica, directory):

* cold path: at most ONE batched RPC per remote replica;
* warm path: ZERO RPCs — selection is answered from the cache;
* local updates write through, notifications invalidate remotely.

``attr_cache_snapshot()`` produces the BENCH_attr_cache.json payload
(measured RPC counts plus the net.* counters) that report_all.py writes.
"""

from repro.sim import DaemonConfig, FicusSystem
from repro.telemetry import Telemetry

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

HOSTS = ["a", "b", "c"]
NUM_FILES = 8


def build_world(telemetry: Telemetry | None = None) -> FicusSystem:
    """Three replicas of one volume, NUM_FILES converged files."""
    system = FicusSystem(HOSTS, daemon_config=QUIET, telemetry=telemetry)
    fs = system.host("a").fs()
    for i in range(NUM_FILES):
        fs.write_file(f"/f{i}", b"payload-%d" % i)
    system.reconcile_everything()
    return system


def _selection_rpcs(system: FicusSystem, host: str) -> int:
    """RPCs spent by one full directory-replica selection on ``host``."""
    logical = system.host(host).logical
    before = system.network.stats.rpcs_sent
    logical.select_dir_replica(logical.root_volume, logical.root().fh)
    return system.network.stats.rpcs_sent - before


def attr_cache_snapshot() -> dict:
    """The BENCH_attr_cache.json payload."""
    system = build_world(telemetry=Telemetry())
    logical = system.host("a").logical
    root_fh = logical.root().fh
    remote_replicas = len(HOSTS) - 1

    # fully cold: no resolutions, no batches (first touch after restart)
    logical.attr_cache.clear()
    fully_cold_rpcs = _selection_rpcs(system, "a")
    # attribute-cold: resolutions cached, every batch invalidated — the
    # state the cache's own invalidation path (notification, TTL) creates
    logical.attr_cache.invalidate_dir(logical.root_volume, root_fh)
    cold_rpcs = _selection_rpcs(system, "a")
    warm_rpcs = _selection_rpcs(system, "a")

    # what the un-batched protocol would have cost for the same selection:
    # per remote replica, one aux fetch for the directory plus one per child
    unbatched_rpcs = remote_replicas * (1 + NUM_FILES)

    return {
        "workload": f"{len(HOSTS)} replicas, {NUM_FILES} converged files, "
        "one directory-replica selection on host a",
        "cold": {
            "rpcs": cold_rpcs,
            "rpcs_per_remote_replica": cold_rpcs / remote_replicas,
            "bound": "<= 1 batched RPC per remote replica",
        },
        "warm": {"rpcs": warm_rpcs, "bound": "0 RPCs"},
        "fully_cold_rpcs": fully_cold_rpcs,  # + one handle resolution each
        "unbatched_equivalent_rpcs": unbatched_rpcs,
        "cache": logical.attr_cache.stats.as_dict(),
        "net": {
            name: value
            for name, value in sorted(system.telemetry.metrics.snapshot().items())
            if name.startswith("net.")
        },
    }


class TestShape:
    def test_cold_selection_is_one_batched_rpc_per_remote_replica(self):
        system = build_world()
        logical = system.host("a").logical
        _selection_rpcs(system, "a")  # resolve replicas once
        logical.attr_cache.invalidate_dir(logical.root_volume, logical.root().fh)
        assert _selection_rpcs(system, "a") <= len(HOSTS) - 1

    def test_warm_selection_is_free(self):
        system = build_world()
        _selection_rpcs(system, "a")  # warm it
        assert _selection_rpcs(system, "a") == 0

    def test_remote_update_invalidates_then_one_refetch(self):
        """b's update lands on one replica; the notification makes an
        observer host refetch exactly that replica's batch — the others
        stay warm."""
        system = build_world()
        _selection_rpcs(system, "c")  # warm the observer
        system.host("b").fs().write_file("/f0", b"new version")  # notifies c
        rpcs = _selection_rpcs(system, "c")
        assert 1 <= rpcs <= len(HOSTS) - 1


def test_bench_warm_selection(benchmark):
    system = build_world()
    logical = system.host("a").logical
    fh = logical.root().fh
    logical.select_dir_replica(logical.root_volume, fh)  # warm
    benchmark(lambda: logical.select_dir_replica(logical.root_volume, fh))


def test_bench_cold_selection(benchmark):
    system = build_world()
    logical = system.host("a").logical
    fh = logical.root().fh

    def run():
        logical.attr_cache.clear()
        logical.select_dir_replica(logical.root_volume, fh)

    benchmark(run)
