"""E8 (Section 3.3): reconciliation — convergence, repair, conflict rates.

Reproduces the behavioural claims: conflicting directory updates are
detected and automatically repaired; conflicting file updates are detected
and reported (never merged); divergent replicas converge.  The benchmark
half measures reconciliation cost as a function of divergence size.
"""


import pytest

from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def diverge(system, creates_per_side: int, shared_conflicts: int, seed: int = 5):
    """Partition a two-host system and make both sides busy."""
    fs_a = system.host("a").fs()
    fs_b = system.host("b").fs()
    for i in range(shared_conflicts):
        fs_a.write_file(f"/shared{i}", b"base")
    system.reconcile_everything()
    system.partition([{"a"}, {"b"}])
    for i in range(creates_per_side):
        fs_a.write_file(f"/a-{i}", f"A{i}".encode())
        fs_b.write_file(f"/b-{i}", f"B{i}".encode())
    for i in range(shared_conflicts):
        fs_a.write_file(f"/shared{i}", f"a-version-{i}".encode())
        fs_b.write_file(f"/shared{i}", f"b-version-{i}".encode())
    system.heal()


class TestShape:
    def test_divergent_directories_converge(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        diverge(system, creates_per_side=10, shared_conflicts=0)
        system.reconcile_everything()
        tree_a = sorted(system.host("a").fs().walk_tree())
        tree_b = sorted(system.host("b").fs().walk_tree())
        assert tree_a == tree_b
        assert len(tree_a) == 20

    def test_file_conflicts_counted_exactly(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        diverge(system, creates_per_side=0, shared_conflicts=7)
        system.reconcile_everything()
        reports = {r.name for r in system.host("a").conflict_log.unresolved()}
        assert reports == {f"shared{i}" for i in range(7)}

    def test_uncontested_updates_never_reported(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        diverge(system, creates_per_side=15, shared_conflicts=0)
        system.reconcile_everything()
        assert system.total_conflicts() == 0

    def test_conflict_rate_scales_with_contention(self, capsys):
        rows = []
        for conflicts in [0, 2, 5, 10]:
            system = FicusSystem(["a", "b"], daemon_config=QUIET)
            diverge(system, creates_per_side=5, shared_conflicts=conflicts)
            system.reconcile_everything()
            found = len(system.host("a").conflict_log.unresolved())
            rows.append((conflicts, found))
        with capsys.disabled():
            print("\n[E8] contended files -> reported conflicts (uncontested creates: 5/side):")
            for contended, found in rows:
                print(f"  {contended:>3} contended -> {found:>3} reported")
        assert [found for _, found in rows] == [0, 2, 5, 10]

    def test_three_replica_ring_converges(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}, {"c"}])
        for name in ["a", "b", "c"]:
            system.host(name).fs().write_file(f"/from-{name}", name.encode())
        system.heal()
        system.reconcile_everything()
        trees = [sorted(system.host(n).fs().walk_tree()) for n in ["a", "b", "c"]]
        assert trees[0] == trees[1] == trees[2]

    def test_recon_cost_scales_with_divergence(self, capsys):
        """Ops applied during reconciliation track the divergence size."""
        rows = []
        for n in [5, 20, 50]:
            system = FicusSystem(["a", "b"], daemon_config=QUIET)
            diverge(system, creates_per_side=n, shared_conflicts=0)
            host = system.host("a")
            result = host.recon_daemon.tick()[0]
            rows.append((n, result.inserts_applied, result.files_pulled))
        with capsys.disabled():
            print("\n[E8] one recon pass after n creates/side:")
            for n, inserts, pulls in rows:
                print(f"  n={n:>3}: inserts={inserts:>3} pulls={pulls:>3}")
        assert all(inserts == n for n, inserts, _ in rows)


@pytest.mark.parametrize("divergence", [5, 25, 100])
def test_bench_reconciliation_pass(benchmark, divergence):
    def setup():
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        diverge(system, creates_per_side=divergence, shared_conflicts=0)
        return (system,), {}

    def run(system):
        system.host("a").recon_daemon.tick()
        system.host("b").recon_daemon.tick()

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)


def test_bench_no_op_recon(benchmark):
    """Steady-state cost: reconciling already-identical replicas."""
    system = FicusSystem(["a", "b"], daemon_config=QUIET)
    for i in range(20):
        system.host("a").fs().write_file(f"/f{i}", b"x")
    system.reconcile_everything()
    benchmark(lambda: system.host("a").recon_daemon.tick())
