"""E12 (Sections 3.1, 4.2): uncoordinated identifier issuance.

"Each volume replica assigns file identifiers to new files independently.
To ensure that file-ids are uniquely issued, a file-id is prefixed with
the issuing volume replica's replica-id."  Plus the stated limits: 2^32
replicas of a file and 2^32 logical layers.

Shape tests: ids minted concurrently at partitioned replicas never
collide (zero messages exchanged); the bench measures mint throughput,
including the persistence write each mint performs.
"""

import pytest

from repro.sim import DaemonConfig, FicusSystem
from repro.util import MAX_ID, FileIdAllocator, IdAllocator

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestShape:
    def test_partitioned_replicas_mint_disjoint_file_ids(self):
        """Create files at every host of a fully fragmented system; after
        healing, every logical file id is distinct."""
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}, {"c"}])
        for name in ["a", "b", "c"]:
            fs = system.host(name).fs()
            for i in range(10):
                fs.write_file(f"/{name}{i}", b"x")
        system.heal()
        system.reconcile_everything()
        store = system.host("a").physical.store_for(system.root_locations[0].volrep)
        entries = [e for e in store.read_entries(store.root_handle()) if e.live]
        assert len(entries) == 30
        assert len({e.fh for e in entries}) == 30
        assert len({e.eid for e in entries}) == 30

    def test_ids_without_communication(self):
        """Minting happens with zero datagrams/RPCs between replicas."""
        mints = [FileIdAllocator(replica_id=r) for r in range(1, 6)]
        ids = {mint.new_file_id() for mint in mints for _ in range(1000)}
        assert len(ids) == 5000

    def test_allocator_spaces_disjoint(self):
        allocs = [IdAllocator(allocator_id=a) for a in range(1, 11)]
        volumes = {a.new_volume_id() for a in allocs for _ in range(100)}
        assert len(volumes) == 1000

    def test_limits_are_two_to_the_thirty_two(self):
        assert MAX_ID == 2**32
        FileIdAllocator(replica_id=MAX_ID - 1)  # the largest legal replica
        with pytest.raises(Exception):
            FileIdAllocator(replica_id=MAX_ID)

    def test_persisted_mint_state_survives_restart(self):
        """A host restart must not re-issue ids (they are persisted in the
        volume replica's .meta file)."""
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        fs.write_file("/before", b"x")
        store = host.physical.store_for(system.root_locations[0].volrep)
        issued_before = {e.fh for e in store.read_entries(store.root_handle())}
        # simulate restart: re-attach to the same storage
        from repro.physical import FicusPhysicalLayer
        from repro.vnode import UfsLayer

        remounted = UfsLayer(host.ufs.remount())
        phys2 = FicusPhysicalLayer(remounted, "solo")
        store2 = phys2.attach_volume_replica(system.root_locations[0].volrep)
        fresh = store2.new_file_id()
        assert all(fresh != fh.file_id for fh in issued_before)


def test_bench_file_id_mint_in_memory(benchmark):
    mint = FileIdAllocator(replica_id=1)
    benchmark(mint.new_file_id)


def test_bench_file_id_mint_persistent(benchmark):
    """A real mint includes the .meta read-modify-write."""
    system = FicusSystem(["solo"], daemon_config=QUIET)
    store = system.host("solo").physical.store_for(system.root_locations[0].volrep)
    benchmark(store.new_file_id)


def test_bench_create_end_to_end(benchmark):
    """Full create: mint + entry insert + storage + notification path."""
    system = FicusSystem(["solo"], daemon_config=QUIET)
    root = system.host("solo").root()
    counter = iter(range(10**9))
    benchmark(lambda: root.create(f"f{next(counter)}"))
