"""E9 (Section 4): volume autografting and pruning.

"Ficus volume replicas are dynamically located and grafted (mounted) as
needed, without global searching or broadcasting...  A graft is
implicitly maintained as long as a file within the grafted volume replica
is being used.  A graft that is no longer needed is quietly pruned."

The shape tests show grafting is lazy (only volumes actually touched get
grafted), demand-driven after pruning, and requires no global tables —
locating a volume costs reading one graft point, not a broadcast.
"""


from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)
NUM_VOLUMES = 8


def build_forest(num_volumes: int = NUM_VOLUMES):
    """A root volume with ``num_volumes`` grafted project volumes."""
    system = FicusSystem(["hub", "spoke1", "spoke2"], daemon_config=QUIET)
    hub = system.host("hub")
    for i in range(num_volumes):
        volume, locations = system.create_volume(["spoke1", "spoke2"])
        hub.logical.create_graft_point(hub.root(), f"vol{i}", volume, locations)
        hub.root().lookup(f"vol{i}").create("data").write(0, f"volume {i}".encode())
        hub.logical.grafter.ungraft(volume)
    return system, hub


class TestShape:
    def test_grafting_is_lazy(self):
        """Touching 2 of 8 volumes grafts exactly 2."""
        system, hub = build_forest()
        start = hub.logical.grafter.active_grafts
        assert start == 0
        hub.fs().read_file("/vol0/data")
        hub.fs().read_file("/vol5/data")
        assert hub.logical.grafter.active_grafts == 2

    def test_no_global_search_on_graft(self):
        """Locating a volume reads its graft point — RPC traffic must not
        scale with the number of volumes in the system (no broadcast)."""
        costs = {}
        for volumes in [2, NUM_VOLUMES]:
            system, hub = build_forest(volumes)
            before = system.network.stats.rpcs_sent
            hub.fs().read_file("/vol0/data")
            costs[volumes] = system.network.stats.rpcs_sent - before
        assert costs[NUM_VOLUMES] <= costs[2] + 1  # independent of volume count

    def test_pruned_grafts_regraft_on_demand(self):
        system, hub = build_forest()
        fs = hub.fs()
        fs.read_file("/vol1/data")
        system.clock.advance(10_000.0)
        assert hub.logical.grafter.prune(idle_timeout=1800.0) >= 1
        assert fs.read_file("/vol1/data") == b"volume 1"

    def test_graft_survives_replica_failure(self):
        system, hub = build_forest()
        fs = hub.fs()
        fs.read_file("/vol2/data")
        bound = None
        for vol, state in list(hub.logical.grafter._grafts.items()):
            if state.uses:
                bound = state
        system.network.set_host_up(bound.bound.host, False)
        # the data was written at the first-bound replica and has not
        # propagated yet; regrafting still gives a working directory
        hub.fs().listdir("/vol2")

    def test_report(self, capsys):
        system, hub = build_forest()
        fs = hub.fs()
        for i in range(NUM_VOLUMES):
            fs.read_file(f"/vol{i}/data")
        with capsys.disabled():
            print(
                f"\n[E9] grafts performed={hub.logical.grafter.grafts_performed} "
                f"active={hub.logical.grafter.active_grafts} "
                f"pruned={hub.logical.grafter.grafts_pruned} for {NUM_VOLUMES} volumes"
            )


def test_bench_first_access_grafts(benchmark):
    system, hub = build_forest(2)
    fs = hub.fs()

    def run():
        for vol in list(hub.logical.grafter._grafts):
            hub.logical.grafter.ungraft(vol)
        return fs.read_file("/vol0/data")

    benchmark(run)


def test_bench_warm_access_through_graft(benchmark):
    system, hub = build_forest(2)
    fs = hub.fs()
    fs.read_file("/vol0/data")  # graft once
    benchmark(fs.read_file, "/vol0/data")
