"""Dedicated tests for the UFS caches (buffer cache + DNLC)."""

import pytest

from repro.errors import InvalidArgument
from repro.storage import BlockDevice
from repro.ufs import BufferCache, NameCache


@pytest.fixture
def device():
    return BlockDevice(64, block_size=512)


class TestBufferCache:
    def test_hit_avoids_device(self, device):
        cache = BufferCache(device, capacity=4)
        cache.read(1)
        before = device.counters.reads
        cache.read(1)
        assert device.counters.reads == before
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self, device):
        cache = BufferCache(device, capacity=2)
        cache.read(1)
        cache.read(2)
        cache.read(1)  # 1 becomes most recent
        cache.read(3)  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_write_through_and_cached(self, device):
        cache = BufferCache(device, capacity=4)
        cache.write(5, b"w" * 512)
        assert device.raw_block(5) == b"w" * 512  # on the device already
        before = device.counters.reads
        assert cache.read(5) == b"w" * 512
        assert device.counters.reads == before  # served from cache

    def test_invalidate_single_block(self, device):
        cache = BufferCache(device, capacity=4)
        cache.read(1)
        cache.invalidate(1)
        before = device.counters.reads
        cache.read(1)
        assert device.counters.reads == before + 1

    def test_zero_capacity_never_caches(self, device):
        cache = BufferCache(device, capacity=0)
        cache.read(1)
        cache.read(1)
        assert cache.stats.hits == 0
        assert len(cache) == 0

    def test_negative_capacity_rejected(self, device):
        with pytest.raises(InvalidArgument):
            BufferCache(device, capacity=-1)

    def test_hit_rate(self, device):
        cache = BufferCache(device, capacity=8)
        cache.read(1)
        cache.read(1)
        cache.read(1)
        cache.read(2)
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestNameCache:
    def test_basic_enter_and_lookup(self):
        dnlc = NameCache(capacity=4)
        dnlc.enter(2, "etc", 7)
        assert dnlc.lookup(2, "etc") == 7
        assert dnlc.lookup(2, "missing") is None
        assert dnlc.stats.hits == 1 and dnlc.stats.misses == 1

    def test_lru_eviction(self):
        dnlc = NameCache(capacity=2)
        dnlc.enter(1, "a", 10)
        dnlc.enter(1, "b", 11)
        dnlc.lookup(1, "a")  # refresh a
        dnlc.enter(1, "c", 12)  # evicts b
        assert dnlc.lookup(1, "a") == 10
        assert dnlc.lookup(1, "b") is None
        assert dnlc.lookup(1, "c") == 12

    def test_purge_dir_drops_only_that_directory(self):
        dnlc = NameCache()
        dnlc.enter(1, "x", 10)
        dnlc.enter(2, "x", 20)
        dnlc.purge_dir(1)
        assert dnlc.lookup(1, "x") is None
        assert dnlc.lookup(2, "x") == 20

    def test_purge_ino_drops_every_alias(self):
        dnlc = NameCache()
        dnlc.enter(1, "orig", 99)
        dnlc.enter(2, "alias", 99)
        dnlc.enter(1, "other", 7)
        dnlc.purge_ino(99)
        assert dnlc.lookup(1, "orig") is None
        assert dnlc.lookup(2, "alias") is None
        assert dnlc.lookup(1, "other") == 7

    def test_remove_single_entry(self):
        dnlc = NameCache()
        dnlc.enter(1, "a", 10)
        dnlc.remove(1, "a")
        assert dnlc.lookup(1, "a") is None

    def test_zero_capacity(self):
        dnlc = NameCache(capacity=0)
        dnlc.enter(1, "a", 10)
        assert dnlc.lookup(1, "a") is None
