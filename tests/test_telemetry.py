"""Telemetry subsystem: tracing, metrics, events, and cross-host propagation.

The headline assertion mirrors the paper's layering claim (Section 1,
"performance monitoring" as a stackable service): one cross-host update —
open, write, notify, pull — must yield a *single* trace tree whose spans
live in the logical, NFS, and physical layers on at least two hosts.
"""

import json

import pytest

from repro.errors import InvalidArgument
from repro.sim import DaemonConfig, FicusSystem
from repro.telemetry import (
    NULL_SPAN,
    NULL_TELEMETRY,
    EventLog,
    Histogram,
    MetricsRegistry,
    Telemetry,
    TraceContext,
    Tracer,
)
from repro.telemetry.export import chrome_trace_json, spans_to_jsonl, summary


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestTracer:
    def test_nesting_via_active_stack(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", layer="logical", host="a") as outer:
            with tracer.span("inner", layer="physical", host="a") as inner:
                assert inner.span.parent_id == outer.span.span_id
                assert inner.span.trace_id == outer.span.trace_id
        outer_span, inner_span = tracer.roots(outer.span.trace_id)[0], inner.span
        assert tracer.children_of(outer_span) == [inner_span]

    def test_siblings_share_a_parent_not_each_other(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.span.parent_id == root.span.span_id
        assert second.span.parent_id == root.span.span_id
        assert len(tracer.children_of(root.span)) == 2

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert len(tracer.trace_ids()) == 2

    def test_explicit_parent_beats_the_stack(self):
        """A deserialized wire context must win over local nesting — that
        is what joins an RPC server span to the *caller's* trace."""
        tracer = Tracer(clock=FakeClock())
        with tracer.span("remote-origin") as origin:
            wire_ctx = origin.context
        with tracer.span("unrelated-local"):
            with tracer.span("server-side", parent=wire_ctx) as joined:
                assert joined.span.trace_id == wire_ctx.trace_id
                assert joined.span.parent_id == wire_ctx.span_id

    def test_exception_marks_error_and_unwinds(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        failing = next(s for s in tracer.finished if s.name == "failing")
        assert failing.status == "error"
        assert failing.tags["error"] == "ValueError"
        assert tracer.active_depth == 0

    def test_retention_is_bounded(self):
        tracer = Tracer(clock=FakeClock(), max_spans=10)
        for i in range(25):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 10
        assert tracer.dropped == 15
        assert tracer.finished[0].name == "s15"  # oldest evicted first

    def test_timestamps_come_from_the_bound_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("timed") as sp:
            pass
        assert sp.span.start == 1.0
        assert sp.span.end == 2.0
        assert sp.span.duration == 1.0


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id=0xDEAD, span_id=0xBEEF)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_wire_form_is_strings_only(self):
        wire = TraceContext(1, 2).to_wire()
        assert all(isinstance(v, str) for v in wire.values())

    @pytest.mark.parametrize(
        "payload",
        [None, "junk", 42, {}, {"trace_id": "xyz-not-hex"}, {"trace_id": "1"}, {"span_id": "2"}],
    )
    def test_malformed_wire_never_raises(self, payload):
        assert TraceContext.from_wire(payload) is None


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.gauge("g").add(-0.5)
        assert registry.get("c").value == 5
        assert registry.get("g").value == 2.0

    def test_histogram_bucketing(self):
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in [0.0005, 0.001, 0.002, 0.05, 0.09, 99.0]:
            h.observe(value)
        # bucket_counts[i] counts observations <= buckets[i]; last = overflow
        assert h.bucket_counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.quantile(0.5) == 0.01
        assert h.quantile(1.0) == 0.1  # overflow clamps to the top bound

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(InvalidArgument):
            Histogram("bad", buckets=(0.1, 0.01))

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(InvalidArgument):
            registry.gauge("x")

    def test_snapshot_is_serializable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(0.5)
        assert json.loads(json.dumps(registry.snapshot()))["a"]["value"] == 1

    def test_disabled_registry_registers_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(100)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        assert len(registry) == 0
        assert registry.snapshot() == {}


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog(clock=FakeClock())
        log.emit("notification.sent", host="a", targets=2)
        log.emit("propagation.pull", host="b", outcome="pulled")
        assert len(log) == 2
        assert log.records("propagation.pull")[0].fields["outcome"] == "pulled"

    def test_bounded_with_exact_counts(self):
        log = EventLog(capacity=5, clock=FakeClock())
        for i in range(12):
            log.emit("tick", host="a", i=i)
        assert len(log) == 5
        assert log.evicted == 7
        assert log.counts["tick"] == 12  # eviction never loses the total
        assert [e.fields["i"] for e in log.records()] == [7, 8, 9, 10, 11]

    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False, clock=FakeClock())
        log.emit("anything", host="a")
        assert len(log) == 0
        assert log.counts == {}


QUICK = DaemonConfig(propagation_period=5.0, recon_period=None, graft_prune_period=None)


def _cross_host_workload() -> FicusSystem:
    system = FicusSystem(["west", "east"], telemetry=Telemetry(), daemon_config=QUICK)
    system.host("west").fs().write_file("/f.txt", b"cross-host payload")
    system.run_for(60.0)  # let the notification land and east's daemon pull
    return system


class TestCrossHostTrace:
    """The acceptance criterion: one update -> one tree over >=2 hosts."""

    def test_single_trace_tree_spans_layers_and_hosts(self):
        system = _cross_host_workload()
        tracer = system.telemetry.tracer
        root = next(s for s in tracer.finished if s.name == "fs.write_file")
        spans = tracer.spans(root.trace_id)
        names = {s.name for s in spans}
        layers = {s.layer for s in spans}
        hosts = {s.host for s in spans}
        assert "propagation.pull" in names  # the async continuation joined
        assert {"fs", "logical", "physical", "nfs-client", "nfs-server", "daemon"} <= layers
        assert {"west", "east"} <= hosts
        # east's pull fetched from west over NFS *within the same trace*
        assert any(s.layer == "nfs-client" and s.host == "east" for s in spans)
        assert any(s.layer == "nfs-server" and s.host == "west" for s in spans)

    def test_the_trace_is_a_well_formed_tree(self):
        system = _cross_host_workload()
        tracer = system.telemetry.tracer
        root = next(s for s in tracer.finished if s.name == "fs.write_file")
        spans = tracer.spans(root.trace_id)
        ids = {s.span_id for s in spans}
        orphans = [s for s in spans if s.parent_id is not None and s.parent_id not in ids]
        assert not orphans  # every parent reference resolves inside the trace
        assert [s for s in spans if s.parent_id is None] == [root]

    def test_pull_span_parented_across_the_datagram(self):
        system = _cross_host_workload()
        tracer = system.telemetry.tracer
        pull = next(s for s in tracer.finished if s.name == "propagation.pull")
        parent = next(s for s in tracer.finished if s.span_id == pull.parent_id)
        assert parent.host == "west"  # joined to the *originating* host's span
        assert pull.host == "east"
        assert pull.tags["outcome"] == "pulled"

    def test_events_and_metrics_recorded_alongside(self):
        system = _cross_host_workload()
        events = system.telemetry.events
        assert events.counts.get("notification.sent", 0) >= 1
        assert events.counts.get("notification.received", 0) >= 1
        assert events.counts.get("propagation.pull", 0) >= 1
        metrics = system.telemetry.metrics
        assert metrics.get("logical.notifications_sent").value >= 1
        assert metrics.get("propagation.pulled").value >= 1

    def test_chrome_trace_export_is_valid_json_with_both_hosts(self):
        system = _cross_host_workload()
        doc = json.loads(chrome_trace_json(system.telemetry.tracer.finished))
        process_names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert {"west", "east"} <= process_names
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete and all(e["dur"] >= 0 for e in complete)

    def test_jsonl_and_summary_exports(self):
        system = _cross_host_workload()
        lines = spans_to_jsonl(system.telemetry.tracer.finished).splitlines()
        assert all("name" in json.loads(line) for line in lines)
        digest = summary(system.telemetry)
        assert "spans:" in digest and "events:" in digest


class TestDisabledOverhead:
    """A system built without a hub must leave no telemetry footprint."""

    def test_default_system_shares_the_inert_null_hub(self):
        system = FicusSystem(["solo"], daemon_config=QUICK)
        assert system.telemetry is NULL_TELEMETRY
        fs = system.host("solo").fs()
        fs.write_file("/f", b"x")
        fs.read_file("/f")
        system.run_for(30.0)
        assert len(NULL_TELEMETRY.tracer.finished) == 0
        assert len(NULL_TELEMETRY.metrics) == 0
        assert len(NULL_TELEMETRY.events) == 0
        assert NULL_TELEMETRY.events.counts == {}

    def test_disabled_tracer_returns_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        sp = tracer.span("anything", layer="logical", host="a")
        assert sp is NULL_SPAN
        assert sp.context is None
        with sp as inner:
            inner.set_tag("k", "v")  # must be a silent no-op
        assert tracer.current_context() is None

    def test_null_hub_clock_binding_is_inert(self):
        """bind_clock on the disabled hub must not capture per-system
        clocks — the singleton outlives every FicusSystem."""
        before = NULL_TELEMETRY.tracer._clock
        FicusSystem(["a"])
        assert NULL_TELEMETRY.tracer._clock is before


class TestTelemetryHub:
    def test_reset_keeps_instrument_names(self):
        hub = Telemetry()
        hub.metrics.counter("kept").inc(3)
        hub.metrics.histogram("h").observe(0.5)
        with hub.tracer.span("s"):
            pass
        hub.events.emit("e", host="a")
        hub.reset()
        assert hub.metrics.get("kept").value == 0
        assert hub.metrics.get("h").count == 0
        assert "kept" in hub.metrics
        assert len(hub.tracer.finished) == 0
        assert len(hub.events) == 0

    def test_bind_clock_rebinds_tracer_and_events(self):
        hub = Telemetry()
        clock = FakeClock()
        hub.bind_clock(clock)
        with hub.tracer.span("s"):
            pass
        hub.events.emit("e", host="a")
        assert hub.tracer.finished[0].start == 1.0
        assert hub.events.records()[0].ts == 3.0
