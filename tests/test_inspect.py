"""Tests for the inspection/dump tools."""


from repro.inspect import cluster_summary, diff_replicas, dump_replica
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def store_of(system, host_name):
    host = system.host(host_name)
    volrep = next(l.volrep for l in system.root_locations if l.host == host_name)
    return host.physical.store_for(volrep)


class TestDumpReplica:
    def test_dump_shows_tree_and_versions(self):
        system = FicusSystem(["a"], daemon_config=QUIET)
        fs = system.host("a").fs()
        fs.makedirs("/docs")
        fs.write_file("/docs/x.txt", b"12345")
        text = dump_replica(store_of(system, "a"))
        assert "docs/" in text
        assert "x.txt (5B" in text
        assert "vv=" in text

    def test_dump_shows_tombstones_with_acks(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs = system.host("a").fs()
        fs.write_file("/gone", b"x")
        fs.unlink("/gone")
        text = dump_replica(store_of(system, "a"))
        assert "✝ gone" in text and "acks=[1]" in text
        hidden = dump_replica(store_of(system, "a"), show_tombstones=False)
        assert "gone" not in hidden

    def test_dump_shows_entry_only_files(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        b = system.host("b")
        b.recon_daemon.tick()  # entries arrive; maybe contents too
        text = dump_replica(store_of(system, "b"))
        assert "f" in text

    def test_dump_shows_graft_points_and_locations(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        volume, locations = system.create_volume(["b"])
        a = system.host("a")
        a.logical.create_graft_point(a.root(), "proj", volume, locations)
        text = dump_replica(store_of(system, "a"))
        assert "⌘ proj/" in text


class TestDiffReplicas:
    def test_converged_replicas_diff_clean(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        report = diff_replicas(store_of(system, "a"), store_of(system, "b"))
        assert report.converged

    def test_divergence_reported(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/only-a", b"x")
        system.host("b").fs().write_file("/only-b", b"y")
        report = diff_replicas(store_of(system, "a"), store_of(system, "b"))
        assert report.only_in_a == ["/only-a"]
        assert report.only_in_b == ["/only-b"]
        assert not report.converged

    def test_version_skew_reported(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"v1")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/f", b"v2")
        report = diff_replicas(store_of(system, "a"), store_of(system, "b"))
        assert any("/f" in m for m in report.version_mismatches)


class TestClusterSummary:
    def test_summary_covers_all_hosts(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.host("b").crash()
        text = cluster_summary(system)
        assert "3 hosts" in text
        assert "b [DOWN]" in text
        assert "a [up]" in text
        assert "rpcs" in text
