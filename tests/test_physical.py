"""Tests for the Ficus physical layer."""

import pytest

from repro.errors import (
    CrashInjected,
    FileNotFound,
    InvalidArgument,
    NameTooLong,
    NotSupported,
)
from repro.net import Network
from repro.nfs import NfsClientLayer, NfsServer
from repro.physical import (
    EntryId,
    EntryType,
    FicusPhysicalLayer,
    ReplicaNotStored,
    count_name_collisions,
    effective_entries,
    max_user_name_length,
    op_abort_shadow,
    op_commit,
    op_insert,
    op_mergevv,
    op_remove,
    op_setvv,
    op_shadow,
)
from repro.physical.wire import DirectoryEntry, decode_op, encode_op, op_dir
from repro.storage import BlockDevice
from repro.ufs import MAX_NAME_LEN, FileType, Ufs, fsck
from repro.util import FicusFileHandle, VolumeId, VolumeReplicaId
from repro.vnode import UfsLayer
from repro.vv import VersionVector

VOL = VolumeId(1, 1)
VR = VolumeReplicaId(VOL, 1)


@pytest.fixture
def world():
    device = BlockDevice(8192)
    ufs = UfsLayer(Ufs.mkfs(device, num_inodes=512))
    phys = FicusPhysicalLayer(ufs, "hostA")
    store = phys.create_volume_replica(VR)
    root = phys.root().lookup(VR.to_hex())
    return device, ufs, phys, store, root


def insert_file(store, root, name, contents=b""):
    fh = FicusFileHandle(VOL, store.new_file_id())
    vnode = root.create(op_insert(store.new_entry_id(), name, fh, EntryType.FILE))
    if contents:
        vnode.write(0, contents)
    return fh, vnode


def insert_dir(store, parent, name):
    fh = FicusFileHandle(VOL, store.new_file_id())
    return fh, parent.create(op_insert(store.new_entry_id(), name, fh, EntryType.DIRECTORY))


class TestBasicOperations:
    def test_create_and_read(self, world):
        _, _, _, store, root = world
        insert_file(store, root, "f", b"data")
        assert root.lookup("f").read_all() == b"data"

    def test_write_bumps_version_vector(self, world):
        _, _, _, store, root = world
        fh, vnode = insert_file(store, root, "f")
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector()
        vnode.write(0, b"x")
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector({1: 1})
        vnode.write(0, b"y")
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector({1: 2})

    def test_truncate_bumps_version_vector(self, world):
        _, _, _, store, root = world
        fh, vnode = insert_file(store, root, "f", b"0123456789")
        before = store.read_file_aux(store.root_handle(), fh).vv
        vnode.truncate(3)
        assert store.read_file_aux(store.root_handle(), fh).vv.strictly_dominates(before)

    def test_nested_directories(self, world):
        _, _, _, store, root = world
        dfh, d = insert_dir(store, root, "a")
        fh = FicusFileHandle(VOL, store.new_file_id())
        d.create(op_insert(store.new_entry_id(), "f", fh, EntryType.FILE)).write(0, b"deep")
        assert root.lookup("a").lookup("f").read_all() == b"deep"

    def test_symlink(self, world):
        _, _, _, store, root = world
        fh = FicusFileHandle(VOL, store.new_file_id())
        lnk = root.create(op_insert(store.new_entry_id(), "l", fh, EntryType.SYMLINK))
        lnk.write(0, b"/target/path")
        assert root.lookup("l").readlink() == "/target/path"
        assert root.lookup("l").getattr().ftype == FileType.SYMLINK

    def test_remove_tombstones_entry(self, world):
        _, _, _, store, root = world
        fh, _ = insert_file(store, root, "f", b"x")
        eid = store.read_entries(store.root_handle())[0].eid
        root.remove(op_remove(eid))
        with pytest.raises(FileNotFound):
            root.lookup("f")
        tombs = [e for e in store.read_entries(store.root_handle()) if not e.live]
        assert len(tombs) == 1

    def test_remove_frees_file_storage(self, world):
        _, ufs, _, store, root = world
        fh, _ = insert_file(store, root, "f", b"big" * 1000)
        eid = store.read_entries(store.root_handle())[0].eid
        free_before = ufs.fs.free_block_count()
        root.remove(op_remove(eid))
        assert ufs.fs.free_block_count() > free_before
        assert fsck(ufs.fs).clean

    def test_insert_idempotent_by_entry_id(self, world):
        _, _, _, store, root = world
        fh = FicusFileHandle(VOL, store.new_file_id())
        eid = store.new_entry_id()
        root.create(op_insert(eid, "f", fh, EntryType.FILE))
        root.create(op_insert(eid, "f", fh, EntryType.FILE))  # RPC retry
        assert len(store.read_entries(store.root_handle())) == 1

    def test_remove_idempotent(self, world):
        _, _, _, store, root = world
        insert_file(store, root, "f")
        eid = store.read_entries(store.root_handle())[0].eid
        root.remove(op_remove(eid))
        root.remove(op_remove(eid))  # retry: no error, still dead
        assert not store.read_entries(store.root_handle())[0].live

    def test_plain_create_rejected(self, world):
        _, _, _, _, root = world
        with pytest.raises(InvalidArgument):
            root.create("plain-name")

    def test_rename_not_supported(self, world):
        _, _, _, store, root = world
        insert_file(store, root, "f")
        with pytest.raises(NotSupported):
            root.rename("f", root, "g")

    def test_dir_write_rejected(self, world):
        _, _, _, _, root = world
        with pytest.raises(InvalidArgument):
            root.write(0, b"raw bytes")

    def test_readdir_hides_tombstones_and_metadata(self, world):
        _, _, _, store, root = world
        insert_file(store, root, "keep")
        insert_file(store, root, "kill")
        eid = next(e.eid for e in store.read_entries(store.root_handle()) if e.name == "kill")
        root.remove(op_remove(eid))
        names = [e.name for e in root.readdir()]
        assert names == ["keep"]


class TestMultipleNames:
    def test_hard_link_within_directory(self, world):
        _, _, _, store, root = world
        fh, vnode = insert_file(store, root, "orig", b"shared")
        root.create(
            op_insert(store.new_entry_id(), "alias", fh, EntryType.FILE, link_from=store.root_handle())
        )
        assert root.lookup("alias").read_all() == b"shared"
        vnode.write(0, b"SHARED")
        assert root.lookup("alias").read_all() == b"SHARED"

    def test_hard_link_across_directories(self, world):
        _, _, _, store, root = world
        dfh, d = insert_dir(store, root, "d")
        fh, vnode = insert_file(store, root, "orig", b"x")
        d.create(op_insert(store.new_entry_id(), "other", fh, EntryType.FILE, link_from=store.root_handle()))
        vnode.write(0, b"y")
        assert root.lookup("d").lookup("other").read_all() == b"y"
        # version vector is shared through the link (aux is hard-linked)
        assert store.read_file_aux(dfh, fh).vv == store.read_file_aux(store.root_handle(), fh).vv

    def test_directory_with_two_names(self, world):
        """Ficus directories form a DAG: 'unlike Unix, Ficus directories
        may have more than one name' (paper Section 2.5)."""
        _, _, _, store, root = world
        dfh, d = insert_dir(store, root, "name1")
        root.create(op_insert(store.new_entry_id(), "name2", dfh, EntryType.DIRECTORY))
        fh = FicusFileHandle(VOL, store.new_file_id())
        d.create(op_insert(store.new_entry_id(), "f", fh, EntryType.FILE)).write(0, b"dag")
        assert root.lookup("name1").lookup("f").read_all() == b"dag"
        assert root.lookup("name2").lookup("f").read_all() == b"dag"
        assert store.read_dir_aux(dfh).refs == 2

    def test_removing_one_dir_name_keeps_storage(self, world):
        _, _, _, store, root = world
        dfh, d = insert_dir(store, root, "name1")
        root.create(op_insert(store.new_entry_id(), "name2", dfh, EntryType.DIRECTORY))
        eid = next(e.eid for e in store.read_entries(store.root_handle()) if e.name == "name1")
        root.remove(op_remove(eid))
        assert root.lookup("name2").getattr().ftype == FileType.DIRECTORY
        assert store.read_dir_aux(dfh).refs == 1

    def test_removing_last_dir_name_reclaims_empty_dir(self, world):
        _, _, _, store, root = world
        dfh, _ = insert_dir(store, root, "d")
        eid = store.read_entries(store.root_handle())[0].eid
        root.remove(op_remove(eid))
        assert not store.has_directory(dfh)


class TestNameCollisionRepair:
    def _entry(self, eid_rep, eid_seq, name, unique, status="live"):
        return DirectoryEntry(
            eid=EntryId(eid_rep, eid_seq),
            name=name,
            fh=FicusFileHandle(VOL, __import__("repro.util", fromlist=["FileId"]).FileId(1, unique)),
            etype=EntryType.FILE,
            status=status,
        )

    def test_no_collision_plain_names(self):
        entries = [self._entry(1, 1, "a", 1), self._entry(1, 2, "b", 2)]
        assert set(effective_entries(entries)) == {"a", "b"}
        assert count_name_collisions(entries) == 0

    def test_collision_gets_deterministic_suffix(self):
        entries = [self._entry(2, 5, "a", 1), self._entry(1, 3, "a", 2)]
        view = effective_entries(entries)
        # lowest eid (1:3) keeps the plain name
        assert view["a"].eid == EntryId(1, 3)
        assert "a#2:5" in view
        assert count_name_collisions(entries) == 1

    def test_repair_is_order_independent(self):
        """Both replicas must compute the same repaired view regardless of
        entry order in the directory file."""
        entries = [self._entry(2, 5, "a", 1), self._entry(1, 3, "a", 2), self._entry(3, 1, "a", 3)]
        forward = effective_entries(entries)
        backward = effective_entries(list(reversed(entries)))
        assert forward.keys() == backward.keys()
        assert {k: v.eid for k, v in forward.items()} == {k: v.eid for k, v in backward.items()}

    def test_tombstones_do_not_collide(self):
        entries = [self._entry(1, 1, "a", 1, status="dead"), self._entry(2, 2, "a", 2)]
        view = effective_entries(entries)
        assert view["a"].eid == EntryId(2, 2)
        assert len(view) == 1


class TestSessionOps:
    def test_session_coalesces_updates(self, world):
        """One open/close session = one version-vector update, however many
        writes happen inside (the information NFS drops, recovered)."""
        _, _, phys, store, root = world
        fh, vnode = insert_file(store, root, "f")
        root.session_open(fh)
        vnode.write(0, b"a")
        vnode.write(1, b"b")
        vnode.write(2, b"c")
        root.session_close(fh)
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector({1: 1})
        assert phys.session_coalesced_updates == 3

    def test_nested_sessions_bump_once(self, world):
        _, _, phys, store, root = world
        fh, vnode = insert_file(store, root, "f")
        root.session_open(fh)
        root.session_open(fh)
        vnode.write(0, b"x")
        root.session_close(fh)
        assert phys.has_open_session(store, fh)
        root.session_close(fh)
        assert not phys.has_open_session(store, fh)
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector({1: 1})

    def test_clean_session_no_bump(self, world):
        _, _, _, store, root = world
        fh, _ = insert_file(store, root, "f")
        root.session_open(fh)
        root.session_close(fh)
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector()

    def test_local_open_close_vnode_calls_also_work(self, world):
        """When no NFS hop intervenes the plain vnode open/close arrive."""
        _, _, _, store, root = world
        fh, vnode = insert_file(store, root, "f")
        vnode.open()
        vnode.write(0, b"xyz")
        vnode.write(3, b"pqr")
        vnode.close()
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector({1: 1})


class TestShadowCommit:
    def test_shadow_then_commit_replaces_atomically(self, world):
        _, _, _, store, root = world
        fh, _ = insert_file(store, root, "f", b"old version")
        shadow = root.lookup(op_shadow(fh))
        shadow.write(0, b"new version")
        vv = VersionVector({2: 9})
        root.lookup(op_commit(fh, vv))
        assert root.lookup("f").read_all() == b"new version"
        assert store.read_file_aux(store.root_handle(), fh).vv == vv

    def test_abort_discards_shadow(self, world):
        _, _, _, store, root = world
        fh, _ = insert_file(store, root, "f", b"original")
        root.lookup(op_shadow(fh)).write(0, b"half-done")
        root.lookup(op_abort_shadow(fh))
        assert root.lookup("f").read_all() == b"original"
        with pytest.raises(FileNotFound):
            store.shadow_vnode(store.root_handle(), fh)

    def test_crash_before_commit_preserves_original(self, world):
        """'If a crash occurs before the shadow substitution, the original
        replica is retained during recovery and the shadow discarded.'"""
        device, ufs, phys, store, root = world
        fh, _ = insert_file(store, root, "f", b"the original survives")
        shadow = root.lookup(op_shadow(fh))
        shadow.write(0, b"partial new conten")
        device.plan_crash_after_writes(0)
        with pytest.raises(CrashInjected):
            root.lookup(op_commit(fh, VersionVector({1: 9})))
        device.recover()
        # recovery: scavenge orphan shadows, original intact
        dropped = store.scavenge_shadows(store.root_handle())
        assert dropped == 1
        assert root.lookup("f").read_all() == b"the original survives"
        assert fsck(ufs.fs).clean

    def test_setvv_overwrites_version(self, world):
        _, _, _, store, root = world
        fh, vnode = insert_file(store, root, "f", b"x")
        vv = VersionVector({1: 5, 2: 5})
        root.lookup(op_setvv(fh, vv))
        assert store.read_file_aux(store.root_handle(), fh).vv == vv

    def test_mergevv_merges_directory_version(self, world):
        _, _, _, store, root = world
        insert_file(store, root, "f")  # bumps dir vv to {1:1}
        root.lookup(op_mergevv(VersionVector({7: 3})))
        assert store.read_dir_aux(store.root_handle()).vv == VersionVector({1: 1, 7: 3})


class TestEncodedOps:
    def test_round_trip_arbitrary_names(self):
        op = encode_op("insert", "1:2", "weird |name= \\here")
        kind, fields = decode_op(op)
        assert kind == "insert"
        assert fields[1] == "weird |name= \\here"

    def test_user_name_budget_about_200(self):
        """Paper footnote 2: 'the reduction in the maximum length of a file
        name component from 255 to about 200'."""
        budget = max_user_name_length()
        assert 150 <= budget <= 210

    def test_oversize_encoded_op_rejected(self):
        with pytest.raises(NameTooLong):
            encode_op("insert", "x" * MAX_NAME_LEN)

    def test_unknown_encoded_lookup_rejected(self, world):
        _, _, _, _, root = world
        with pytest.raises(NotSupported):
            root.lookup(encode_op("frobnicate"))

    def test_insert_of_encoded_looking_name_rejected(self, world):
        _, _, _, store, root = world
        fh = FicusFileHandle(VOL, store.new_file_id())
        with pytest.raises(InvalidArgument):
            root.create(op_insert(store.new_entry_id(), "@@sneaky", fh, EntryType.FILE))


class TestPartialReplicas:
    def test_entry_without_storage_raises_replica_not_stored(self, world):
        """Reconciliation-applied inserts publish the entry before the
        contents arrive; lookup must say 'not stored', not 'no such file'."""
        _, _, _, store, root = world
        fh = FicusFileHandle(VOL, store.new_file_id())
        root.create(
            op_insert(store.new_entry_id(), "ghost", fh, EntryType.FILE, vv=VersionVector({2: 1}))
        )
        with pytest.raises(ReplicaNotStored):
            root.lookup("ghost")
        assert "ghost" in [e.name for e in root.readdir()]


class TestPhysicalOverNfs:
    """The logical layer reaches a remote physical layer through NFS; every
    physical-layer operation must survive the hop (paper Section 2.2)."""

    @pytest.fixture
    def remote_root(self, world):
        _, _, phys, store, _ = world
        net = Network()
        net.add_host("server")
        net.add_host("client")
        NfsServer(net, "server", phys)
        client = NfsClientLayer(net, "client", "server")
        return store, client.root().lookup(VR.to_hex())

    def test_insert_and_read_over_nfs(self, remote_root):
        store, root = remote_root
        fh = FicusFileHandle(VOL, store.new_file_id())
        f = root.create(op_insert(store.new_entry_id(), "remote", fh, EntryType.FILE))
        f.write(0, b"via nfs")
        assert root.lookup("remote").read_all() == b"via nfs"

    def test_session_ops_survive_nfs(self, remote_root):
        """E10: open/close session boundaries travel as first-class vnode
        operations over the NFS hop (no lookup-name smuggling)."""
        store, root = remote_root
        fh = FicusFileHandle(VOL, store.new_file_id())
        f = root.create(op_insert(store.new_entry_id(), "f", fh, EntryType.FILE))
        root.session_open(fh)
        f.write(0, b"a")
        f.write(1, b"b")
        root.session_close(fh)
        assert store.read_file_aux(store.root_handle(), fh).vv == VersionVector({1: 1})

    def test_shadow_commit_over_nfs(self, remote_root):
        store, root = remote_root
        fh = FicusFileHandle(VOL, store.new_file_id())
        root.create(op_insert(store.new_entry_id(), "f", fh, EntryType.FILE)).write(0, b"v1")
        root.lookup(op_shadow(fh)).write(0, b"v2")
        root.lookup(op_commit(fh, VersionVector({1: 2})))
        assert root.lookup("f").read_all() == b"v2"

    def test_aux_readable_over_nfs(self, remote_root):
        store, root = remote_root
        fh = FicusFileHandle(VOL, store.new_file_id())
        root.create(op_insert(store.new_entry_id(), "f", fh, EntryType.FILE)).write(0, b"x")
        batch = root.getattrs_batch([fh])
        assert batch.child(fh).vv == VersionVector({1: 1})
        # the directory's own aux record rides in the same reply
        assert batch.dir_aux.vv == store.read_dir_aux(store.root_handle()).vv

    def test_dir_by_handle_over_nfs(self, remote_root):
        store, root = remote_root
        dfh = FicusFileHandle(VOL, store.new_file_id())
        root.create(op_insert(store.new_entry_id(), "d", dfh, EntryType.DIRECTORY))
        assert root.lookup(op_dir(dfh)).getattr().ftype == FileType.DIRECTORY
