"""Unit tests for the simulated block device."""

import pytest

from repro.errors import CrashInjected, InvalidArgument, IOError_
from repro.storage import BlockDevice, IoCounters


@pytest.fixture
def dev():
    return BlockDevice(num_blocks=64, block_size=512)


class TestBasicIo:
    def test_unwritten_blocks_read_zero(self, dev):
        assert dev.read_block(5) == bytes(512)

    def test_write_then_read(self, dev):
        data = b"x" * 512
        dev.write_block(3, data)
        assert dev.read_block(3) == data

    def test_write_wrong_size_rejected(self, dev):
        with pytest.raises(InvalidArgument):
            dev.write_block(0, b"short")

    def test_out_of_range_rejected(self, dev):
        with pytest.raises(InvalidArgument):
            dev.read_block(64)
        with pytest.raises(InvalidArgument):
            dev.write_block(-1, bytes(512))

    def test_bad_geometry_rejected(self):
        with pytest.raises(InvalidArgument):
            BlockDevice(0)
        with pytest.raises(InvalidArgument):
            BlockDevice(4, block_size=0)


class TestCounters:
    def test_reads_and_writes_counted(self, dev):
        dev.write_block(0, bytes(512))
        dev.read_block(0)
        dev.read_block(1)
        assert dev.counters.reads == 2
        assert dev.counters.writes == 1
        assert dev.counters.total == 3

    def test_delta_since_snapshot(self, dev):
        dev.read_block(0)
        snap = dev.counters.snapshot()
        dev.read_block(1)
        dev.write_block(2, bytes(512))
        delta = dev.counters.delta_since(snap)
        assert (delta.reads, delta.writes) == (1, 1)

    def test_counters_str(self):
        assert str(IoCounters(3, 4)) == "3r/4w"


class TestFootprint:
    def test_zero_write_frees_block(self, dev):
        dev.write_block(0, b"y" * 512)
        assert dev.blocks_in_use == 1
        dev.write_block(0, bytes(512))
        assert dev.blocks_in_use == 0

    def test_raw_block_is_uncounted(self, dev):
        dev.write_block(0, b"z" * 512)
        before = dev.counters.total
        assert dev.raw_block(0) == b"z" * 512
        assert dev.counters.total == before


class TestFailureInjection:
    def test_hard_fail_blocks_io(self, dev):
        dev.fail()
        with pytest.raises(IOError_):
            dev.read_block(0)
        with pytest.raises(IOError_):
            dev.write_block(0, bytes(512))

    def test_recover_restores_io_and_data(self, dev):
        dev.write_block(1, b"a" * 512)
        dev.fail()
        dev.recover()
        assert dev.read_block(1) == b"a" * 512

    def test_crash_after_n_writes(self, dev):
        dev.plan_crash_after_writes(2)
        dev.write_block(0, b"1" * 512)
        dev.write_block(1, b"2" * 512)
        with pytest.raises(CrashInjected):
            dev.write_block(2, b"3" * 512)
        # crash leaves earlier writes durable, the failed write absent
        dev.recover()
        assert dev.read_block(0) == b"1" * 512
        assert dev.read_block(1) == b"2" * 512
        assert dev.read_block(2) == bytes(512)

    def test_crash_plan_zero_crashes_immediately(self, dev):
        dev.plan_crash_after_writes(0)
        with pytest.raises(CrashInjected):
            dev.write_block(0, bytes(512))

    def test_clear_crash_plan(self, dev):
        dev.plan_crash_after_writes(0)
        dev.clear_crash_plan()
        dev.write_block(0, b"k" * 512)  # should not raise

    def test_reads_still_work_before_crash_trips(self, dev):
        dev.plan_crash_after_writes(5)
        dev.read_block(0)  # reads never trip the write-based plan
        assert not dev.failed
