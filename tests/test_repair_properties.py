"""Property tests for the deterministic name-collision repair.

The repair runs independently at every replica with no messages, so its
correctness rests on pure-function properties: permutation invariance,
completeness (every live entry gets exactly one name), and stability
(adding tombstones never changes live names).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.physical import count_name_collisions, effective_entries
from repro.physical.wire import DirectoryEntry, EntryId, EntryType
from repro.util import FicusFileHandle, FileId, VolumeId

VOL = VolumeId(1, 1)


@st.composite
def entry_lists(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    entries = []
    used_eids = set()
    for i in range(n):
        rep = draw(st.integers(min_value=1, max_value=3))
        seq = draw(st.integers(min_value=1, max_value=50))
        if (rep, seq) in used_eids:
            continue
        used_eids.add((rep, seq))
        entries.append(
            DirectoryEntry(
                eid=EntryId(rep, seq),
                name=draw(st.sampled_from(["a", "b", "c", "d"])),
                fh=FicusFileHandle(VolumeId(1, 1), FileId(rep, i + 1)),
                etype=draw(st.sampled_from([EntryType.FILE, EntryType.DIRECTORY])),
                status=draw(st.sampled_from(["live", "dead"])),
            )
        )
    return entries


class TestEffectiveEntriesProperties:
    @given(entry_lists(), st.randoms())
    def test_permutation_invariant(self, entries, rng):
        """Every replica stores entries in its own order; the repaired
        view must not depend on that order."""
        shuffled = list(entries)
        rng.shuffle(shuffled)
        a = {name: e.eid for name, e in effective_entries(entries).items()}
        b = {name: e.eid for name, e in effective_entries(shuffled).items()}
        assert a == b

    @given(entry_lists())
    def test_every_live_entry_named_exactly_once(self, entries):
        view = effective_entries(entries)
        live = [e for e in entries if e.live]
        assert len(view) == len(live)
        assert {e.eid for e in view.values()} == {e.eid for e in live}

    @given(entry_lists())
    def test_plain_names_all_present(self, entries):
        """Each colliding group keeps its plain name for exactly one
        member; the rest are suffixed with their entry id."""
        view = effective_entries(entries)
        live_names = {e.name for e in entries if e.live}
        for name in live_names:
            assert name in view
        for shown_name, entry in view.items():
            assert shown_name == entry.name or shown_name.startswith(entry.name + "#")

    @given(entry_lists())
    def test_tombstones_never_affect_live_names(self, entries):
        without_dead = [e for e in entries if e.live]
        a = {name: e.eid for name, e in effective_entries(entries).items()}
        b = {name: e.eid for name, e in effective_entries(without_dead).items()}
        assert a == b

    @given(entry_lists())
    def test_collision_count_matches_suffixed_names(self, entries):
        view = effective_entries(entries)
        suffixed = [name for name in view if "#" in name and name not in
                    {e.name for e in entries}]
        assert count_name_collisions(entries) == len(suffixed)

    @given(entry_lists())
    def test_lowest_eid_keeps_the_plain_name(self, entries):
        view = effective_entries(entries)
        by_name = {}
        for e in entries:
            if e.live:
                by_name.setdefault(e.name, []).append(e)
        for name, group in by_name.items():
            winner = min(group, key=lambda e: e.eid)
            assert view[name].eid == winner.eid
