"""Stateful property testing of the replication core.

A hypothesis rule machine drives two Ficus hosts through arbitrary
interleavings of file operations, partitions, heals, reconciliation
passes, and propagation ticks — checking after every step that the
structural invariants hold, and at teardown that a full reconciliation
converges both replicas to identical trees.
"""

from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.errors import FicusError
from repro.physical import ficus_fsck
from repro.sim import DaemonConfig, FicusSystem
from repro.ufs import fsck

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

names = st.sampled_from([f"n{i}" for i in range(6)])
host_names = st.sampled_from(["a", "b"])
payloads = st.binary(max_size=256)


class ReconMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = FicusSystem(["a", "b"], daemon_config=QUIET)
        self.partitioned = False

    # -- namespace operations at either host --

    @rule(host=host_names, name=names, data=payloads)
    def write(self, host, name, data):
        try:
            self.system.host(host).fs().write_file("/" + name, data)
        except FicusError:
            pass

    @rule(host=host_names, name=names)
    def unlink(self, host, name):
        try:
            self.system.host(host).fs().unlink("/" + name)
        except FicusError:
            pass

    @rule(host=host_names, name=names)
    def mkdir(self, host, name):
        try:
            self.system.host(host).fs().mkdir("/" + name)
        except FicusError:
            pass

    @rule(host=host_names, src=names, dst=names)
    def rename(self, host, src, dst):
        if src == dst:
            return
        try:
            self.system.host(host).fs().rename("/" + src, "/" + dst)
        except FicusError:
            pass

    @rule(host=host_names, name=names, data=payloads)
    def write_nested(self, host, name, data):
        try:
            fs = self.system.host(host).fs()
            fs.makedirs("/sub")
            fs.write_file("/sub/" + name, data)
        except FicusError:
            pass

    # -- the environment --

    @rule()
    def toggle_partition(self):
        if self.partitioned:
            self.system.heal()
        else:
            self.system.partition([{"a"}, {"b"}])
        self.partitioned = not self.partitioned

    @rule(host=host_names)
    def recon_tick(self, host):
        self.system.host(host).recon_daemon.tick()

    @rule(host=host_names)
    def propagation_tick(self, host):
        self.system.host(host).propagation_daemon.tick()

    @rule(host=host_names)
    def crash_restart(self, host):
        self.system.host(host).crash()
        self.system.host(host).restart(self.system)

    # -- invariants checked after every rule --

    @invariant()
    def stores_structurally_sound(self):
        for name in ["a", "b"]:
            host = self.system.host(name)
            for store in host.physical.stores.values():
                report = ficus_fsck(store)
                assert report.clean, f"{name}: {report.problems}"
            assert fsck(host.ufs).clean

    def teardown(self):
        # final convergence check: heal, reconcile, compare trees
        self.system.heal()
        self.system.reconcile_everything(rounds=4)
        for host in self.system.hosts.values():
            host.propagation_daemon.tick()
        self.system.reconcile_everything(rounds=2)
        tree_a = sorted(self.system.host("a").fs().walk_tree())
        tree_b = sorted(self.system.host("b").fs().walk_tree())
        assert tree_a == tree_b, f"diverged:\n a={tree_a}\n b={tree_b}"
        super().teardown()


TestReconMachine = ReconMachine.TestCase
TestReconMachine.settings = settings(
    max_examples=12,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
