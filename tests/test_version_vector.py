"""Unit and property tests for version vectors.

The property tests pin down the algebra the reconciliation protocol relies
on: compare is a partial order, merge is a least upper bound, and an update
at any replica strictly advances that replica's history.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.vv import Ordering, VersionVector

vectors = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=4),
    max_size=6,
).map(VersionVector)


class TestBasics:
    def test_empty_vector(self):
        vv = VersionVector()
        assert vv[3] == 0
        assert len(vv) == 0
        assert vv.total_updates == 0

    def test_zero_entries_normalized(self):
        assert VersionVector({1: 0, 2: 3}) == VersionVector({2: 3})
        assert hash(VersionVector({1: 0})) == hash(VersionVector())

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidArgument):
            VersionVector({1: -1})

    def test_bump(self):
        vv = VersionVector().bump(1).bump(1).bump(2)
        assert vv[1] == 2 and vv[2] == 1

    def test_bump_negative_rejected(self):
        with pytest.raises(InvalidArgument):
            VersionVector().bump(1, by=-1)

    def test_mapping_protocol(self):
        vv = VersionVector({1: 2, 3: 4})
        assert set(vv) == {1, 3}
        assert 1 in vv and 2 not in vv
        assert dict(vv) == {1: 2, 3: 4}


class TestCompare:
    def test_equal(self):
        a = VersionVector({1: 2})
        assert a.compare(VersionVector({1: 2})) is Ordering.EQUAL

    def test_dominates_after_update(self):
        a = VersionVector({1: 2})
        b = a.bump(1)
        assert b.compare(a) is Ordering.DOMINATES
        assert a.compare(b) is Ordering.DOMINATED

    def test_concurrent(self):
        """The classic partition scenario: both sides update independently."""
        base = VersionVector({1: 1, 2: 1})
        left = base.bump(1)
        right = base.bump(2)
        assert left.compare(right) is Ordering.CONCURRENT
        assert right.compare(left) is Ordering.CONCURRENT

    def test_dominates_helpers(self):
        a = VersionVector({1: 1})
        b = a.bump(1)
        assert b.dominates(a) and b.strictly_dominates(a)
        assert a.dominates(a) and not a.strictly_dominates(a)
        assert not a.concurrent_with(b)


class TestMerge:
    def test_merge_is_pointwise_max(self):
        a = VersionVector({1: 3, 2: 1})
        b = VersionVector({1: 1, 3: 2})
        assert dict(a.merge(b)) == {1: 3, 2: 1, 3: 2}

    def test_merge_resolves_concurrency(self):
        base = VersionVector({1: 1})
        left, right = base.bump(1), base.bump(2)
        merged = left.merge(right)
        assert merged.dominates(left) and merged.dominates(right)


class TestCodec:
    def test_round_trip(self):
        vv = VersionVector({5: 7, 1: 2})
        assert VersionVector.decode(vv.encode()) == vv

    def test_empty_round_trip(self):
        assert VersionVector.decode(VersionVector().encode()) == VersionVector()

    def test_bad_text_rejected(self):
        with pytest.raises(InvalidArgument):
            VersionVector.decode("nonsense")

    @given(vectors)
    def test_round_trip_property(self, vv):
        assert VersionVector.decode(vv.encode()) == vv


class TestAlgebraProperties:
    @given(vectors)
    def test_compare_reflexive(self, a):
        assert a.compare(a) is Ordering.EQUAL

    @given(vectors, vectors)
    def test_compare_antisymmetric_pairing(self, a, b):
        """a vs b and b vs a always agree as mirror images."""
        mirror = {
            Ordering.EQUAL: Ordering.EQUAL,
            Ordering.DOMINATES: Ordering.DOMINATED,
            Ordering.DOMINATED: Ordering.DOMINATES,
            Ordering.CONCURRENT: Ordering.CONCURRENT,
        }
        assert b.compare(a) is mirror[a.compare(b)]

    @given(vectors, vectors, vectors)
    def test_dominance_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)

    @given(vectors, vectors)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(vectors, vectors, vectors)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(vectors)
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(vectors, vectors)
    def test_merge_is_upper_bound(self, a, b):
        m = a.merge(b)
        assert m.dominates(a) and m.dominates(b)

    @given(vectors, vectors, vectors)
    def test_merge_is_least_upper_bound(self, a, b, c):
        """Any common upper bound dominates the merge."""
        if c.dominates(a) and c.dominates(b):
            assert c.dominates(a.merge(b))

    @given(vectors, st.integers(min_value=0, max_value=5))
    def test_bump_strictly_advances(self, a, rid):
        assert a.bump(rid).strictly_dominates(a)

    @given(vectors, vectors)
    def test_equal_means_same_value(self, a, b):
        if a.compare(b) is Ordering.EQUAL:
            assert a == b
