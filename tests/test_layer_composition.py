"""Composing extension layers with the full Ficus cluster stack."""

import pytest

from repro.errors import PermissionDenied
from repro.layers import AccessPolicy, AuthLayer, MonitorLayer
from repro.sim import DaemonConfig, FicusSystem
from repro.vnode import Credential, MountLayer, OpContext

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestMonitorOverLogical:
    def test_monitor_profiles_the_replicated_namespace(self):
        """A monitor layer over the LOGICAL layer sees user-level traffic
        of the replicated file system — replication stays transparent."""
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        mon = MonitorLayer(system.host("a").logical)
        root = mon.root()
        root.create("f").write(0, b"observed")
        root.lookup("f").read(0, 8)
        assert mon.profile["create"].calls == 1
        assert mon.profile["write"].bytes_in == 8
        assert mon.profile["read"].bytes_out == 8
        # the data really replicated underneath
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        assert system.host("b").fs().read_file("/f") == b"observed"


class TestAuthOverLogical:
    def test_policy_gates_the_distributed_namespace(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        auth = AuthLayer(
            system.host("a").logical,
            AccessPolicy(read_only_uids={9}, root_bypasses=True),
        )
        root = auth.root()
        root.create("shared").write(0, b"x")  # uid 0 bypasses
        reader = OpContext(cred=Credential(uid=9))
        assert root.lookup("shared", reader).read(0, 1, reader) == b"x"
        with pytest.raises(PermissionDenied):
            root.create("nope", ctx=reader)
        # host b is untouched by host a's auth layer: policy is per-stack
        system.host("b").fs().write_file("/from-b", b"fine")


class TestMountPlusMonitorPlusFicus:
    def test_full_workstation_stack(self):
        """MountLayer(base=private UFS) + monitor + Ficus at /net — three
        orthogonal layers assembled like Lego, per the paper's Section 7
        conclusion that layers compose transparently."""
        from repro.storage import BlockDevice
        from repro.ufs import Ufs
        from repro.vnode import UfsLayer

        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        private = UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=128))
        private.root().mkdir("net")
        monitored_ficus = MonitorLayer(system.host("a").logical)
        ns = MountLayer(private)
        ns.mount("/net", monitored_ficus)

        root = ns.root()
        root.create("local.txt").write(0, b"private")
        root.walk("net").create("shared.txt").write(0, b"replicated")

        assert monitored_ficus.profile["create"].calls == 1  # only /net traffic
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        assert system.host("b").fs().read_file("/shared.txt") == b"replicated"
