"""Tests for the logical layer: single-copy abstraction, replica selection."""

import pytest

from repro.errors import (
    AllReplicasUnavailable,
    CrossDevice,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.logical import READ_ANY
from repro.physical import volume_root_handle
from repro.sim import DaemonConfig, FicusSystem
from repro.ufs import FileType

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def system():
    return FicusSystem(["alpha", "beta", "gamma"], daemon_config=QUIET)


@pytest.fixture
def alpha_root(system):
    return system.host("alpha").root()


class TestBasicNamespace:
    def test_create_and_read(self, alpha_root):
        f = alpha_root.create("f")
        f.write(0, b"data")
        assert alpha_root.lookup("f").read_all() == b"data"

    def test_duplicate_create_rejected(self, alpha_root):
        alpha_root.create("f")
        with pytest.raises(FileExists):
            alpha_root.create("f")

    def test_mkdir_and_nested_files(self, alpha_root):
        d = alpha_root.mkdir("d")
        d.create("f").write(0, b"x")
        assert alpha_root.walk("d/f").read_all() == b"x"

    def test_remove(self, alpha_root):
        alpha_root.create("f")
        alpha_root.remove("f")
        with pytest.raises(FileNotFound):
            alpha_root.lookup("f")

    def test_remove_directory_rejected(self, alpha_root):
        alpha_root.mkdir("d")
        with pytest.raises(IsADirectory):
            alpha_root.remove("d")

    def test_rmdir_requires_empty(self, alpha_root):
        d = alpha_root.mkdir("d")
        d.create("f")
        with pytest.raises(DirectoryNotEmpty):
            alpha_root.rmdir("d")
        d.remove("f")
        alpha_root.rmdir("d")

    def test_rmdir_of_file_rejected(self, alpha_root):
        alpha_root.create("f")
        with pytest.raises(NotADirectory):
            alpha_root.rmdir("f")

    def test_symlink(self, alpha_root):
        alpha_root.symlink("lnk", "/a/b")
        assert alpha_root.lookup("lnk").readlink() == "/a/b"

    def test_readdir_types(self, alpha_root):
        alpha_root.create("f")
        alpha_root.mkdir("d")
        entries = {e.name: e.ftype for e in alpha_root.readdir()}
        assert entries == {"f": FileType.REGULAR, "d": FileType.DIRECTORY}

    def test_link_gives_second_name(self, alpha_root):
        f = alpha_root.create("orig")
        f.write(0, b"shared")
        alpha_root.link(f, "alias")
        assert alpha_root.lookup("alias").read_all() == b"shared"

    def test_rename_within_directory(self, alpha_root):
        alpha_root.create("old").write(0, b"content")
        alpha_root.rename("old", alpha_root, "new")
        assert alpha_root.lookup("new").read_all() == b"content"
        with pytest.raises(FileNotFound):
            alpha_root.lookup("old")

    def test_rename_across_directories(self, alpha_root):
        a = alpha_root.mkdir("a")
        b = alpha_root.mkdir("b")
        a.create("f").write(0, b"moving")
        a.rename("f", b, "g")
        assert b.lookup("g").read_all() == b"moving"

    def test_rename_replaces_file_target(self, alpha_root):
        alpha_root.create("src").write(0, b"src")
        alpha_root.create("dst").write(0, b"dst")
        alpha_root.rename("src", alpha_root, "dst")
        assert alpha_root.lookup("dst").read_all() == b"src"

    def test_rename_onto_directory_rejected(self, alpha_root):
        alpha_root.create("f")
        alpha_root.mkdir("d")
        with pytest.raises(IsADirectory):
            alpha_root.rename("f", alpha_root, "d")

    def test_rename_directory_keeps_contents(self, alpha_root):
        d = alpha_root.mkdir("olddir")
        d.create("inner").write(0, b"kept")
        alpha_root.rename("olddir", alpha_root, "newdir")
        assert alpha_root.walk("newdir/inner").read_all() == b"kept"


class TestReplicaSelection:
    def test_any_host_reads_data_created_elsewhere(self, system):
        """One-copy availability: beta can read alpha's file through
        alpha's replica even before its own replica has a copy."""
        system.host("alpha").root().create("f").write(0, b"remote read")
        beta_root = system.host("beta").root()
        # beta's own replica is stale (no recon ran): the latest policy
        # must find the newest copy among reachable replicas
        assert beta_root.lookup("f").read_all() == b"remote read"

    def test_latest_policy_prefers_most_recent(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("f").write(0, b"v1")
        system.reconcile_everything()
        # update only on beta's replica
        beta.root().lookup("f").write(0, b"v2 fresher")
        # alpha's local copy is v1; the latest policy must detect beta's
        assert alpha.root().lookup("f").read_all() == b"v2 fresher"

    def test_any_policy_settles_for_first_reachable(self):
        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET, read_policy=READ_ANY)
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("f").write(0, b"v1")
        system.reconcile_everything()
        beta.root().lookup("f").write(0, b"v2")
        # alpha reads its own (stale) replica under the weak policy
        assert alpha.root().lookup("f").read_all() == b"v1"

    def test_read_fails_only_when_no_replica_reachable(self, system):
        alpha = system.host("alpha")
        alpha.root().create("f").write(0, b"x")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}, {"gamma"}])
        # each host still reads its own replica: one-copy availability
        for name in ["alpha", "beta", "gamma"]:
            assert system.host(name).root().lookup("f").read_all() == b"x"
        # a file only on alpha, not yet propagated, is unavailable to beta
        alpha.root().create("fresh").write(0, b"new")
        with pytest.raises((AllReplicasUnavailable, FileNotFound)):
            system.host("beta").root().lookup("fresh").read_all()

    def test_update_during_partition_succeeds_locally(self, system):
        alpha = system.host("alpha")
        alpha.root().create("f").write(0, b"v0")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta", "gamma"}])
        alpha.root().lookup("f").write(0, b"alpha can still write")
        assert alpha.root().lookup("f").read_all() == b"alpha can still write"

    def test_failover_mid_use(self, system):
        """A vnode held across a partition change fails over silently."""
        alpha = system.host("alpha")
        alpha.root().create("f").write(0, b"stable")
        system.reconcile_everything()
        vnode = system.host("beta").root().lookup("f")
        assert vnode.read_all() == b"stable"
        system.partition([{"beta", "gamma"}, {"alpha"}])
        assert vnode.read_all() == b"stable"  # beta replica serves


class TestOpenCloseSessions:
    def test_session_coalesces_version_bumps(self, system):
        alpha = system.host("alpha")
        f = alpha.root().create("f")
        f.open()
        f.write(0, b"a")
        f.write(1, b"b")
        f.close()
        volrep = system.root_locations[0].volrep
        store = alpha.physical.store_for(volrep)
        aux = store.read_file_aux(volume_root_handle(system.root_volume), f.fh)
        assert aux.vv.total_updates == 1

    def test_close_sends_one_notification(self, system):
        alpha = system.host("alpha")
        f = alpha.root().create("f")
        sent_before = alpha.logical.notifications_sent
        f.open()
        f.write(0, b"a")
        f.write(1, b"b")
        f.close()
        # writes inside a session do notify (cheap datagrams), close adds one
        assert alpha.logical.notifications_sent > sent_before


class TestCrossVolumeRestrictions:
    def test_rename_across_volumes_rejected(self, system):
        volume, locations = system.create_volume(["beta", "gamma"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "other", volume, locations)
        other = root.lookup("other")
        root.create("f")
        with pytest.raises(CrossDevice):
            root.rename("f", other, "f")

    def test_link_across_volumes_rejected(self, system):
        volume, locations = system.create_volume(["beta"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "other", volume, locations)
        other = root.lookup("other")
        f = root.create("f")
        with pytest.raises(CrossDevice):
            other.link(f, "bad")
