"""The scale-out topology layer and the daemon bugs it flushed out.

Three groups:

* the strategy layer itself — deterministic peer sampling, O(log n)
  fanout, ring rotation, the factory;
* convergence parity — full mesh, ring, and gossip drive the same
  divergent cluster to the *same* converged tree, and chaos stays green
  under gossip;
* regression tests for the three daemon health-accounting bugs fixed
  alongside (unreachable rings skipping the health plane, restart
  carrying policy state across a crash, and the stale peer-memo
  heuristic).
"""

import pytest

from repro.sim import (
    DaemonConfig,
    FicusSystem,
    FullMeshTopology,
    GossipTopology,
    RingTopology,
    Topology,
    make_topology,
)
from repro.sim.topology import log_fanout
from repro.volume import ReplicaLocation
from repro.workload import ChaosConfig, run_chaos

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestFactory:
    def test_default_is_full_mesh(self):
        assert isinstance(make_topology(None), FullMeshTopology)

    def test_by_name_with_seed(self):
        topology = make_topology("gossip", seed=7)
        assert isinstance(topology, GossipTopology)
        assert topology.seed == 7

    def test_instance_passes_through(self):
        ring = RingTopology()
        assert make_topology(ring) is ring

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_topology("mesh-of-rings")


class TestGossipSampling:
    def test_fanout_is_logarithmic(self):
        assert log_fanout(1) == 1
        assert log_fanout(7) == 3
        assert log_fanout(499) == 9
        assert log_fanout(0) == 0
        # never more partners than peers exist
        assert GossipTopology().fanout(2) == 2

    def test_selection_is_deterministic_across_instances(self):
        peers = [f"h{i}" for i in range(40)]
        first = GossipTopology(seed=3)
        second = GossipTopology(seed=3)
        for tick in range(12):
            assert first.select("h7", peers, tick) == second.select("h7", peers, tick)

    def test_selection_varies_by_tick_host_and_seed(self):
        peers = [f"h{i}" for i in range(40)]
        topology = GossipTopology(seed=3)
        by_tick = {tuple(topology.select("h7", peers, tick)) for tick in range(12)}
        assert len(by_tick) > 1
        assert topology.select("h7", peers, 0) != GossipTopology(seed=4).select(
            "h7", peers, 0
        )
        # different hosts draw different partners on the same tick
        assert any(
            topology.select("h7", peers, tick) != topology.select("h8", peers, tick)
            for tick in range(12)
        )

    def test_selection_shape(self):
        peers = [f"h{i}" for i in range(33)]
        topology = GossipTopology(seed=1)
        chosen = topology.select("me", peers, 5)
        assert len(chosen) == log_fanout(33)
        assert len(set(chosen)) == len(chosen)
        assert all(0 <= index < len(peers) for index in chosen)


class TestRingSelection:
    def test_rotating_successor_covers_every_peer(self):
        peers = ["b", "c", "d", "e"]
        topology = RingTopology()
        visited = [topology.select("a", peers, tick)[0] for tick in range(len(peers))]
        assert sorted(visited) == list(range(len(peers)))

    def test_one_partner_per_tick(self):
        topology = RingTopology()
        assert topology.fanout(17) == 1
        assert len(topology.select("m", [f"h{i}" for i in range(17)], 4)) == 1


class TestFullMeshCompatibility:
    def test_selects_every_peer_every_tick(self):
        topology = FullMeshTopology()
        assert topology.select("a", ["b", "c", "d"], 9) == [0, 1, 2]
        assert topology.fanout(3) == 3
        assert topology.sweep_ticks(3) == 3
        assert topology.default_rounds(5) == 5

    def test_base_class_is_abstract_enough(self):
        with pytest.raises(NotImplementedError):
            Topology().select("a", ["b"], 0)


def _converged_view(system):
    views = []
    for host in system.hosts.values():
        fs = host.fs()
        tree = sorted(fs.walk_tree())
        contents = {
            path: fs.read_file(path) for path in tree if fs.stat(path).is_file
        }
        views.append((tree, contents))
    return views


def _diverge_and_reconcile(topology_name: str):
    system = FicusSystem(
        ["a", "b", "c", "d"],
        daemon_config=QUIET,
        topology=make_topology(topology_name, seed=5),
    )
    system.host("a").fs().write_file("/shared", b"v0")
    system.reconcile_everything()
    system.partition([{"a", "b"}, {"c", "d"}])
    system.host("a").fs().write_file("/from-a", b"left")
    system.host("c").fs().write_file("/from-c", b"right")
    system.host("d").fs().mkdir("/dir-d")
    system.heal()
    system.reconcile_everything()
    return _converged_view(system)


class TestConvergenceParity:
    @pytest.mark.parametrize("topology", ["full_mesh", "ring", "gossip"])
    def test_partition_era_updates_converge(self, topology):
        views = _diverge_and_reconcile(topology)
        assert all(view == views[0] for view in views[1:])
        tree = views[0][0]
        assert "/from-a" in tree and "/from-c" in tree and "/dir-d" in tree

    def test_every_topology_reaches_the_same_tree(self):
        """Same writes, same seeds: the converged tree must not depend on
        which anti-entropy schedule carried the updates."""
        results = {name: _diverge_and_reconcile(name) for name in ("full_mesh", "ring", "gossip")}
        assert results["ring"][0] == results["full_mesh"][0]
        assert results["gossip"][0] == results["full_mesh"][0]

    @pytest.mark.parametrize("seed", [11, 17])
    def test_chaos_stays_green_under_gossip(self, seed):
        report = run_chaos(
            seed, ChaosConfig(rounds=4, ops_per_round=3, topology="gossip")
        )
        assert report.converged, report.problems


class TestUnreachablePeerHealthAccounting:
    """Regression: the synthesized ``aborted_by_partition`` result for an
    all-unreachable ring used to skip ``health.recon_result``, so the
    health plane never suspected divergence for partitioned volumes."""

    def test_partitioned_tick_raises_divergence_suspicion(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/doc", b"v0")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/doc", b"partition era")

        results = system.host("a").recon_daemon.tick()
        assert any(result.aborted_by_partition for result in results)

        plane = system.host("a").health_plane
        assert plane.divergence_suspected()
        outcome = plane.last_recon[-1]
        assert outcome["peer"] == "b"
        assert outcome["ok"] is False

    def test_suspicion_clears_after_heal_and_recon(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/doc", b"v0")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        system.host("a").recon_daemon.tick()
        assert system.host("a").health_plane.divergence_suspected()
        system.heal()
        system.reconcile_everything()
        assert not system.host("a").health_plane.divergence_suspected()


class TestRestartResetsPolicyState:
    """Regression: ``FicusHost.restart`` rebuilt the daemons' logical
    wiring but carried skip credits and ring cursors across the crash —
    a rebooted host kept routing around peers based on pre-crash
    history."""

    def test_skip_credits_do_not_survive_reboot(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        daemon = system.host("a").recon_daemon
        daemon.peer_health.record_failure("b")
        daemon.peer_health.record_failure("b")
        system.host("a").propagation_daemon.peer_health.record_failure("b")
        assert daemon.peer_health.is_degraded("b")

        host = system.host("a")
        host.crash()
        host.restart(system)
        assert not host.recon_daemon.peer_health.is_degraded("b")
        assert not host.propagation_daemon.peer_health.is_degraded("b")

    def test_ring_cursor_and_tick_schedule_reset(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        daemon = system.host("a").recon_daemon
        daemon.tick()
        assert daemon._ring_position and daemon._tick_index > 0

        host = system.host("a")
        host.crash()
        host.restart(system)

        daemon = system.host("a").recon_daemon
        assert not daemon._ring_position
        assert daemon._tick_index == 0


class TestPeerMemoConsistency:
    """Regression: ``peers`` was a bare public dict, and the per-tick
    staleness pass "repaired" direct mutations with a length heuristic —
    a same-length replica move (b out, c in) slipped past it and the
    health plane kept aging the departed host forever.  Mutation is now
    impossible outside ``set_peers`` (which keeps the memo in sync), and
    the heuristic is gone."""

    def test_same_length_swap_retargets_reconciliation(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        volume, locations = system.create_volume(["a", "b"], learn_locations=True)
        daemon = system.host("a").recon_daemon
        volrep = locations[0].volrep

        moved_volrep = locations[1].volrep
        system.host("c").physical.create_volume_replica(moved_volrep)
        daemon.set_peers(volrep, [locations[0], ReplicaLocation(moved_volrep, "c")])
        assert [loc.host for loc in daemon.peers[volrep]] == ["c"]

        # the staleness accounting must age the *new* ring, not the old
        # one the stale memo remembered
        plane = system.host("a").health_plane
        aged = []
        original = plane.recon_tick

        def spying_recon_tick(vol, hosts):
            aged.append((vol, list(hosts)))
            original(vol, hosts)

        plane.recon_tick = spying_recon_tick
        daemon.tick()
        assert [hosts for vol, hosts in aged if vol == volume] == [["c"]]
        outcome = plane.last_recon[-1]
        assert outcome["peer"] == "c"

    def test_peers_view_is_read_only(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        daemon = system.host("a").recon_daemon
        volrep = next(iter(daemon.peers))
        with pytest.raises(TypeError):
            daemon.peers[volrep] = ()
        # and the per-entry tuples resist in-place edits too
        with pytest.raises((TypeError, AttributeError)):
            daemon.peers[volrep].append(None)


class TestShardedPlacement:
    def test_replicas_spread_and_are_stable(self):
        first = FicusSystem([f"h{i}" for i in range(20)], daemon_config=QUIET)
        second = FicusSystem([f"h{i}" for i in range(20)], daemon_config=QUIET)
        placed = first.place_volumes(12, replicas_per_volume=3)
        again = second.place_volumes(12, replicas_per_volume=3)
        assert [
            [loc.host for loc in locations] for _v, locations in placed
        ] == [[loc.host for loc in locations] for _v, locations in again]
        hosts_used = {loc.host for _v, locations in placed for loc in locations}
        assert len(hosts_used) >= 8

    def test_bad_arguments_rejected(self):
        from repro.errors import InvalidArgument

        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        with pytest.raises(InvalidArgument):
            system.place_volumes(1, replicas_per_volume=3)
        with pytest.raises(InvalidArgument):
            system.place_volumes(-1)
