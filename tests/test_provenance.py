"""Tests for the provenance plane: ledgers, the version DAG, replay verify.

The invariants held here are the ones ARCHITECTURE.md promises:

* every live ``(fh, vv)`` pair in a store has a ledger node (within ring
  retention), and merge/resolve nodes carry >= 2 distinct parents;
* the composed DAG is a pure function of the event set (order-free);
* ``feeds_of_conflict`` names the exact cross-host write set feeding each
  branch of a conflict — handcrafted and chaos-produced alike;
* a recorded chaos history replays on a fresh cluster to byte-identical
  trees and version-vector maps (replicate-and-verify).
"""

import pytest

from repro.sim import DaemonConfig, FicusSystem
from repro.telemetry import MINT_KINDS, ProvEvent, VersionDAG, load_dump, snapshot_to_jsonl
from repro.workload import TraceOp, replay_trace
from repro.workload.chaos import ChaosConfig, run_chaos
from repro.workload.verify import replicate_and_verify, state_fingerprint

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def _converge(system, rounds=6):
    """Heal + enough reconcile rounds to ride out transient backoffs."""
    system.heal()
    system.reconcile_everything(rounds=rounds)


def _conflicted_file_dag(system):
    """The (fh, dag) of the single conflicted/merged file in a scenario."""
    dag = system.provenance_dag()
    for fh in dag.file_handles():
        heads = dag.heads(fh)
        if len(heads) >= 2 or any(n.is_merge for n in dag.nodes_for(fh)):
            return fh, dag
    raise AssertionError("scenario produced no conflicted file")


class TestLedgerHooks:
    def test_create_and_write_lineage_single_host(self):
        system = FicusSystem(["west", "east"])
        west = system.host("west").fs()
        west.mkdir("/d")
        west.write_file("/d/f", b"v1")
        west.write_file("/d/f", b"v2")
        dag = system.provenance_dag()
        fh = dag.file_handles()[0]
        lineage = dag.lineage(fh)
        assert [sorted(n.kinds) for n in lineage] == [["create"], ["write"], ["write"]]
        # genesis node has the empty vv and no parents
        assert lineage[0].vv == "" and lineage[0].parents == set()
        # each write's parent is exactly the version it replaced
        assert lineage[1].parents == {""}
        assert lineage[2].parents == {lineage[1].vv}

    def test_pull_records_origin_host(self):
        system = FicusSystem(["west", "east"])
        west = system.host("west").fs()
        west.mkdir("/d")
        west.write_file("/d/f", b"v1")
        system.reconcile_everything()
        east_events = system.host("east").health_plane.provenance.events()
        pulls = [e for e in east_events if e.kind == "pull"]
        assert pulls and all(e.origin == "west" for e in pulls)

    def test_who_wrote_names_the_writer(self):
        system = FicusSystem(["west", "east"])
        west = system.host("west").fs()
        west.mkdir("/d")
        west.write_file("/d/f", b"v1")
        system.reconcile_everything()
        dag = system.provenance_dag()
        fh = dag.file_handles()[0]
        head = dag.heads(fh)[0]
        writers = dag.who_wrote(fh, head.vv)
        assert [w[0] for w in writers] == ["west"]
        assert writers[0][2] == "write"


class TestConflictLineage:
    def test_three_replica_conflict_and_resolve(self):
        """Lineage across a 3-replica partition conflict + auto-resolve."""
        system = FicusSystem(["a", "b", "c"])
        system.enable_resolvers()
        fs_a = system.host("a").fs()
        fs_a.mkdir("/d")
        fs_a.write_file("/d/box.log", b"base\n")
        fs_a.set_merge_policy("/d/box.log", "append-log")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}, {"c"}])
        for name in ("a", "b", "c"):
            fs = system.host(name).fs()
            fs.write_file("/d/box.log", b"base\n" + f"from-{name}\n".encode())
        _converge(system, rounds=8)
        contents = {system.host(n).fs().read_file("/d/box.log") for n in ("a", "b", "c")}
        assert contents == {b"base\nfrom-a\nfrom-b\nfrom-c\n"}

        fh, dag = _conflicted_file_dag(system)
        # every host's concurrent write is a node, and the final head is a
        # merge that transitively descends from all three
        writes = [
            n for n in dag.nodes_for(fh) if "write" in n.kinds and len(n.parents) == 1
        ]
        assert len(writes) >= 3
        heads = dag.heads(fh)
        assert len(heads) == 1 and heads[0].is_merge
        assert len(heads[0].parents) >= 2

    @pytest.mark.parametrize(
        "tag,base,side_a,side_b",
        [
            ("append-log", b"base\n", b"base\na\n", b"base\nb\n"),
            ("kv", b"k=0\n", b"k=0\nx=1\n", b"k=0\ny=2\n"),
            ("lww", b"base", b"left", b"right"),
            (
                "threeway",
                b"A" * 4096 + b"B" * 4096,
                b"a" * 4096 + b"B" * 4096,
                b"A" * 4096 + b"b" * 4096,
            ),
        ],
    )
    def test_merge_edges_from_each_resolver_kind(self, tag, base, side_a, side_b):
        """Each shipped resolver's merge lands as a >=2-parent DAG node."""
        system = FicusSystem(["west", "east"])
        system.enable_resolvers()
        west = system.host("west").fs()
        east = system.host("east").fs()
        west.mkdir("/d")
        west.write_file("/d/f", base)
        west.set_merge_policy("/d/f", tag)
        system.reconcile_everything()
        system.partition([{"west"}, {"east"}])
        west.write_file("/d/f", side_a)
        east.write_file("/d/f", side_b)
        _converge(system, rounds=6)
        assert system.total_conflicts() == 0

        fh, dag = _conflicted_file_dag(system)
        merges = [n for n in dag.nodes_for(fh) if n.is_merge]
        assert merges, f"no merge node ledgered for resolver {tag!r}"
        for node in merges:
            assert len(node.parents) >= 2
            # the resolver tag is annotated on the merge event
            assert any(tag in e.detail for e in node.events if e.kind == "merge")

    def test_feeds_of_conflict_exact_write_sets(self):
        """feeds_of_conflict returns exactly the per-side writes, not the base."""
        system = FicusSystem(["west", "east"])
        west = system.host("west").fs()
        east = system.host("east").fs()
        west.mkdir("/d")
        west.write_file("/d/f", b"base")
        system.reconcile_everything()
        system.partition([{"west"}, {"east"}])
        west.write_file("/d/f", b"west-1")
        west.write_file("/d/f", b"west-2")
        east.write_file("/d/f", b"east-1")
        _converge(system)

        fh, dag = _conflicted_file_dag(system)
        feeds = dag.feeds_of_conflict(fh)
        assert len(feeds) == 2
        by_host = {
            tuple(sorted({e.host for e in events})): sorted(e.vv for e in events)
            for events in feeds.values()
        }
        # west's branch is fed by exactly its two partition-era writes,
        # east's by exactly its one; the shared base write feeds neither
        assert set(by_host) == {("west",), ("east",)}
        assert len(by_host[("west",)]) == 2
        assert len(by_host[("east",)]) == 1
        all_feed_events = [e for events in feeds.values() for e in events]
        assert all(e.kind in MINT_KINDS for e in all_feed_events)


class TestDagComposition:
    def _partitioned_system(self):
        system = FicusSystem(["west", "east"])
        west = system.host("west").fs()
        east = system.host("east").fs()
        west.mkdir("/d")
        west.write_file("/d/f", b"base")
        system.reconcile_everything()
        system.partition([{"west"}, {"east"}])
        west.write_file("/d/f", b"w")
        east.write_file("/d/f", b"e")
        _converge(system)
        return system

    def test_cross_host_dag_equality_after_convergence(self):
        """Composing the ledgers in any order yields the same graph."""
        system = self._partitioned_system()
        ledgers = [
            system.host(name).health_plane.provenance for name in ("west", "east")
        ]
        forward = VersionDAG.compose(ledgers)
        backward = VersionDAG.compose(list(reversed(ledgers)))
        as_dicts = lambda dag: {  # noqa: E731
            key: (sorted(node.parents), sorted(node.hosts), sorted(node.kinds))
            for key, node in dag.nodes.items()
        }
        assert as_dicts(forward) == as_dicts(backward)

    def test_every_live_version_has_a_node(self):
        """DAG invariant: every stored (fh, vv) pair appears as a node."""
        system = self._partitioned_system()
        dag = system.provenance_dag()
        for name in ("west", "east"):
            host = system.host(name)
            for store in host.physical.stores.values():
                for dir_fh in store.all_directory_handles():
                    for entry in store.read_entries(dir_fh):
                        fh = entry.fh.logical
                        if not entry.live or not store.has_file(dir_fh, fh):
                            continue
                        vv = store.read_file_aux(dir_fh, fh).vv
                        if not vv:
                            continue  # directories / never-written files
                        node = dag.node(fh.to_hex(), vv.encode())
                        assert node is not None, f"{name}: no node for {vv.encode()}"

    def test_prov_rides_flight_dump_round_trip(self, tmp_path):
        system = self._partitioned_system()
        plane = system.host("west").health_plane
        snapshot = plane.anomaly("test_dump")
        path = tmp_path / "flight.jsonl"
        path.write_text("\n".join(snapshot_to_jsonl(snapshot)) + "\n")
        loaded = load_dump(str(path))
        assert loaded["prov"], "prov records missing from the dump"
        rebuilt = VersionDAG.from_records(loaded["prov"])
        original = VersionDAG().add_events(plane.provenance.events())
        assert set(rebuilt.nodes) == set(original.nodes)

    def test_event_dict_round_trip(self):
        event = ProvEvent(
            at=1.5, host="h", kind="merge", fh="aa", vv="1:2,2:1",
            parents=("1:2", "2:1"), origin="", detail="log[append-log]", trace="a:b",
        )
        assert ProvEvent.from_dict(event.to_dict()) == event


class TestChaosProvenance:
    def test_feeds_of_conflict_on_chaos_produced_conflict(self):
        """Acceptance: the write set of a chaos conflict is exact."""
        from repro.sim import make_topology
        from repro.workload.chaos import _QUIET

        # run_chaos tears its system down, so record seed 11's history and
        # replay it onto a cluster we keep — same seed, same fault schedule
        config = ChaosConfig(record_history=True)
        report = run_chaos(11, config)
        assert report.converged
        assert report.unresolved_conflicts > 0, "seed 11 is expected to conflict"
        system = FicusSystem(
            ["h0", "h1", "h2"],
            daemon_config=_QUIET,
            topology=make_topology("full_mesh", seed=11),
        )
        system.network.faults.reseed(11)
        system.network.faults.set_default(config.faults)
        replay_trace(system, report.history, strict=False)
        system.heal()
        system.network.faults.clear()
        system.network.flush_deferred_datagrams()
        for name in ("h0", "h1", "h2"):
            system.host(name).propagation_daemon.peer_health.reset()
            system.host(name).recon_daemon.peer_health.reset()
        system.reconcile_everything(rounds=5)

        dag = system.provenance_dag()
        conflicted = [fh for fh in dag.file_handles() if len(dag.heads(fh)) >= 2]
        assert conflicted, "replayed seed 11 should hold open conflicts"
        checked = 0
        for fh in conflicted:
            feeds = dag.feeds_of_conflict(fh)
            if not feeds:
                continue  # heads outside ring retention have no feed events
            checked += 1
            branch_vvs = set(feeds)
            for branch, events in feeds.items():
                assert events, f"branch {branch} of {fh} has an empty feed set"
                for event in events:
                    assert event.kind in MINT_KINDS
                    # exactness: the event belongs to THIS branch only —
                    # no event may feed every branch (that would make it
                    # common history, which the glb subtraction removes)
                    assert not all(
                        any(e.vv == event.vv for e in feeds[b]) for b in branch_vvs
                    ), f"{event.vv} feeds every branch: common history leaked"
        assert checked, "no conflicted file retained its feed events"

    def test_replicate_and_verify_is_deterministic(self):
        report = run_chaos(7, ChaosConfig(verify_replication=True))
        assert report.converged, report.problems
        assert report.verify is not None and report.verify.identical
        assert report.verify.ops_replayed + report.verify.ops_failed == len(report.history)

    def test_verify_detects_a_tampered_baseline(self):
        """The byte-diff is not vacuous: corrupt one vv, expect a scream."""
        config = ChaosConfig(record_history=True)
        report = run_chaos(7, config)
        assert report.converged

        from repro.sim import make_topology
        from repro.workload.chaos import _QUIET

        system = FicusSystem(
            ["h0", "h1", "h2"],
            daemon_config=_QUIET,
            topology=make_topology("full_mesh", seed=7),
        )
        system.network.faults.reseed(7)
        system.network.faults.set_default(config.faults)
        replay_trace(system, report.history, strict=False)
        system.heal()
        system.network.faults.clear()
        system.network.flush_deferred_datagrams()
        for name in ("h0", "h1", "h2"):
            system.host(name).propagation_daemon.peer_health.reset()
            system.host(name).recon_daemon.peer_health.reset()
        system.reconcile_everything(rounds=5)
        for _ in range(2):
            for name in ("h0", "h1", "h2"):
                system.host(name).propagation_daemon.tick()

        baseline = state_fingerprint(system)
        tampered = False
        for host in baseline.values():
            for store in host["stores"].values():
                for fh, (contents, vv) in store["files"].items():
                    store["files"][fh] = (contents + b"!tampered", vv)
                    tampered = True
                    break
                if tampered:
                    break
            if tampered:
                break
        assert tampered
        verdict = replicate_and_verify(report.history, 7, config, baseline)
        assert not verdict.identical
        assert any("contents diverged" in p for p in verdict.problems)

    def test_recording_is_transparent(self):
        """A recorded run and a bare run of one seed are byte-identical."""
        bare = run_chaos(23, ChaosConfig())
        recorded = run_chaos(23, ChaosConfig(record_history=True))
        assert bare.converged and recorded.converged
        assert bare.faults_injected == recorded.faults_injected
        assert bare.tree == recorded.tree

    def test_recording_excludes_untraceable_features(self):
        with pytest.raises(ValueError):
            run_chaos(7, ChaosConfig(record_history=True, rename_storm=True))
        with pytest.raises(ValueError):
            run_chaos(7, ChaosConfig(verify_replication=True, crash_prob=0.2))


class TestReplayFidelity:
    def test_replay_mkdir_issues_one_rpc(self):
        """Fail-pre-fix: replaying op=mkdir must not probe path components.

        The replayer used ``makedirs`` for mkdir ops; its per-component
        existence probes consumed extra fault-plane draws, so recorded
        chaos histories replayed onto a *different* fault schedule and
        replicate-and-verify diverged on seeds whose schedule contained a
        mkdir (e.g. 17 and 42).
        """
        system = FicusSystem(["a"], daemon_config=QUIET)
        before = system.network.stats.rpcs_sent
        replay_trace(system, [TraceOp(at=0.0, op="mkdir", host="a", path="/d")])
        mkdir_rpcs = system.network.stats.rpcs_sent - before

        system2 = FicusSystem(["a"], daemon_config=QUIET)
        before = system2.network.stats.rpcs_sent
        system2.host("a").fs().mkdir("/d")
        direct_rpcs = system2.network.stats.rpcs_sent - before
        assert mkdir_rpcs == direct_rpcs

    def test_restart_does_not_leak_datagram_handlers(self):
        """Fail-pre-fix: a restarted host re-registers its datagram
        handlers; the dying stack's registrations must be withdrawn or
        the surviving health plane double-records every notification."""
        def fresh_recv_after_write(restarts: int) -> int:
            system = FicusSystem(["west", "east"], daemon_config=QUIET)
            west = system.host("west").fs()
            west.mkdir("/d")
            system.reconcile_everything()
            east = system.host("east")
            for _ in range(restarts):
                east.crash()
                east.restart(system)
            plane = east.health_plane
            baseline = sum(
                1 for entry in plane.recorder.ring if entry[1] == "notification.recv"
            )
            west.write_file("/d/f", b"after-restarts")
            return (
                sum(1 for e in plane.recorder.ring if e[1] == "notification.recv")
                - baseline
            )

        pristine = fresh_recv_after_write(restarts=0)
        assert pristine > 0
        # a leaked handler stack would multiply the count per reboot
        assert fresh_recv_after_write(restarts=1) == pristine
        assert fresh_recv_after_write(restarts=2) == pristine


class TestStalenessSlo:
    def test_staleness_accrues_and_heals(self):
        system = FicusSystem(["west", "east"])
        west = system.host("west").fs()
        west.mkdir("/d")
        west.write_file("/d/f", b"v1")
        system.reconcile_everything()
        assert system.host("west").health().max_staleness_seconds < 1.0
        system.partition([{"west"}, {"east"}])
        for _ in range(3):
            system.clock.advance(10.0)
            for name in ("west", "east"):
                system.host(name).recon_daemon.tick()
        stale = system.host("west").health().max_staleness_seconds
        assert stale >= 20.0
        system.heal()
        system.reconcile_everything(rounds=4)
        healed = system.host("west").health().max_staleness_seconds
        assert healed < 1.0

    def test_chaos_slo_gate_passes_after_heal(self):
        report = run_chaos(
            7, ChaosConfig(clock_step=1.0, staleness_slo_seconds=60.0)
        )
        assert report.converged, report.problems
        assert report.max_staleness_seconds <= 60.0

    def test_chaos_slo_gate_fires_when_impossible(self):
        """An SLO of 0 must be reported as violated, not silently passed."""
        report = run_chaos(
            7, ChaosConfig(clock_step=1.0, staleness_slo_seconds=-1.0)
        )
        assert any("staleness SLO violated" in p for p in report.problems)


class TestLedgerBounds:
    def test_ring_is_bounded_and_counts_evictions(self):
        from repro.telemetry import ProvenanceLedger

        ledger = ProvenanceLedger("h", capacity=8)
        for i in range(20):
            ledger.record("write", "aa", f"1:{i + 1}", parents=(f"1:{i}",))
        assert len(ledger.ring) == 8
        assert ledger.evicted == 12

    def test_disabled_ledger_records_nothing(self):
        from repro.telemetry import ProvenanceLedger

        ledger = ProvenanceLedger("h")
        ledger.enabled = False
        ledger.record("write", "aa", "1:1")
        assert ledger.events() == []
