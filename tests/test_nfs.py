"""Tests for the NFS transport layer: statelessness, dropped ops, caching."""

import pytest

from repro.errors import FileNotFound, RpcTimeout, StaleFileHandle
from repro.net import Network
from repro.nfs import NfsClientConfig, NfsClientLayer, NfsServer
from repro.storage import BlockDevice
from repro.ufs import FileType, Ufs
from repro.vnode import UfsLayer


@pytest.fixture
def world():
    """A server host exporting a UFS, and a client host mounting it."""
    net = Network()
    net.add_host("server")
    net.add_host("client")
    ufs_layer = UfsLayer(Ufs.mkfs(BlockDevice(4096), num_inodes=256, clock=net.clock))
    server = NfsServer(net, "server", ufs_layer)
    client = NfsClientLayer(net, "client", "server")
    return net, ufs_layer, server, client


class TestRemoteOperations:
    def test_create_write_read_remote(self, world):
        _, _, _, client = world
        root = client.root()
        f = root.create("remote.txt")
        f.write(0, b"over the wire")
        assert root.lookup("remote.txt").read_all() == b"over the wire"

    def test_mkdir_and_walk(self, world):
        _, _, _, client = world
        root = client.root()
        root.mkdir("a").mkdir("b")
        f = root.walk("a/b").create("f")
        f.write(0, b"deep")
        assert client.root().walk("a/b/f").read_all() == b"deep"

    def test_remove_and_rmdir(self, world):
        _, _, _, client = world
        root = client.root()
        root.create("f")
        root.remove("f")
        client.flush_caches()
        with pytest.raises(FileNotFound):
            client.root().lookup("f")

    def test_rename_remote(self, world):
        _, _, _, client = world
        root = client.root()
        a = root.mkdir("a")
        b = root.mkdir("b")
        a.create("f").write(0, b"moved")
        a.rename("f", b, "g")
        assert client.root().walk("b/g").read_all() == b"moved"

    def test_link_remote(self, world):
        _, _, _, client = world
        root = client.root()
        f = root.create("f")
        root.link(f, "alias")
        assert root.lookup("alias").getattr().nlink == 2

    def test_symlink_readlink_remote(self, world):
        _, _, _, client = world
        root = client.root()
        root.symlink("l", "/t")
        assert root.lookup("l").readlink() == "/t"

    def test_readdir_remote(self, world):
        _, _, _, client = world
        root = client.root()
        root.create("f")
        root.mkdir("d")
        entries = {e.name: e.ftype for e in root.readdir()}
        assert entries["f"] == FileType.REGULAR
        assert entries["d"] == FileType.DIRECTORY

    def test_truncate_remote(self, world):
        _, _, _, client = world
        f = client.root().create("f")
        f.write(0, b"0123456789")
        f.truncate(3)
        assert f.read_all() == b"012"

    def test_changes_visible_to_local_layer(self, world):
        """The client writes through to the very same UFS."""
        _, ufs_layer, _, client = world
        client.root().create("shared").write(0, b"one fs")
        assert ufs_layer.root().lookup("shared").read_all() == b"one fs"


class TestDroppedOpenClose:
    def test_open_close_never_reach_server(self, world):
        """Paper Section 2.2: 'a layer intending to receive an open will
        never get it if NFS is in between.'"""
        _, ufs_layer, _, client = world
        f = client.root().create("f")
        f.open()
        f.close()
        assert "open" not in ufs_layer.counters.by_op
        assert "close" not in ufs_layer.counters.by_op
        assert client.counters.by_op["open-dropped"] == 1
        assert client.counters.by_op["close-dropped"] == 1


class TestStatelessness:
    def test_handles_survive_server_reboot(self, world):
        _, _, server, client = world
        f = client.root().create("f")
        f.write(0, b"before reboot")
        server.reboot()
        assert f.read(0, 100) == b"before reboot"

    def test_stale_handle_after_delete_and_reuse(self, world):
        """A handle to a deleted file must fail ESTALE even if the fileid
        is recycled for a new file (generation check)."""
        _, ufs_layer, server, client = world
        root = client.root()
        f = root.create("victim")
        root.remove("victim")
        server.reboot()
        client.flush_caches()
        # recycle the same ino for a fresh file
        root.create("newcomer")
        with pytest.raises(StaleFileHandle):
            f.read(0, 1)

    def test_write_retry_is_idempotent(self, world):
        """Stateless ops can be retransmitted without harm."""
        _, _, _, client = world
        f = client.root().create("f")
        f.write(0, b"same bytes")
        f.write(0, b"same bytes")  # retransmission
        assert f.read_all() == b"same bytes"


class TestPartitionBehaviour:
    def test_unreachable_server_times_out(self, world):
        net, _, _, client = world
        f = client.root().create("f")
        net.partition([{"client"}, {"server"}])
        with pytest.raises(RpcTimeout):
            f.read(0, 1)

    def test_recovers_after_heal(self, world):
        net, _, _, client = world
        f = client.root().create("f")
        f.write(0, b"z")
        net.partition([{"client"}, {"server"}])
        with pytest.raises(RpcTimeout):
            f.read(0, 1)
        net.heal()
        assert f.read(0, 1) == b"z"


class TestClientCaching:
    def test_attr_cache_serves_stale_within_ttl(self, world):
        """The paper's complaint: NFS caching 'results in unexpected
        behavior for layers which are not able to adopt the assumptions
        inherent in the NFS cache management policies'."""
        net, ufs_layer, _, client = world
        f = client.root().create("f")
        f.write(0, b"v1")
        size_before = f.getattr().size
        # mutate behind the client's back via the local layer
        ufs_layer.root().lookup("f").write(0, b"v1-and-more")
        assert f.getattr().size == size_before  # still cached (stale!)
        net.clock.advance(10.0)  # past the TTL
        assert f.getattr().size == len(b"v1-and-more")

    def test_name_cache_hit_avoids_rpc(self, world):
        net, _, _, client = world
        root = client.root()
        root.create("f")
        root.lookup("f")
        sent_before = net.stats.rpcs_sent
        root.lookup("f")  # cached
        assert net.stats.rpcs_sent == sent_before

    def test_caches_disabled_by_zero_ttl(self):
        net = Network()
        net.add_host("s")
        net.add_host("c")
        layer = UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=64, clock=net.clock))
        NfsServer(net, "s", layer)
        client = NfsClientLayer(
            net, "c", "s", config=NfsClientConfig(attr_cache_ttl=0, name_cache_ttl=0)
        )
        root = client.root()
        root.create("f")
        root.lookup("f")
        sent_before = net.stats.rpcs_sent
        root.lookup("f")
        assert net.stats.rpcs_sent == sent_before + 1  # every lookup is an RPC
