"""Host crash/restart: durable state survives, volatile state rebuilds."""

import pytest

from repro.errors import AllReplicasUnavailable, FileNotFound
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestSingleHostRestart:
    def test_files_survive_restart(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        fs.makedirs("/deep/tree")
        fs.write_file("/deep/tree/data", b"durable bytes")
        host.crash()
        host.restart(system)
        fs2 = host.fs()
        assert fs2.read_file("/deep/tree/data") == b"durable bytes"
        assert sorted(fs2.walk_tree()) == ["/deep", "/deep/tree", "/deep/tree/data"]

    def test_version_vectors_survive_restart(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        fs.write_file("/f", b"v1")
        fs.write_file("/f", b"v2")
        volrep = system.root_locations[0].volrep
        store = host.physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        vv_before = store.read_file_aux(store.root_handle(), fh).vv
        host.crash()
        host.restart(system)
        store2 = host.physical.store_for(volrep)
        assert store2.read_file_aux(store2.root_handle(), fh).vv == vv_before

    def test_id_mints_never_reissue_after_restart(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        for i in range(5):
            fs.write_file(f"/f{i}", b"x")
        volrep = system.root_locations[0].volrep
        before = {
            e.fh for e in host.physical.store_for(volrep).read_entries(
                host.physical.store_for(volrep).root_handle()
            )
        }
        host.crash()
        host.restart(system)
        host.fs().write_file("/fresh", b"y")
        store = host.physical.store_for(volrep)
        fresh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "fresh")
        assert fresh not in before

    def test_orphan_shadows_scavenged_on_restart(self):
        from repro.physical import op_shadow

        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        fs.write_file("/f", b"original")
        volrep = system.root_locations[0].volrep
        store = host.physical.store_for(volrep)
        fh = next(e.fh for e in store.read_entries(store.root_handle()) if e.name == "f")
        # a propagation died mid-shadow-write...
        root = host.physical.root().lookup(volrep.to_hex())
        root.lookup(op_shadow(fh)).write(0, b"half-pulled ne")
        host.crash()
        host.restart(system)
        store2 = host.physical.store_for(volrep)
        with pytest.raises(FileNotFound):
            store2.shadow_vnode(store2.root_handle(), fh)
        assert host.fs().read_file("/f") == b"original"


class TestClusterWithRestarts:
    def test_crashed_host_is_unreachable_but_others_continue(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        system.host("a").crash()
        # b keeps serving (one-copy availability) and keeps updating
        assert system.host("b").fs().read_file("/f") == b"x"
        system.host("b").fs().write_file("/g", b"while a was down")

    def test_restarted_host_catches_up_via_recon(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        system.host("a").crash()
        system.host("b").fs().write_file("/made-during-outage", b"y")
        system.host("a").restart(system)
        system.reconcile_everything()
        assert system.host("a").fs().read_file("/made-during-outage") == b"y"

    def test_remote_clients_recover_from_server_reboot(self):
        """NFS statelessness end-to-end: the logical layer on 'client'
        keeps working across a reboot of the host storing the only
        replica."""
        system = FicusSystem(["server", "client"], root_volume_hosts=["server"], daemon_config=QUIET)
        fs = system.host("client").fs()
        fs.write_file("/f", b"before reboot")
        server = system.host("server")
        server.crash()
        with pytest.raises(AllReplicasUnavailable):
            fs.read_file("/f")
        server.restart(system)
        assert fs.read_file("/f") == b"before reboot"
        fs.write_file("/g", b"after reboot")
        assert fs.read_file("/g") == b"after reboot"

    def test_open_session_dies_with_crash_without_corruption(self):
        system = FicusSystem(["server", "client"], root_volume_hosts=["server"], daemon_config=QUIET)
        fs = system.host("client").fs()
        fs.write_file("/f", b"stable")
        handle = fs.open("/f", "a")
        handle.write(b"-more")
        system.host("server").crash()
        system.host("server").restart(system)
        # closing the dangling handle must not fail even though the
        # server-side session pin died with the crash
        handle.close()
        # new operations work; data written before the crash was
        # write-through and survived
        assert fs.read_file("/f") == b"stable-more"
