"""Tests for reconciliation: file pulls, directory merge, subtree protocol."""

import pytest

from repro.recon import (
    ConflictKind,
    PullOutcome,
    pull_file,
    reconcile_directory,
    reconcile_subtree,
    resolve_file_conflict,
)
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def system():
    return FicusSystem(["alpha", "beta"], daemon_config=QUIET)


def volrep_of(system, host_name):
    return next(loc.volrep for loc in system.root_locations if loc.host == host_name)


def store_of(system, host_name):
    return system.host(host_name).physical.store_for(volrep_of(system, host_name))


def remote_root_vnode(system, at_host, of_host):
    """Access ``of_host``'s volume-root physical vnode from ``at_host``."""
    host = system.host(at_host)
    return host.fabric.volume_root(of_host, volrep_of(system, of_host))


class TestPullFile:
    def test_pull_newer_version(self, system):
        alpha = system.host("alpha")
        f = alpha.root().create("f")
        f.write(0, b"version one")
        # beta learns the entry via dir recon, then pulls the contents
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        result = pull_file(beta_store, beta_store.root_handle(), f.fh, remote)
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == len(b"version one")
        assert beta_store.file_vnode(beta_store.root_handle(), f.fh).read_all() == b"version one"

    def test_pull_is_idempotent(self, system):
        alpha = system.host("alpha")
        f = alpha.root().create("f")
        f.write(0, b"x")
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        assert pull_file(beta_store, beta_store.root_handle(), f.fh, remote).outcome is PullOutcome.PULLED
        assert pull_file(beta_store, beta_store.root_handle(), f.fh, remote).outcome is PullOutcome.UP_TO_DATE

    def test_concurrent_versions_conflict_not_merged(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("f").write(0, b"base")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().lookup("f").write(0, b"alpha side")
        beta.root().lookup("f").write(0, b"beta side")
        system.heal()
        f = alpha.root().lookup("f")
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        result = pull_file(beta_store, beta_store.root_handle(), f.fh, remote)
        assert result.outcome is PullOutcome.CONFLICT
        # neither side's data was clobbered
        assert beta_store.file_vnode(beta_store.root_handle(), f.fh).read_all() == b"beta side"

    def test_pull_unreachable(self, system):
        alpha = system.host("alpha")
        f = alpha.root().create("f")
        f.write(0, b"x")
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        system.partition([{"alpha"}, {"beta"}])
        result = pull_file(beta_store, beta_store.root_handle(), f.fh, remote)
        assert result.outcome is PullOutcome.UNREACHABLE


class TestDirectoryRecon:
    def test_inserts_propagate(self, system):
        alpha = system.host("alpha")
        alpha.root().create("a")
        alpha.root().create("b")
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        result = reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        assert result.inserts_applied == 2
        names = {e.name for e in beta_store.read_entries(beta_store.root_handle()) if e.live}
        assert names == {"a", "b"}

    def test_recon_is_idempotent(self, system):
        alpha = system.host("alpha")
        alpha.root().create("a")
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        phys = system.host("beta").physical
        first = reconcile_directory(phys, beta_store, beta_store.root_handle(), remote)
        second = reconcile_directory(phys, beta_store, beta_store.root_handle(), remote)
        assert first.changed and not second.changed

    def test_deletes_win_over_stale_entries(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("doomed")
        system.reconcile_everything()
        assert "doomed" in [e.name for e in beta.root().readdir()]
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().remove("doomed")
        system.heal()
        system.reconcile_everything()
        assert "doomed" not in [e.name for e in beta.root().readdir()]
        assert "doomed" not in [e.name for e in alpha.root().readdir()]

    def test_insert_then_delete_while_apart_never_resurrects(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().create("ephemeral")
        alpha.root().remove("ephemeral")
        system.heal()
        # one single recon pass: beta records the tombstone
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        entries = beta_store.read_entries(beta_store.root_handle())
        ghost = [e for e in entries if e.name == "ephemeral"]
        assert len(ghost) == 1 and not ghost[0].live
        assert "ephemeral" not in [e.name for e in beta.root().readdir()]
        # full convergence eventually garbage-collects the tombstone
        system.reconcile_everything(rounds=4)
        assert "ephemeral" not in [e.name for e in alpha.root().readdir()]
        assert "ephemeral" not in [e.name for e in beta.root().readdir()]

    def test_concurrent_same_name_creates_both_kept(self, system):
        """Directory conflict auto-repair: both files survive under
        deterministic names on every replica."""
        alpha, beta = system.host("alpha"), system.host("beta")
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().create("clash").write(0, b"from alpha")
        beta.root().create("clash").write(0, b"from beta")
        system.heal()
        system.reconcile_everything()
        system.host("alpha").propagation_daemon.tick()
        system.host("beta").propagation_daemon.tick()
        names_a = [e.name for e in alpha.root().readdir()]
        names_b = [e.name for e in beta.root().readdir()]
        assert names_a == names_b
        assert len([n for n in names_a if n.startswith("clash")]) == 2
        contents = {
            alpha.root().lookup(n).read_all() for n in names_a if n.startswith("clash")
        }
        assert contents == {b"from alpha", b"from beta"}

    def test_concurrent_rename_of_directory_keeps_both_names(self, system):
        """Paper footnote 3: 'When non-communicating directory replicas are
        concurrently given new names, it is often later necessary to
        retain multiple names.'"""
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().mkdir("project")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().rename("project", alpha.root(), "project-alpha")
        beta.root().rename("project", beta.root(), "project-beta")
        system.heal()
        system.reconcile_everything()
        names = [e.name for e in alpha.root().readdir()]
        assert "project-alpha" in names and "project-beta" in names
        assert "project" not in names
        # and both names reach the SAME directory
        a = alpha.root().lookup("project-alpha")
        b = alpha.root().lookup("project-beta")
        assert a.fh == b.fh

    def test_concurrent_rename_to_same_name_resolves_duplicate(self, system):
        """The cross-host rename bug.  A rename is insert(new entry id) +
        remove(old one), so when both replicas rename the same file to the
        same name while apart, the merge sees two unknown live inserts
        with identical (name, fh) and used to keep both — a permanent
        spurious ``n2#<eid>`` alias that no later operation ever removed.
        Reconciliation must recognize the pair as one user-level operation
        and keep only the lowest entry id, identically on every replica."""
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("n1").write(0, b"payload")
        system.reconcile_everything()
        beta.propagation_daemon.tick()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().rename("n1", alpha.root(), "n2")
        beta.root().rename("n1", beta.root(), "n2")
        system.heal()
        system.reconcile_everything()
        for host_name in ("alpha", "beta"):
            store = store_of(system, host_name)
            live = [e for e in store.read_entries(store.root_handle()) if e.live]
            assert [e.name for e in live] == ["n2"], f"{host_name}: {live}"
        assert alpha.root().lookup("n2").read_all() == b"payload"
        assert beta.root().lookup("n2").read_all() == b"payload"
        # not just converged views: the very same entry id survived everywhere
        def live_entries(host_name):
            store = store_of(system, host_name)
            return [e for e in store.read_entries(store.root_handle()) if e.live]

        assert live_entries("alpha")[0].eid == live_entries("beta")[0].eid

    def test_duplicate_resolution_is_counted_and_symmetric(self, system):
        """Each side resolves the duplicate in its own merge pass and
        reports it, so experiments can see the repair happen."""
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("doc").write(0, b"v1")
        system.reconcile_everything()
        beta.propagation_daemon.tick()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().rename("doc", alpha.root(), "final")
        beta.root().rename("doc", beta.root(), "final")
        system.heal()
        alpha_store = store_of(system, "alpha")
        beta_store = store_of(system, "beta")
        result_b = reconcile_directory(
            beta.physical,
            beta_store,
            beta_store.root_handle(),
            remote_root_vnode(system, "beta", "alpha"),
        )
        assert result_b.duplicates_resolved == 1
        assert result_b.changed
        result_a = reconcile_directory(
            alpha.physical,
            alpha_store,
            alpha_store.root_handle(),
            remote_root_vnode(system, "alpha", "beta"),
        )
        # beta's merge already picked the winner, so alpha receives the
        # resolution as an ordinary tombstone instead of re-deriving it
        assert result_a.duplicates_resolved == 0
        assert result_a.changed
        live_a = [e for e in alpha_store.read_entries(alpha_store.root_handle()) if e.live]
        assert [e.name for e in live_a] == ["final"]
        # a second pass has nothing left to resolve
        again = reconcile_directory(
            beta.physical,
            beta_store,
            beta_store.root_handle(),
            remote_root_vnode(system, "beta", "alpha"),
        )
        assert again.duplicates_resolved == 0

    def test_duplicate_resolution_reaches_third_replica(self):
        """A replica that never merged the duplicate itself learns the
        resolution through ordinary tombstone propagation."""
        system = FicusSystem(["alpha", "beta", "gamma"], daemon_config=QUIET)
        alpha = system.host("alpha")
        alpha.root().create("n1").write(0, b"payload")
        system.reconcile_everything(rounds=3)
        system.partition([{"alpha"}, {"beta"}, {"gamma"}])
        system.host("alpha").root().rename("n1", system.host("alpha").root(), "n2")
        system.host("beta").root().rename("n1", system.host("beta").root(), "n2")
        system.heal()
        system.reconcile_everything(rounds=4)
        for host_name in ("alpha", "beta", "gamma"):
            store = next(iter(system.host(host_name).physical.stores.values()))
            live = [e for e in store.read_entries(store.root_handle()) if e.live]
            assert [e.name for e in live] == ["n2"], f"{host_name}: {live}"

    def test_dir_vvs_merge_after_recon(self, system):
        alpha = system.host("alpha")
        alpha.root().create("x")
        beta_store = store_of(system, "beta")
        alpha_store = store_of(system, "alpha")
        remote = remote_root_vnode(system, "beta", "alpha")
        reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        beta_vv = beta_store.read_dir_aux(beta_store.root_handle()).vv
        alpha_vv = alpha_store.read_dir_aux(alpha_store.root_handle()).vv
        assert beta_vv.dominates(alpha_vv)


class TestSubtreeRecon:
    def test_subtree_covers_nested_directories(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        d = alpha.root().mkdir("a")
        e = d.mkdir("b")
        e.create("deep.txt").write(0, b"deep contents")
        result = reconcile_subtree(
            beta.physical,
            volrep_of(system, "beta"),
            remote_root_vnode(system, "beta", "alpha"),
            "alpha",
            conflict_log=beta.conflict_log,
        )
        assert result.directories_reconciled == 3
        assert result.files_pulled == 1
        assert beta.root().walk("a/b/deep.txt").read_all() == b"deep contents"

    def test_subtree_reports_file_conflicts(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("f").write(0, b"base")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().lookup("f").write(0, b"A")
        beta.root().lookup("f").write(0, b"B")
        system.heal()
        result = reconcile_subtree(
            beta.physical,
            volrep_of(system, "beta"),
            remote_root_vnode(system, "beta", "alpha"),
            "alpha",
            conflict_log=beta.conflict_log,
        )
        assert result.file_conflicts == 1
        reports = beta.conflict_log.unresolved()
        assert len(reports) == 1
        assert reports[0].kind is ConflictKind.FILE_UPDATE
        assert reports[0].name == "f"

    def test_subtree_aborts_cleanly_on_partition(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().mkdir("d").create("f")
        # grab the remote root while reachable, then partition mid-run
        remote = remote_root_vnode(system, "beta", "alpha")
        system.partition([{"alpha"}, {"beta"}])
        result = reconcile_subtree(
            beta.physical, volrep_of(system, "beta"), remote, "alpha"
        )
        assert result.aborted_by_partition
        assert result.directories_reconciled == 0
        # healing lets the next periodic run finish the job
        system.heal()
        result = reconcile_subtree(
            beta.physical, volrep_of(system, "beta"), remote, "alpha"
        )
        assert result.directories_reconciled >= 2
        assert beta.root().walk("d").readdir()

    def test_convergence_all_replicas_identical(self, system):
        """The convergence invariant: after mutual reconciliation the
        directory trees and file contents agree everywhere."""
        alpha, beta = system.host("alpha"), system.host("beta")
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().mkdir("docs").create("a.txt").write(0, b"AAA")
        beta.root().mkdir("pics").create("b.png").write(0, b"BBB")
        system.heal()
        system.reconcile_everything()
        fs_a = system.host("alpha").fs()
        fs_b = system.host("beta").fs()
        tree_a = sorted(fs_a.walk_tree())
        tree_b = sorted(fs_b.walk_tree())
        assert tree_a == tree_b
        for path in tree_a:
            if fs_a.stat(path).is_file:
                assert fs_a.read_file(path) == fs_b.read_file(path)


class TestConflictResolution:
    def test_resolution_dominates_and_propagates(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("f").write(0, b"base")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().lookup("f").write(0, b"A")
        beta.root().lookup("f").write(0, b"B")
        system.heal()
        reconcile_subtree(
            beta.physical,
            volrep_of(system, "beta"),
            remote_root_vnode(system, "beta", "alpha"),
            "alpha",
            conflict_log=beta.conflict_log,
        )
        report = beta.conflict_log.unresolved()[0]
        beta_store = store_of(system, "beta")
        resolved_vv = resolve_file_conflict(
            beta_store,
            report.parent_fh,
            report.fh,
            b"merged by owner",
            [report.local_vv, report.remote_vv],
            beta.conflict_log,
        )
        assert resolved_vv.strictly_dominates(report.local_vv)
        assert resolved_vv.strictly_dominates(report.remote_vv)
        assert not beta.conflict_log.unresolved()
        system.reconcile_everything()
        assert alpha.root().lookup("f").read_all() == b"merged by owner"

    def test_duplicate_reports_deduplicated(self, system):
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.root().create("f").write(0, b"base")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}])
        alpha.root().lookup("f").write(0, b"A")
        beta.root().lookup("f").write(0, b"B")
        system.heal()
        for _ in range(3):  # periodic recon keeps finding the same conflict
            reconcile_subtree(
                beta.physical,
                volrep_of(system, "beta"),
                remote_root_vnode(system, "beta", "alpha"),
                "alpha",
                conflict_log=beta.conflict_log,
            )
        assert len(beta.conflict_log.unresolved()) == 1
