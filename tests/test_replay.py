"""Tests for the trace format and replay harness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.sim import DaemonConfig, FicusSystem
from repro.workload import (
    TraceOp,
    decode_trace,
    encode_trace,
    replay_trace,
    synthesize_trace,
)

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestTraceFormat:
    def test_round_trip_all_op_kinds(self):
        ops = [
            TraceOp(at=0.5, op="mkdir", host="a", path="/d"),
            TraceOp(at=1.0, op="write", host="a", path="/d/f", data=b"\x00binary\xff"),
            TraceOp(at=2.0, op="read", host="b", path="/d/f"),
            TraceOp(at=3.0, op="rename", host="a", path="/d/f", path2="/d/g"),
            TraceOp(at=4.0, op="symlink", host="a", path="/lnk", path2="/d/g"),
            TraceOp(at=5.0, op="partition", groups=(frozenset({"a"}), frozenset({"b"}))),
            TraceOp(at=6.0, op="heal"),
            TraceOp(at=7.0, op="unlink", host="b", path="/lnk"),
        ]
        assert decode_trace(encode_trace(ops)) == ops

    def test_unknown_op_rejected(self):
        with pytest.raises(InvalidArgument):
            decode_trace("t=1.0 op=frobnicate")

    def test_out_of_order_rejected(self):
        text = encode_trace(
            [TraceOp(at=5.0, op="heal"), TraceOp(at=1.0, op="heal")]
        )
        with pytest.raises(InvalidArgument):
            decode_trace(text)

    def test_blank_lines_skipped(self):
        text = "\n" + TraceOp(at=1.0, op="heal").encode() + "\n\n"
        assert len(decode_trace(text)) == 1

    @given(st.binary(max_size=200), st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=20
    ))
    def test_payloads_round_trip(self, data, name):
        op = TraceOp(at=1.0, op="write", host="h", path="/" + name, data=data)
        assert TraceOp.decode(op.encode()) == op


class TestReplay:
    def test_simple_replay(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        ops = [
            TraceOp(at=1.0, op="mkdir", host="a", path="/docs"),
            TraceOp(at=2.0, op="write", host="a", path="/docs/f", data=b"traced"),
            TraceOp(at=3.0, op="read", host="b", path="/docs/f"),
        ]
        result = replay_trace(system, ops)
        assert result.applied == 3 and result.failed == 0
        assert result.reads == 1 and result.read_bytes == 6
        assert system.clock.now() >= 3.0

    def test_partition_events_drive_network(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        ops = [
            TraceOp(at=1.0, op="write", host="a", path="/f", data=b"x"),
            TraceOp(at=2.0, op="partition", groups=(frozenset({"a"}), frozenset({"b"}))),
            TraceOp(at=3.0, op="read", host="b", path="/f"),  # fails: b has no copy
            TraceOp(at=4.0, op="heal"),
            TraceOp(at=5.0, op="read", host="b", path="/f"),  # works again
        ]
        result = replay_trace(system, ops)
        assert result.failed == 1
        # during the partition b sees only its own (empty, unreconciled)
        # replica: the name is simply not there
        assert "FileNotFound" in result.failures[0][1]
        assert result.reads == 1

    def test_strict_mode_raises(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        ops = [TraceOp(at=1.0, op="read", host="a", path="/missing")]
        with pytest.raises(Exception):
            replay_trace(system, ops, strict=True)

    def test_replay_runs_daemons_between_ops(self):
        config = DaemonConfig(propagation_period=2.0, recon_period=None, graft_prune_period=None)
        system = FicusSystem(["a", "b"], daemon_config=config)
        ops = [
            TraceOp(at=1.0, op="write", host="a", path="/f", data=b"x"),
            TraceOp(at=10.0, op="partition", groups=(frozenset({"a"}), frozenset({"b"}))),
            # daemons ran during the 9 virtual seconds: b has its own copy
            TraceOp(at=11.0, op="read", host="b", path="/f"),
        ]
        result = replay_trace(system, ops)
        assert result.failed == 0

    def test_synthesized_trace_replays_clean(self):
        system = FicusSystem(["a", "b", "c"])
        ops = synthesize_trace(["a", "b", "c"], duration=300.0, seed=3)
        assert len(ops) > 50
        result = replay_trace(system, ops)
        # reads may fail during partitions; writes at reachable replicas
        # always succeed (one-copy availability)
        assert result.applied > result.failed
        system.heal()
        system.reconcile_everything()
        trees = [sorted(system.host(n).fs().walk_tree()) for n in ["a", "b", "c"]]
        assert trees[0] == trees[1] == trees[2]

    def test_synthesized_trace_deterministic(self):
        t1 = synthesize_trace(["a", "b"], duration=100.0, seed=9)
        t2 = synthesize_trace(["a", "b"], duration=100.0, seed=9)
        assert encode_trace(t1) == encode_trace(t2)
