"""Tests for the physical-layer integrity checker and its use as an
oracle after complex operation sequences."""

import random


from repro.errors import FicusError
from repro.physical import ficus_fsck
from repro.sim import DaemonConfig, FicusSystem
from repro.ufs import fsck

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def check_host(system, host_name):
    host = system.host(host_name)
    reports = []
    for volrep, store in host.physical.stores.items():
        reports.append((volrep, ficus_fsck(store)))
    return reports


def assert_all_clean(system):
    for name in system.hosts:
        for volrep, report in check_host(system, name):
            assert report.clean, f"{name}/{volrep}: {report.problems}"
        assert fsck(system.host(name).ufs).clean


class TestCleanStates:
    def test_fresh_system_is_clean(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        assert_all_clean(system)

    def test_clean_after_namespace_churn(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs = system.host("a").fs()
        fs.makedirs("/x/y")
        fs.write_file("/x/y/f", b"1")
        fs.link("/x/y/f", "/x/alias")
        fs.rename("/x/y/f", "/x/moved")
        fs.unlink("/x/alias")
        fs.symlink("/x/moved", "/lnk")
        assert_all_clean(system)

    def test_clean_after_recon_convergence(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}, {"c"}])
        for name in ["a", "b", "c"]:
            fsx = system.host(name).fs()
            fsx.write_file(f"/{name}.txt", name.encode())
            fsx.mkdir(f"/{name}-dir")
        system.heal()
        system.reconcile_everything(rounds=4)
        for host in system.hosts.values():
            host.propagation_daemon.tick()
        assert_all_clean(system)

    def test_entry_awaiting_contents_is_not_a_problem(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        # reconcile directories only (no propagation tick): b has the
        # entry without contents
        b = system.host("b")
        b.recon_daemon.tick()
        volrep = next(l.volrep for l in system.root_locations if l.host == "b")
        report = ficus_fsck(b.physical.store_for(volrep))
        assert report.clean
        # contents may or may not have been pulled by the subtree pass;
        # either way the structure must be consistent
        assert report.entries_awaiting_contents in (0, 1)

    def test_clean_after_crash_and_restart(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs = system.host("a").fs()
        fs.write_file("/f", b"x")
        system.reconcile_everything()
        system.host("a").crash()
        system.host("a").restart(system)
        assert_all_clean(system)


class TestDetectsCorruption:
    def test_stray_object_detected(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        store = host.physical.store_for(system.root_locations[0].volrep)
        # plant a stray file in the root's unix directory
        store.dir_unix_vnode(store.root_handle()).create("not-a-ficus-name")
        report = ficus_fsck(store)
        assert not report.clean
        assert any("unrecognized" in p for p in report.problems)

    def test_mint_regression_detected(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        for i in range(3):
            fs.write_file(f"/f{i}", b"x")
        store = host.physical.store_for(system.root_locations[0].volrep)
        meta = store._read_meta()
        meta["next_unique"] = "1"  # simulate lost counter state
        store._write_meta(meta)
        report = ficus_fsck(store)
        assert any("mint behind" in p for p in report.problems)

    def test_duplicate_live_name_fh_detected(self):
        """Two live entries naming the same file under the same name is
        the merge artifact of the cross-host same-name rename bug; the
        checker must flag it if reconciliation ever lets one persist."""
        from repro.physical.wire import DirectoryEntry, EntryId

        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        host.fs().write_file("/f", b"x")
        store = host.physical.store_for(system.root_locations[0].volrep)
        entries = store.read_entries(store.root_handle())
        original = next(e for e in entries if e.name == "f")
        clone = DirectoryEntry(
            eid=EntryId(original.eid.replica_id + 1, 1),
            name=original.name,
            fh=original.fh,
            etype=original.etype,
        )
        store.write_entries(store.root_handle(), entries + [clone])
        report = ficus_fsck(store)
        assert any("duplicate live entry" in p for p in report.problems)

    def test_refcount_mismatch_detected(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        host = system.host("solo")
        fs = host.fs()
        fs.mkdir("/d")
        store = host.physical.store_for(system.root_locations[0].volrep)
        entries = store.read_entries(store.root_handle())
        dfh = next(e.fh for e in entries if e.name == "d")
        aux = store.read_dir_aux(dfh)
        aux.refs = 5
        store.write_dir_aux(dfh, aux)
        report = ficus_fsck(store)
        assert any("refs=5" in p for p in report.problems)


class TestRandomizedOracle:
    def test_random_cluster_workload_stays_clean(self):
        """The soak: random ops, partitions, daemons, restarts — the
        structural invariants must hold at every host throughout."""
        rng = random.Random(20260704)
        system = FicusSystem(
            ["a", "b", "c"],
            daemon_config=DaemonConfig(
                propagation_period=5.0, recon_period=25.0, graft_prune_period=None
            ),
        )
        hosts = list(system.hosts)
        paths: list[str] = []
        for step in range(80):
            roll = rng.random()
            actor = system.host(rng.choice(hosts))
            try:
                if roll < 0.30:
                    path = f"/file{step}"
                    actor.fs().write_file(path, rng.randbytes(rng.randint(0, 2000)))
                    paths.append(path)
                elif roll < 0.45 and paths:
                    actor.fs().write_file(rng.choice(paths), b"rewrite")
                elif roll < 0.55 and paths:
                    victim = rng.choice(paths)
                    actor.fs().unlink(victim)
                    paths.remove(victim)
                elif roll < 0.65:
                    actor.fs().mkdir(f"/dir{step}")
                elif roll < 0.75:
                    if rng.random() < 0.5:
                        system.heal()
                    else:
                        cut = rng.randint(1, 2)
                        shuffled = hosts[:]
                        rng.shuffle(shuffled)
                        system.partition([set(shuffled[:cut]), set(shuffled[cut:])])
                elif roll < 0.82:
                    name = rng.choice(hosts)
                    system.host(name).crash()
                    system.host(name).restart(system)
                else:
                    system.run_for(rng.uniform(1.0, 30.0))
            except FicusError:
                pass  # partitions legitimately fail some ops
        system.heal()
        system.run_for(120.0)
        system.reconcile_everything(rounds=4)
        assert_all_clean(system)
