"""Tests for the simulation harness: event loop, daemons, cluster."""

import pytest

from repro.errors import InvalidArgument
from repro.sim import DaemonConfig, EventLoop, FicusSystem
from repro.util import VirtualClock

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        clock = VirtualClock()
        loop = EventLoop(clock)
        fired = []
        loop.schedule(5.0, lambda: fired.append("late"))
        loop.schedule(1.0, lambda: fired.append("early"))
        loop.run_until(10.0)
        assert fired == ["early", "late"]
        assert clock.now() == 10.0

    def test_ties_fire_in_insertion_order(self):
        loop = EventLoop(VirtualClock())
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(1.0, lambda: fired.append(2))
        loop.run_for(2.0)
        assert fired == [1, 2]

    def test_run_until_leaves_future_events(self):
        loop = EventLoop(VirtualClock())
        fired = []
        loop.schedule(5.0, lambda: fired.append("x"))
        loop.run_until(3.0)
        assert not fired and loop.pending == 1
        loop.run_until(6.0)
        assert fired == ["x"]

    def test_clock_advances_to_event_time(self):
        clock = VirtualClock()
        loop = EventLoop(clock)
        seen = []
        loop.schedule(2.5, lambda: seen.append(clock.now()))
        loop.run_for(5.0)
        assert seen == [2.5]

    def test_periodic_scheduling(self):
        loop = EventLoop(VirtualClock())
        count = []
        cancel = loop.schedule_every(1.0, lambda: count.append(1))
        loop.run_for(5.5)
        assert len(count) == 5
        cancel()
        loop.run_for(5.0)
        assert len(count) == 5

    def test_events_scheduled_by_events(self):
        loop = EventLoop(VirtualClock())
        fired = []

        def chain():
            fired.append(loop.clock.now())
            if len(fired) < 3:
                loop.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        loop.run_for(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop(VirtualClock())
        with pytest.raises(InvalidArgument):
            loop.schedule(-1.0, lambda: None)
        with pytest.raises(InvalidArgument):
            loop.schedule_every(0.0, lambda: None)


class TestPropagationDaemon:
    def test_notification_then_pull(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").root().create("f").write(0, b"payload")
        assert system.host("b").physical.new_version_cache_size > 0
        system.host("b").propagation_daemon.tick()
        assert system.host("b").physical.new_version_cache_size == 0
        assert system.host("b").root().readdir()[0].name == "f"

    def test_min_age_delays_propagation(self):
        config = DaemonConfig(
            propagation_period=None, recon_period=None, graft_prune_period=None,
            propagation_min_age=30.0,
        )
        system = FicusSystem(["a", "b"], daemon_config=config)
        system.host("a").root().create("f").write(0, b"x")
        b = system.host("b")
        b.propagation_daemon.tick()
        assert b.physical.new_version_cache_size == 1  # too fresh to pull
        system.clock.advance(31.0)
        b.propagation_daemon.tick()
        assert b.physical.new_version_cache_size == 0

    def test_burst_coalesced_by_delay(self):
        """Delayed propagation turns a k-write burst into one pull."""
        config = DaemonConfig(
            propagation_period=None, recon_period=None, graft_prune_period=None,
            propagation_min_age=10.0,
        )
        system = FicusSystem(["a", "b"], daemon_config=config)
        f = system.host("a").root().create("f")
        b = system.host("b")
        b.propagation_daemon.tick()  # absorb the create notification
        for i in range(5):  # a burst of five writes
            f.write(i, b"x")
            system.clock.advance(0.1)
        system.clock.advance(11.0)
        before = b.propagation_daemon.stats.pulls_succeeded
        b.propagation_daemon.tick()
        assert b.propagation_daemon.stats.pulls_succeeded - before <= 1

    def test_unreachable_source_retried_later(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").root().create("f").write(0, b"x")
        system.partition([{"a"}, {"b"}])
        b = system.host("b")
        b.propagation_daemon.tick()
        assert b.physical.new_version_cache_size == 1  # still pending
        system.heal()
        b.propagation_daemon.tick()
        assert b.physical.new_version_cache_size == 0


class TestReconciliationDaemon:
    def test_ring_rotation_covers_all_peers(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").root().create("f").write(0, b"x")
        # b reconciles against its ring peers over successive ticks
        b = system.host("b")
        b.recon_daemon.tick()
        b.recon_daemon.tick()
        assert b.recon_daemon.stats.runs == 2
        assert b.root().lookup("f").read_all() == b"x"

    def test_partition_logged_not_fatal(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}])
        b = system.host("b")
        results = b.recon_daemon.tick()
        assert all(r.aborted_by_partition for r in results)


class TestFicusSystemScheduling:
    def test_daemons_run_automatically(self):
        system = FicusSystem(["a", "b"], daemon_config=DaemonConfig(
            propagation_period=5.0, recon_period=30.0, graft_prune_period=None,
        ))
        system.host("a").root().create("f").write(0, b"auto")
        system.run_for(61.0)
        assert system.host("b").root().lookup("f").read_all() == b"auto"

    def test_selective_root_volume_placement(self):
        system = FicusSystem(["a", "b", "c"], root_volume_hosts=["a", "b"], daemon_config=QUIET)
        assert len(system.root_locations) == 2
        # host c stores no replica but can still use the file system
        system.host("c").root().create("from-c").write(0, b"remote-only host")
        assert system.host("a").root().lookup("from-c").read_all() == b"remote-only host"

    def test_empty_host_list_rejected(self):
        with pytest.raises(InvalidArgument):
            FicusSystem([])

    def test_disk_contents_differ_per_host(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").root().create("f").write(0, b"x" * 10000)
        assert system.host("a").device.blocks_in_use != system.host("b").device.blocks_in_use
