"""Tests for the Section-5 development methodology helpers."""


from repro.devel import build_switchable, externalize, measure_crossing_penalty
from repro.net import Network
from repro.nfs import NfsClientLayer
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import UfsLayer


def ufs_factory():
    return UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=128))


class TestExternalize:
    def test_behaviour_identical_across_modes(self):
        """The 'switch': the same op sequence gives the same results
        whether the layer runs in-kernel or at application level."""
        results = []
        for user_level in (False, True):
            layer = build_switchable(ufs_factory, user_level)
            root = layer.root()
            d = root.mkdir("dir")
            d.create("f").write(0, b"mode-independent")
            results.append(
                (
                    root.walk("dir/f").read_all(),
                    sorted(e.name for e in d.readdir() if e.name not in (".", "..")),
                )
            )
        assert results[0] == results[1]

    def test_externalized_layer_is_nfs_backed(self):
        layer = externalize(ufs_factory(), Network(), name="x")
        assert isinstance(layer, NfsClientLayer)

    def test_reuses_hosts_on_repeat_externalization(self):
        net = Network()
        externalize(ufs_factory(), net, name="same")
        externalize(ufs_factory(), net, name="same")  # must not raise

    def test_ficus_physical_layer_runs_at_user_level(self):
        """The actual Section-5 use case: develop the *Ficus* layers
        outside the kernel."""
        from repro.physical import EntryType, FicusPhysicalLayer, op_insert
        from repro.util import VolumeId, VolumeReplicaId

        def phys_factory():
            phys = FicusPhysicalLayer(ufs_factory(), "dev-host")
            phys.create_volume_replica(VolumeReplicaId(VolumeId(1, 1), 1))
            return phys

        layer = build_switchable(phys_factory, user_level=True, name="phys")
        volroot = layer.root().lookup(VolumeReplicaId(VolumeId(1, 1), 1).to_hex())
        f = volroot.create(op_insert(None, "devfile", None, EntryType.FILE))
        f.write(0, b"developed at user level")
        assert volroot.lookup("devfile").read_all() == b"developed at user level"


class TestCrossingPenalty:
    def test_user_level_costs_more(self):
        """'The performance penalty for crossing address space boundaries
        complicates performance measurements' — there must BE a penalty."""
        penalty = measure_crossing_penalty(ufs_factory, ops=300)
        assert penalty.user_seconds_per_op > penalty.kernel_seconds_per_op
        assert penalty.factor > 1.0

    def test_penalty_is_bounded(self):
        """...but the methodology is usable: within a couple orders of
        magnitude, not a cliff."""
        penalty = measure_crossing_penalty(ufs_factory, ops=300)
        assert penalty.factor < 1000
