"""End-to-end scenarios exercising the whole stack at once.

These are the behaviours the paper's abstract promises, driven through the
public API over multi-host clusters with partitions, daemons, and healing.
"""

import random


from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def converged_views(system):
    """Every host's (tree, contents) view; equal views = convergence."""
    views = []
    for host in system.hosts.values():
        fs = host.fs()
        tree = sorted(fs.walk_tree())
        contents = {}
        for path in tree:
            if fs.stat(path).is_file:
                contents[path] = fs.read_file(path)
        views.append((tree, contents))
    return views


class TestUpdateAnywhere:
    def test_update_during_partition_any_single_copy(self):
        """The headline behaviour: 'permits update during network
        partition if any copy of a file is accessible'."""
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/doc", b"v0")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}, {"c"}])  # total fragmentation
        for name in ["a", "b", "c"]:
            fs = system.host(name).fs()
            fs.write_file(f"/only-{name}", f"written at {name}".encode())
            assert fs.read_file(f"/only-{name}") == f"written at {name}".encode()

    def test_all_partition_era_files_survive_healing(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}, {"c"}])
        for name in ["a", "b", "c"]:
            system.host(name).fs().write_file(f"/from-{name}", name.encode())
        system.heal()
        system.reconcile_everything()
        for reader in ["a", "b", "c"]:
            fs = system.host(reader).fs()
            for writer in ["a", "b", "c"]:
                assert fs.read_file(f"/from-{writer}") == writer.encode()


class TestConvergence:
    def test_randomized_partitioned_workload_converges(self):
        """Convergence invariant under a random mix of creates, writes,
        removes, mkdirs and partitions (seeded, deterministic)."""
        rng = random.Random(1234)
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        hosts = list(system.hosts)
        created: list[str] = []
        for step in range(60):
            if rng.random() < 0.15:
                # random partition or heal
                if rng.random() < 0.5:
                    system.heal()
                    system.reconcile_everything()
                else:
                    shuffled = hosts[:]
                    rng.shuffle(shuffled)
                    cut = rng.randint(1, len(shuffled) - 1)
                    system.partition([set(shuffled[:cut]), set(shuffled[cut:])])
            actor = system.host(rng.choice(hosts)).fs()
            op = rng.random()
            try:
                if op < 0.4:
                    path = f"/f{step}"
                    actor.write_file(path, f"step {step}".encode())
                    created.append(path)
                elif op < 0.6 and created:
                    actor.write_file(rng.choice(created), f"rewrite {step}".encode())
                elif op < 0.75 and created:
                    victim = rng.choice(created)
                    actor.unlink(victim)
                    created.remove(victim)
                else:
                    actor.mkdir(f"/d{step}")
            except Exception:
                # unreachable replicas / names trimmed by another side are
                # acceptable; optimistic operation continues
                pass
        system.heal()
        system.reconcile_everything(rounds=6)
        # resolve any file conflicts deterministically so contents converge
        for host in system.hosts.values():
            for report in host.conflict_log.unresolved():
                from repro.recon import resolve_file_conflict

                volrep = next(
                    loc.volrep for loc in system.root_locations if loc.host == host.name
                )
                store = host.physical.store_for(volrep)
                try:
                    contents = store.file_vnode(report.parent_fh, report.fh).read_all()
                except Exception:
                    continue
                resolve_file_conflict(
                    store, report.parent_fh, report.fh, contents,
                    [report.local_vv, report.remote_vv], host.conflict_log,
                )
        system.reconcile_everything(rounds=6)
        views = converged_views(system)
        assert views[0][0] == views[1][0] == views[2][0], "trees diverged"
        assert views[0][1] == views[1][1] == views[2][1], "contents diverged"

    def test_no_lost_updates(self):
        """After a conflicting pair, NEITHER version is overwritten: each
        replica keeps its own version until the owner resolves, and the
        conflict is reported.  (The logical read is deterministic — both
        hosts see the same maximal candidate — but no data is lost.)"""
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs_a, fs_b = system.host("a").fs(), system.host("b").fs()
        fs_a.write_file("/f", b"base")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        fs_a.write_file("/f", b"alpha version")
        fs_b.write_file("/f", b"beta version")
        system.heal()
        system.reconcile_everything()
        stored = set()
        for name in ["a", "b"]:
            host = system.host(name)
            volrep = next(l.volrep for l in system.root_locations if l.host == name)
            store = host.physical.store_for(volrep)
            fh = next(
                e.fh for e in store.read_entries(store.root_handle()) if e.name == "f"
            )
            stored.add(store.file_vnode(store.root_handle(), fh).read_all())
        assert stored == {b"alpha version", b"beta version"}
        assert system.total_conflicts() > 0
        # both hosts present the SAME deterministic logical view
        assert system.host("a").fs().read_file("/f") == system.host("b").fs().read_file("/f")


class TestDaemonDrivenOperation:
    def test_steady_state_with_all_daemons(self):
        config = DaemonConfig(
            propagation_period=5.0, propagation_min_age=0.0,
            recon_period=30.0, graft_prune_period=120.0, graft_idle_timeout=600.0,
        )
        system = FicusSystem(["a", "b", "c"], daemon_config=config)
        fs_a = system.host("a").fs()
        for i in range(5):
            fs_a.write_file(f"/file{i}", f"gen {i}".encode())
            system.run_for(7.0)
        system.run_for(120.0)
        for name in ["b", "c"]:
            fs = system.host(name).fs()
            for i in range(5):
                assert fs.read_file(f"/file{i}") == f"gen {i}".encode()

    def test_partition_heals_without_intervention(self):
        config = DaemonConfig(propagation_period=5.0, recon_period=20.0, graft_prune_period=None)
        system = FicusSystem(["a", "b"], daemon_config=config)
        system.host("a").fs().write_file("/f", b"v0")
        system.run_for(30.0)
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/g", b"made during partition")
        system.run_for(60.0)
        system.heal()
        system.run_for(60.0)  # periodic recon picks it up, no manual calls
        assert system.host("b").fs().read_file("/g") == b"made during partition"


class TestVolumeScenarios:
    def test_project_volume_shared_across_hosts(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        volume, locations = system.create_volume(["b", "c"])
        a = system.host("a")
        a.logical.create_graft_point(a.root(), "proj", volume, locations)
        system.reconcile_everything()
        fs_a = system.host("a").fs()
        fs_b = system.host("b").fs()
        fs_a.write_file("/proj/design.md", b"# plan")
        assert fs_b.read_file("/proj/design.md") == b"# plan"

    def test_volume_updates_survive_one_replica_loss(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        volume, locations = system.create_volume(["b", "c"])
        a = system.host("a")
        a.logical.create_graft_point(a.root(), "proj", volume, locations)
        fs_a = a.fs()
        fs_a.write_file("/proj/f", b"both replicas up")
        # replicate within the project volume
        b_loc = next(l for l in locations if l.host == "b")
        c_loc = next(l for l in locations if l.host == "c")
        from repro.recon import reconcile_subtree

        remote = system.host("c").fabric.volume_root(b_loc.host, b_loc.volrep)
        reconcile_subtree(system.host("c").physical, c_loc.volrep, remote, "b")
        system.network.set_host_up("b", False)
        a.logical.grafter.ungraft(volume)
        assert fs_a.read_file("/proj/f") == b"both replicas up"
        fs_a.write_file("/proj/g", b"written with b down")
        assert fs_a.read_file("/proj/g") == b"written with b down"
