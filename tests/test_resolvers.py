"""The automatic conflict-resolution subsystem.

Three layers of coverage: the resolvers as pure semilattice joins
(commutative/associative/idempotent, the determinism contract), the
registry's tag selection, and the full reconciliation path — divergent
replicas healing into byte-identical contents with the conflict log
staying clean for covered types.
"""

import pytest

from repro.physical import ficus_fsck
from repro.recon.conflicts import ConflictKind, ConflictReport
from repro.resolvers import (
    AppendLogResolver,
    ConflictPair,
    KeyValueResolver,
    LwwBlobResolver,
    ResolverError,
    ResolverRegistry,
    ThreeWayBlockResolver,
    default_registry,
)
from repro.sim import DaemonConfig, FicusSystem
from repro.vv import VersionVector

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

VV_A = VersionVector({1: 2})
VV_B = VersionVector({1: 1, 2: 1})


def pair(local: bytes, remote: bytes, ancestor=None) -> ConflictPair:
    return ConflictPair(
        local=local,
        remote=remote,
        local_vv=VV_A,
        remote_vv=VV_B,
        local_ancestor=ancestor,
        remote_ancestor=ancestor,
    )


def store_bytes(system, host_name: str, name: str) -> list[bytes]:
    """Every stored replica's raw bytes for one file name, per store."""
    out = []
    host = system.host(host_name)
    for store in host.physical.stores.values():
        for dir_fh in store.all_directory_handles():
            for entry in store.read_entries(dir_fh):
                if entry.live and entry.name == name and store.has_file(dir_fh, entry.fh):
                    out.append(store.file_vnode(dir_fh, entry.fh).read_all())
    return out


def find_file(store, name: str):
    for dir_fh in store.all_directory_handles():
        for entry in store.read_entries(dir_fh):
            if entry.live and entry.name == name:
                return dir_fh, entry.fh
    raise AssertionError(f"{name} not stored")


def resolver_system(host_names=("a", "b")):
    system = FicusSystem(list(host_names), daemon_config=QUIET)
    system.enable_resolvers()
    return system


def seed_and_sync(system, path: str, contents: bytes) -> None:
    """Write on the first host, then converge so ancestors are retained."""
    first = sorted(system.hosts)[0]
    system.host(first).fs().write_file(path, contents)
    system.reconcile_everything()
    for name in system.hosts:
        system.host(name).propagation_daemon.tick()
    system.reconcile_everything()  # the converged pass refreshes ancestors


class TestAppendLogResolver:
    r = AppendLogResolver()

    def test_union_of_records(self):
        merged = self.r.merge(pair(b"seed\nalpha\n", b"seed\nbravo\n"))
        assert merged == b"alpha\nbravo\nseed\n"

    def test_commutative(self):
        assert self.r.merge(pair(b"x\ny\n", b"z\n")) == self.r.merge(pair(b"z\n", b"x\ny\n"))

    def test_associative_with_duplicate_lines(self):
        # the counterexample that kills prefix-preserving merges: a
        # repeated record must not make the cascade order observable
        a, b, c = b"x\nx\n", b"x\ny\n", b"y\n"
        left = self.r.merge(pair(self.r.merge(pair(a, b)), c))
        right = self.r.merge(pair(a, self.r.merge(pair(b, c))))
        assert left == right

    def test_idempotent(self):
        once = self.r.merge(pair(b"b\na\n", b"c\n"))
        assert self.r.merge(pair(once, once)) == once

    def test_empty_sides(self):
        assert self.r.merge(pair(b"", b"")) == b""
        assert self.r.merge(pair(b"", b"only\n")) == b"only\n"


class TestKeyValueResolver:
    r = KeyValueResolver()

    def test_per_key_union(self):
        merged = self.r.merge(pair(b"x=1\ny=2\n", b"x=1\nz=3\n"))
        assert merged == b"x=1\ny=2\nz=3\n"

    def test_both_changed_key_takes_max(self):
        merged = self.r.merge(pair(b"x=apple\n", b"x=zebra\n"))
        assert merged == b"x=zebra\n"
        assert merged == self.r.merge(pair(b"x=zebra\n", b"x=apple\n"))

    def test_bare_key_loses_to_assignment(self):
        assert self.r.merge(pair(b"flag\n", b"flag=on\n")) == b"flag=on\n"

    def test_idempotent_with_repeated_keys(self):
        once = self.r.merge(pair(b"k=1\nk=2\n", b"k=0\n"))
        assert once == b"k=2\n"
        assert self.r.merge(pair(once, once)) == once


class TestLwwBlobResolver:
    r = LwwBlobResolver()

    def test_deterministic_winner(self):
        winner = self.r.merge(pair(b"aaa", b"zzz"))
        assert winner in (b"aaa", b"zzz")
        assert self.r.merge(pair(b"zzz", b"aaa")) == winner

    def test_three_way_cascade_elects_one_winner(self):
        a, b, c = b"version-a", b"version-b", b"version-c"
        left = self.r.merge(pair(self.r.merge(pair(a, b)), c))
        right = self.r.merge(pair(a, self.r.merge(pair(b, c))))
        assert left == right


class TestThreeWayBlockResolver:
    r = ThreeWayBlockResolver()

    @staticmethod
    def digests(contents: bytes):
        from repro.physical.wire import content_digest, split_blocks

        return tuple(content_digest(block) for block in split_blocks(contents))

    def test_takes_the_changed_side(self):
        anc = self.digests(b"base")
        assert self.r.merge(pair(b"edited", b"base", ancestor=anc)) == b"edited"
        assert self.r.merge(pair(b"base", b"edited", ancestor=anc)) == b"edited"

    def test_refuses_when_both_changed(self):
        anc = self.digests(b"base")
        with pytest.raises(ResolverError):
            self.r.merge(pair(b"left", b"right", ancestor=anc))

    def test_refuses_without_ancestor(self):
        with pytest.raises(ResolverError):
            self.r.merge(pair(b"left", b"right", ancestor=None))

    def test_refuses_on_ancestor_disagreement(self):
        p = ConflictPair(
            local=b"left",
            remote=b"right",
            local_vv=VV_A,
            remote_vv=VV_B,
            local_ancestor=self.digests(b"one"),
            remote_ancestor=self.digests(b"two"),
        )
        with pytest.raises(ResolverError):
            self.r.merge(p)

    def test_one_side_deleted_tail_block(self):
        from repro.physical.wire import DELTA_BLOCK_SIZE

        base = b"A" * DELTA_BLOCK_SIZE + b"B" * DELTA_BLOCK_SIZE
        anc = self.digests(base)
        truncated = base[:DELTA_BLOCK_SIZE]
        edited = b"X" * DELTA_BLOCK_SIZE + b"B" * DELTA_BLOCK_SIZE
        merged = self.r.merge(pair(truncated, edited, ancestor=anc))
        assert merged == b"X" * DELTA_BLOCK_SIZE


class TestRegistry:
    def test_default_patterns_sniff(self):
        reg = default_registry()
        assert reg.sniff("inbox.log") == "append-log"
        assert reg.sniff("app.properties") == "kv"
        assert reg.sniff("avatar.lww") == "lww"
        assert reg.sniff("doc.3way") == "threeway"
        assert reg.sniff("plain.txt") == ""

    def test_first_pattern_wins(self):
        reg = ResolverRegistry()
        reg.register(AppendLogResolver(), ("*.both",))
        reg.register(KeyValueResolver(), ("*.both",))
        assert reg.sniff("x.both") == "append-log"

    def test_declared_tag_beats_sniffing(self):
        reg = default_registry()
        assert reg.policy_for("inbox.log", local_tag="kv") == "kv"

    def test_disagreeing_tags_select_nothing(self):
        reg = default_registry()
        assert reg.policy_for("inbox.log", local_tag="kv", remote_tag="lww") == ""

    def test_covers(self):
        reg = default_registry()
        assert reg.covers("inbox.log")
        assert reg.covers("anything", tag="lww")
        assert not reg.covers("plain.txt")
        assert not reg.covers("plain.txt", tag="no-such-resolver")


class TestAutomaticResolution:
    def diverge(self, name, local, remote, base=b""):
        system = resolver_system()
        seed_and_sync(system, name, base)
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file(name, local)
        system.host("b").fs().write_file(name, remote)
        system.heal()
        system.reconcile_everything(rounds=4)
        return system

    def test_append_logs_merge_to_record_union(self):
        system = self.diverge("/inbox.log", b"seed\nalpha\n", b"seed\nbravo\n", b"seed\n")
        expected = b"alpha\nbravo\nseed\n"
        assert store_bytes(system, "a", "inbox.log") == [expected]
        assert store_bytes(system, "b", "inbox.log") == [expected]
        assert system.total_conflicts() == 0

    def test_kv_conflict_merges_per_key(self):
        system = self.diverge("/conf.properties", b"x=1\ny=2\n", b"x=1\nz=3\n", b"x=1\n")
        assert store_bytes(system, "a", "conf.properties") == [b"x=1\ny=2\nz=3\n"]
        assert system.total_conflicts() == 0

    def test_lww_blob_converges(self):
        system = self.diverge("/state.lww", b"aaa", b"zzz", b"base")
        (a,) = store_bytes(system, "a", "state.lww")
        (b,) = store_bytes(system, "b", "state.lww")
        assert a == b in (b"aaa", b"zzz")
        assert system.total_conflicts() == 0

    def test_threeway_merges_single_sided_change(self):
        system = self.diverge("/doc.3way", b"edited", b"base", b"base")
        assert store_bytes(system, "a", "doc.3way") == [b"edited"]
        assert store_bytes(system, "b", "doc.3way") == [b"edited"]
        assert system.total_conflicts() == 0

    def test_threeway_both_changed_falls_back_to_manual(self):
        system = self.diverge("/doc.3way", b"LOCAL", b"REMOTE", b"base")
        # both versions preserved, conflict reported to the owner
        assert store_bytes(system, "a", "doc.3way") == [b"LOCAL"]
        assert store_bytes(system, "b", "doc.3way") == [b"REMOTE"]
        assert system.total_conflicts() > 0
        health = system.host("a").health()
        assert health.resolver_fallback_manual >= 1

    def test_uncovered_type_still_goes_to_the_owner(self):
        system = self.diverge("/plain.txt", b"LOCAL", b"REMOTE", b"base")
        assert system.total_conflicts() > 0
        assert store_bytes(system, "a", "plain.txt") == [b"LOCAL"]

    def test_resolved_vv_dominates_both_inputs(self):
        system = self.diverge("/inbox.log", b"seed\na\n", b"seed\nb\n", b"seed\n")
        store = next(iter(system.host("a").physical.stores.values()))
        dir_fh, fh = find_file(store, "inbox.log")
        vv = store.read_file_aux(dir_fh, fh).vv
        entry = system.host("a").health().last_resolutions[-1]
        assert vv.strictly_dominates(VersionVector.decode(entry["local_vv"]))
        assert vv.strictly_dominates(VersionVector.decode(entry["remote_vv"]))

    def test_independent_resolutions_are_byte_identical(self):
        """Opposite hosts resolving the same conflict produce one result."""

        def run(resolving_host):
            system = resolver_system()
            seed_and_sync(system, "/inbox.log", b"seed\n")
            system.partition([{"a"}, {"b"}])
            system.host("a").fs().write_file("/inbox.log", b"seed\nalpha\n")
            system.host("b").fs().write_file("/inbox.log", b"seed\nbravo\n")
            system.heal()
            system.host(resolving_host).recon_daemon.tick()
            return store_bytes(system, resolving_host, "inbox.log")

        assert run("a") == run("b") == [b"alpha\nbravo\nseed\n"]

    def test_third_replica_update_is_not_swallowed(self):
        """A resolution races a concurrent third-replica update: the merged
        vv must not dominate the unseen version, so it surfaces as a fresh
        conflict (and merges too) instead of being silently overwritten."""
        system = resolver_system(("a", "b", "c"))
        seed_and_sync(system, "/inbox.log", b"seed\n")
        system.partition([{"a"}, {"b"}, {"c"}])
        system.host("a").fs().write_file("/inbox.log", b"seed\nalpha\n")
        system.host("b").fs().write_file("/inbox.log", b"seed\nbravo\n")
        system.host("c").fs().write_file("/inbox.log", b"seed\ncharlie\n")
        system.partition([{"a", "b"}, {"c"}])
        system.host("a").recon_daemon.tick()  # a+b resolve while c is away
        system.heal()
        system.reconcile_everything(rounds=5)
        expected = b"alpha\nbravo\ncharlie\nseed\n"
        for host in ("a", "b", "c"):
            assert store_bytes(system, host, "inbox.log") == [expected]
        assert system.total_conflicts() == 0

    def test_resolvers_survive_crash_and_restart(self):
        system = resolver_system()
        registry = system.resolvers
        host = system.host("a")
        host.crash()
        host.restart(system)
        assert host.recon_daemon.resolvers is registry


class TestPolicyTags:
    def test_create_file_declares_policy(self):
        system = resolver_system()
        fs = system.host("a").fs()
        fs.create_file("/notes", b"seed\n", merge_policy="append-log")
        assert fs.merge_policy("/notes") == "append-log"

    def test_declared_policy_propagates_and_resolves(self):
        """A tag on an arbitrary name (no pattern match) rides the aux
        record to the peer and selects the resolver there."""
        system = resolver_system()
        fs_a = system.host("a").fs()
        fs_a.create_file("/notes", b"seed\n", merge_policy="append-log")
        system.reconcile_everything()
        for name in system.hosts:
            system.host(name).propagation_daemon.tick()
        system.reconcile_everything()
        assert system.host("b").fs().merge_policy("/notes") == "append-log"

        system.partition([{"a"}, {"b"}])
        fs_a.write_file("/notes", b"seed\nalpha\n")
        system.host("b").fs().write_file("/notes", b"seed\nbravo\n")
        system.heal()
        system.reconcile_everything(rounds=4)
        assert store_bytes(system, "a", "notes") == [b"alpha\nbravo\nseed\n"]
        assert store_bytes(system, "b", "notes") == [b"alpha\nbravo\nseed\n"]
        assert system.total_conflicts() == 0

    def test_set_merge_policy_on_existing_file(self):
        system = resolver_system()
        fs = system.host("a").fs()
        fs.write_file("/existing", b"seed\n")
        fs.set_merge_policy("/existing", "append-log")
        assert fs.merge_policy("/existing") == "append-log"

    def test_policy_change_propagates_like_an_update(self):
        system = resolver_system()
        fs_a = system.host("a").fs()
        fs_a.write_file("/existing", b"seed\n")
        system.reconcile_everything()
        for name in system.hosts:
            system.host(name).propagation_daemon.tick()
        fs_a.set_merge_policy("/existing", "kv")
        system.reconcile_everything()
        assert system.host("b").fs().merge_policy("/existing") == "kv"


class TestManualResolvePrimitive:
    """``resolve_file_conflict`` edge cases (the owner-driven path)."""

    def conflicted(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"base")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/f", b"version A")
        system.host("b").fs().write_file("/f", b"version B")
        system.heal()
        system.reconcile_everything()
        return system

    def test_empty_chosen_contents(self):
        system = self.conflicted()
        host = system.host("a")
        report = host.conflict_log.unresolved()[0]
        host.fs().resolve_conflict(report, b"", host.conflict_log)
        system.reconcile_everything()
        assert store_bytes(system, "a", "f") == [b""]
        assert store_bytes(system, "b", "f") == [b""]
        assert not host.conflict_log.unresolved()

    def test_resolution_racing_concurrent_third_replica_update(self):
        """Resolving from stale observations must not swallow a third
        replica's concurrent version: the conflict log keeps the episode
        open until a genuinely superseding version lands."""
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"base")
        system.reconcile_everything()
        for name in system.hosts:
            system.host(name).propagation_daemon.tick()
        system.partition([{"a"}, {"b"}, {"c"}])
        system.host("a").fs().write_file("/f", b"version A")
        system.host("b").fs().write_file("/f", b"version B")
        system.host("c").fs().write_file("/f", b"version C")
        system.partition([{"a", "b"}, {"c"}])
        system.host("a").recon_daemon.tick()
        host = system.host("a")
        report = host.conflict_log.unresolved()[0]
        # resolve a-vs-b while c's concurrent write is still unseen
        host.fs().resolve_conflict(report, b"A+B", host.conflict_log)
        system.heal()
        system.reconcile_everything(rounds=5)
        # c's version was not silently overwritten: the collision with the
        # resolution surfaced as a new conflict for the owner
        open_reports = [
            r
            for h in system.hosts
            for r in system.host(h).conflict_log.unresolved()
            if r.name == "f"
        ]
        assert open_reports
        contents = {
            bytes(b) for h in system.hosts for b in store_bytes(system, h, "f")
        }
        assert b"version C" in contents or b"A+B" in contents

    def test_resolution_during_partition_healing_mid_commit(self):
        """A crash between shadow write and commit leaves an orphan shadow;
        recovery scavenges it and the conflict stays open for a retry."""
        system = self.conflicted()
        host = system.host("a")
        store = next(iter(host.physical.stores.values()))
        dir_fh, fh = find_file(store, "f")
        report = host.conflict_log.unresolved()[0]
        # the owner starts a resolution: shadow written, commit never runs
        shadow = store.shadow_vnode(dir_fh, fh, create=True)
        shadow.truncate(0)
        shadow.write(0, b"half-committed")
        host.crash()
        host.restart(system)
        store = next(iter(host.physical.stores.values()))
        assert store.scavenge_shadows(dir_fh) == 0  # recovery already swept
        assert store.file_vnode(dir_fh, fh).read_all() == b"version A"
        # the retry goes through cleanly after the heal; the crash left
        # the peer-health tracker suspicious of `a`, so reset it the way
        # the operator playbook (and the chaos harness) does
        host.fs().resolve_conflict(report, b"A + B merged", host.conflict_log)
        for name in system.hosts:
            system.host(name).recon_daemon.peer_health.reset()
        system.reconcile_everything(rounds=4)
        assert store_bytes(system, "b", "f") == [b"A + B merged"]


class TestFsckResolutionAudit:
    def make_store(self):
        system = resolver_system()
        seed_and_sync(system, "/inbox.log", b"seed\n")
        host = system.host("a")
        store = next(iter(host.physical.stores.values()))
        dir_fh, fh = find_file(store, "inbox.log")
        return system, host, store, dir_fh, fh

    def synthetic_report(self, store, dir_fh, fh, resolved):
        return ConflictReport(
            kind=ConflictKind.FILE_UPDATE,
            volume=store.volume,
            parent_fh=dir_fh,
            fh=fh.logical,
            name="inbox.log",
            local_vv=VersionVector({1: 99}),
            remote_vv=VersionVector({2: 99}),
            remote_host="b",
            detected_at=0.0,
            resolved=resolved,
        )

    def test_bogus_resolved_mark_is_flagged(self):
        system, host, store, dir_fh, fh = self.make_store()
        host.conflict_log._reports.append(
            self.synthetic_report(store, dir_fh, fh, resolved=True)
        )
        report = ficus_fsck(store, conflict_log=host.conflict_log)
        assert any("does not strictly dominate" in p for p in report.problems)

    def test_unresolved_covered_file_is_flagged(self):
        system, host, store, dir_fh, fh = self.make_store()
        host.conflict_log._reports.append(
            self.synthetic_report(store, dir_fh, fh, resolved=False)
        )
        report = ficus_fsck(
            store, conflict_log=host.conflict_log, resolvers=system.resolvers
        )
        assert any("sits unresolved" in p for p in report.problems)
        # without a registry the same log passes the audit
        assert ficus_fsck(store, conflict_log=host.conflict_log).clean

    def test_genuine_resolution_passes_the_audit(self):
        system = resolver_system()
        seed_and_sync(system, "/inbox.log", b"seed\n")
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/inbox.log", b"seed\na\n")
        system.host("b").fs().write_file("/inbox.log", b"seed\nb\n")
        system.heal()
        system.reconcile_everything(rounds=4)
        for name in system.hosts:
            host = system.host(name)
            for store in host.physical.stores.values():
                assert ficus_fsck(
                    store, conflict_log=host.conflict_log, resolvers=system.resolvers
                ).clean


class TestObservability:
    def resolved_system(self):
        system = resolver_system()
        seed_and_sync(system, "/inbox.log", b"seed\n")
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/inbox.log", b"seed\nalpha\n")
        system.host("b").fs().write_file("/inbox.log", b"seed\nbravo\n")
        system.heal()
        system.reconcile_everything(rounds=4)
        return system

    def resolving_host(self, system):
        for name in sorted(system.hosts):
            if system.host(name).health().resolver_auto_resolved:
                return system.host(name)
        raise AssertionError("no host auto-resolved")

    def test_health_surfaces_resolution_counters(self):
        host = self.resolving_host(self.resolved_system())
        health = host.health()
        assert health.resolver_auto_resolved >= 1
        assert health.resolver_fallback_manual == 0
        entry = health.last_resolutions[-1]
        assert entry["name"] == "inbox.log"
        assert entry["tag"] == "append-log"
        assert entry["local_vv"] and entry["remote_vv"] and entry["resolved_vv"]

    def test_op_ring_records_both_input_vvs(self):
        host = self.resolving_host(self.resolved_system())
        ops = [
            op
            for op in host.health_plane.recorder.ring
            if op[1] == "conflict_auto_resolved"
        ]
        assert ops
        entry = host.health().last_resolutions[-1]
        assert entry["local_vv"] in ops[-1][2] and entry["remote_vv"] in ops[-1][2]

    def test_telemetry_counters(self):
        from repro.telemetry import Telemetry

        system = FicusSystem(["a", "b"], daemon_config=QUIET, telemetry=Telemetry())
        system.enable_resolvers()
        seed_and_sync(system, "/inbox.log", b"seed\n")
        system.partition([{"a"}, {"b"}])
        system.host("a").fs().write_file("/inbox.log", b"seed\nalpha\n")
        system.host("b").fs().write_file("/inbox.log", b"seed\nbravo\n")
        system.heal()
        system.reconcile_everything(rounds=4)
        total = sum(
            system.host(n).telemetry.metrics.counter("resolver.auto_resolved").value
            for n in system.hosts
        )
        assert total >= 1

    def test_ficus_top_renders_resolver_column(self):
        from repro.tools.ficus_top import render_health_table

        system = self.resolved_system()
        table = render_health_table([system.host(n).health() for n in sorted(system.hosts)])
        assert "resolved" in table.splitlines()[0]
        assert any("+0m" in line for line in table.splitlines()[2:])


class TestChaosWithResolvers:
    def test_small_resolver_chaos_run_converges(self):
        from repro.workload.chaos import ChaosConfig, run_chaos

        report = run_chaos(42, ChaosConfig(rounds=4, ops_per_round=3, resolvers=True))
        assert report.converged, report.problems

    def test_resolver_gate_keeps_legacy_schedules_identical(self):
        from repro.workload.chaos import ChaosConfig, run_chaos

        before = run_chaos(17, ChaosConfig(rounds=3, ops_per_round=3))
        again = run_chaos(17, ChaosConfig(rounds=3, ops_per_round=3))
        assert before.ops_attempted == again.ops_attempted
        assert before.tree == again.tree
        assert before.faults_injected == again.faults_injected
