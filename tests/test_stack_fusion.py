"""Fused vs unfused stack equivalence (the fusion correctness contract).

Mount-time fusion (``repro.vnode.fusion``) may elide transparent
crossings but must never change what a stack *does*: same results, same
errors, same interposition side effects (auth denials, crypt transforms,
monitor profiles when enabled).  Every stack shape here is built twice
from scratch — once driven unfused, once fused — and the observable
outcomes are compared verbatim.
"""

import pytest

from repro.errors import FileNotFound, PermissionDenied
from repro.layers import AccessPolicy, AuthLayer, CryptLayer, MonitorLayer
from repro.net import Network
from repro.nfs import NfsClientLayer, NfsServer
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import Credential, FusedVnode, OpContext, UfsLayer, fuse_stack
from repro.vnode.passthrough import build_null_stack

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def _ufs():
    return UfsLayer(Ufs.mkfs(BlockDevice(8192), num_inodes=512))


def make_plain_nulls():
    """Four pure pass-through layers: fusion elides everything."""
    return build_null_stack(_ufs(), depth=4)


def make_auth_crypt():
    """Interposing members (auth gates, crypt transforms) between nulls."""
    crypt = CryptLayer(build_null_stack(_ufs(), depth=1), key=b"disk-key")
    auth = AuthLayer(crypt, AccessPolicy(read_only_uids={9}, root_bypasses=True))
    return build_null_stack(auth, depth=1)


def make_monitor_on():
    mon = MonitorLayer(build_null_stack(_ufs(), depth=2))
    return build_null_stack(mon, depth=1)


def make_monitor_off():
    mon = MonitorLayer(build_null_stack(_ufs(), depth=2))
    mon.set_enabled(False)
    return build_null_stack(mon, depth=1)


def make_nfs_hopped():
    """Null layers over an NFS client: the hop is the opaque base."""
    net = Network()
    net.add_host("server")
    net.add_host("client")
    exported = UfsLayer(Ufs.mkfs(BlockDevice(8192), num_inodes=512, clock=net.clock))
    NfsServer(net, "server", exported)
    return build_null_stack(NfsClientLayer(net, "client", "server"), depth=3)


def make_ficus_monitored():
    """The full replicated stack under monitor + nulls."""
    system = FicusSystem(["solo"], daemon_config=QUIET)
    return build_null_stack(MonitorLayer(system.host("solo").logical), depth=2)


STACKS = {
    "plain-nulls": make_plain_nulls,
    "auth-crypt": make_auth_crypt,
    "monitor-on": make_monitor_on,
    "monitor-off": make_monitor_off,
    "nfs-hopped": make_nfs_hopped,
    "ficus-monitored": make_ficus_monitored,
}


def _names(dirv):
    # UFS lists './..' but Ficus directories have no dot entries
    return b",".join(e.name.encode() for e in dirv.readdir() if e.name not in (".", ".."))


def op_script(root) -> list[bytes]:
    """Namespace churn + file I/O + a deliberate error, all recorded."""
    out = []
    d = root.mkdir("work")
    f = d.create("data.bin")
    f.write(0, b"0123456789" * 20)
    out.append(root.walk("work/data.bin").read_all())
    d.create("second").write(0, b"more")
    d.rename("second", d, "renamed")
    out.append(_names(d))
    out.append(d.lookup("renamed").read_all())
    d.lookup("renamed").truncate(2)
    out.append(d.lookup("renamed").read_all())
    d.remove("renamed")
    out.append(_names(d))
    try:
        d.lookup("renamed")
        out.append(b"no-error")
    except FileNotFound:
        out.append(b"FileNotFound")
    out.append(root.walk("work").getattr().ftype.name.encode())
    link_src = d.create("orig")
    link_src.write(0, b"linked")
    d.link(d.lookup("orig"), "alias")
    out.append(d.lookup("alias").read_all())
    sym = d.symlink("ptr", "orig")
    out.append(sym.readlink().encode())
    return out


class TestFusedEquivalence:
    @pytest.mark.parametrize("stack", list(STACKS))
    def test_same_results_and_errors(self, stack):
        unfused = op_script(STACKS[stack]().root())
        fused = op_script(fuse_stack(STACKS[stack]()).root())
        assert fused == unfused, f"fused {stack} diverged"

    def test_plain_nulls_fully_elided(self):
        fused = fuse_stack(make_plain_nulls())
        op_script(fused.root())
        stats = fused.stats()
        assert stats["members"] == 4
        assert stats["chained_dispatches"] == 0
        assert stats["hit_rate"] == 1.0

    def test_namespace_results_stay_fused(self):
        """lookup/create/mkdir results are re-fused, not chain-wrapped."""
        root = fuse_stack(make_plain_nulls()).root()
        child = root.mkdir("d").create("f")
        assert isinstance(child, FusedVnode)

    def test_auth_still_denies_when_fused(self):
        top = make_auth_crypt()
        reader = OpContext(cred=Credential(uid=9))
        for root in (top.root(), fuse_stack(top).root()):
            root.create("shared").write(0, b"x")
            assert root.lookup("shared", reader).read(0, 1, reader) == b"x"
            with pytest.raises(PermissionDenied):
                root.create("nope", ctx=reader)
            root.remove("shared")

    def test_crypt_still_transforms_when_fused(self):
        """The lower layer must see ciphertext through the fused path."""
        ufs = _ufs()
        crypt = build_null_stack(CryptLayer(ufs, key=b"k"), depth=2)
        fuse_stack(crypt).root().create("f").write(0, b"plaintext")
        below = ufs.root().lookup("f").read_all()
        assert below != b"plaintext"
        assert crypt.root().lookup("f").read_all() == b"plaintext"

    def test_monitor_profiles_identically_when_fused(self):
        mon_a = MonitorLayer(build_null_stack(_ufs(), depth=2))
        mon_b = MonitorLayer(build_null_stack(_ufs(), depth=2))
        op_script(build_null_stack(mon_a, depth=1).root())
        op_script(fuse_stack(build_null_stack(mon_b, depth=1)).root())
        for op in ("create", "write", "read", "lookup", "remove", "mkdir"):
            assert mon_a.profile[op].calls == mon_b.profile[op].calls, op
            assert mon_a.profile[op].bytes_in == mon_b.profile[op].bytes_in, op
            assert mon_a.profile[op].bytes_out == mon_b.profile[op].bytes_out, op
        assert mon_b.profile["lookup"].errors == mon_a.profile["lookup"].errors


class TestFusionInvalidation:
    def test_mid_run_monitor_toggle_rebuilds_the_plan(self):
        mon = MonitorLayer(build_null_stack(_ufs(), depth=2))
        mon.set_enabled(False)
        fused = fuse_stack(build_null_stack(mon, depth=1))
        root = fused.root()

        f = root.create("f")
        f.write(0, b"unobserved")
        assert fused.stats()["plan_rebuilds"] == 1
        assert fused.stats()["chained_dispatches"] == 0
        assert "write" not in mon.profile

        # Toggle ON mid-run: next dispatch rebuilds the plan and the
        # monitor starts seeing its intercepted ops again.
        mon.set_enabled(True)
        root.lookup("f").write(0, b"observed!!")
        assert fused.stats()["plan_rebuilds"] == 2
        assert fused.stats()["chained_dispatches"] > 0
        assert mon.profile["write"].calls == 1
        assert mon.profile["write"].bytes_in == 10

        # Toggle OFF again: third plan, profile stops growing.
        mon.set_enabled(False)
        root.lookup("f").write(0, b"dark again")
        assert fused.stats()["plan_rebuilds"] == 3
        assert mon.profile["write"].calls == 1

    def test_unchanged_toggle_is_a_no_op(self):
        mon = MonitorLayer(build_null_stack(_ufs(), depth=1))
        fused = fuse_stack(build_null_stack(mon, depth=1))
        fused.root().create("f")
        rebuilds = fused.stats()["plan_rebuilds"]
        mon.set_enabled(True)  # already enabled: no epoch bump
        fused.root().lookup("f")
        assert fused.stats()["plan_rebuilds"] == rebuilds

    def test_disabled_monitor_matches_plain_stack(self):
        """Disabled-monitor output is indistinguishable from no monitor,
        fused or not — the disabled vnode early-outs."""
        plain = op_script(build_null_stack(_ufs(), depth=3).root())
        assert op_script(make_monitor_off().root()) == plain
        assert op_script(fuse_stack(make_monitor_off()).root()) == plain
