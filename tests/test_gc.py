"""Tests for two-phase tombstone garbage collection."""


from repro.recon import collect_volume_replica
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def tombstones_at(system, host_name):
    host = system.host(host_name)
    volrep = next(l.volrep for l in system.root_locations if l.host == host_name)
    store = host.physical.store_for(volrep)
    return [e for e in store.read_entries(store.root_handle()) if not e.live]


class TestAckPropagation:
    def test_local_delete_acks_self(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.host("a").fs().unlink("/f")
        (tomb,) = tombstones_at(system, "a")
        assert tomb.acks == {1}  # replica 1 = host a

    def test_acks_accumulate_through_recon(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        system.host("a").fs().unlink("/f")
        # one round: b learns the delete from a
        system.host("b").recon_daemon.reconcile_with(
            next(l.volrep for l in system.root_locations if l.host == "b"),
            next(l for l in system.root_locations if l.host == "a"),
        )
        (tomb_b,) = tombstones_at(system, "b")
        assert tomb_b.acks >= {1, 2}

    def test_full_ack_set_after_ring_convergence(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        system.host("a").fs().unlink("/f")
        system.reconcile_everything(rounds=4)
        # GC runs inside the daemon; once acks covered {1,2,3} everywhere,
        # every tombstone is purged
        for name in ["a", "b", "c"]:
            assert tombstones_at(system, name) == []
        purged = sum(h.recon_daemon.tombstones_purged for h in system.hosts.values())
        assert purged >= 3


class TestGcSafety:
    def test_tombstone_kept_while_any_replica_unaware(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        system.partition([{"a", "b"}, {"c"}])  # c cannot learn the delete
        system.host("a").fs().unlink("/f")
        for _ in range(4):
            for name in ["a", "b"]:
                system.host(name).recon_daemon.tick()
        # a and b know the delete but c does not: tombstones must survive
        assert tombstones_at(system, "a")
        assert tombstones_at(system, "b")

    def test_no_resurrection_after_gc(self):
        """After tombstones are collected everywhere, the deleted name
        must not reappear through any further reconciliation order."""
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        system.reconcile_everything()
        system.host("a").fs().unlink("/f")
        system.reconcile_everything(rounds=4)
        system.reconcile_everything(rounds=4)  # extra rounds post-GC
        for name in ["a", "b", "c"]:
            assert "f" not in system.host(name).fs().listdir("/")
            assert tombstones_at(system, name) == []

    def test_delete_still_wins_against_straggler(self):
        """The reason tombstones exist: a replica that was partitioned
        through the whole delete must not resurrect the file when it
        finally reconciles — even while GC runs on the others."""
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        system.host("a").fs().write_file("/doomed", b"x")
        system.reconcile_everything()
        system.partition([{"a", "b"}, {"c"}])
        system.host("a").fs().unlink("/doomed")
        for _ in range(3):  # a and b converge on the delete; GC cannot
            for name in ["a", "b"]:  # finish because c has not acked
                system.host(name).recon_daemon.tick()
        system.heal()
        system.reconcile_everything(rounds=4)
        for name in ["a", "b", "c"]:
            assert "doomed" not in system.host(name).fs().listdir("/")
        # and once c acked, collection completes everywhere
        system.reconcile_everything(rounds=2)
        for name in ["a", "b", "c"]:
            assert tombstones_at(system, name) == []

    def test_collect_is_noop_without_replica_set(self):
        system = FicusSystem(["a"], daemon_config=QUIET)
        host = system.host("a")
        fs = host.fs()
        fs.write_file("/f", b"x")
        fs.unlink("/f")
        store = host.physical.store_for(system.root_locations[0].volrep)
        result = collect_volume_replica(host.physical, store, frozenset())
        assert result.tombstones_purged == 0

    def test_single_replica_volume_collects_immediately(self):
        system = FicusSystem(["a"], daemon_config=QUIET)
        host = system.host("a")
        fs = host.fs()
        fs.write_file("/f", b"x")
        fs.unlink("/f")
        store = host.physical.store_for(system.root_locations[0].volrep)
        result = collect_volume_replica(host.physical, store, frozenset({1}))
        assert result.tombstones_purged == 1
        assert tombstones_at(system, "a") == []
