"""The consistency observability plane: gauges, flight recorder, routing."""

import pytest

from repro.errors import RpcTimeout
from repro.net import Network
from repro.nfs import NfsClientLayer, NfsServer
from repro.recon import PullOutcome, pull_file
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.telemetry import FLIGHT_RING_CAPACITY, HealthPlane, load_dump
from repro.ufs import Ufs
from repro.vnode import UfsLayer
from repro.vnode.interface import ROOT_CTX
from repro.workload import ChaosConfig, run_chaos

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def converged_cluster(names=("a", "b", "c")):
    system = FicusSystem(list(names), daemon_config=QUIET)
    fs = system.host(names[0]).fs()
    fs.write_file("/doc", b"agreed")
    system.reconcile_everything()
    return system, fs


class TestDivergenceGauges:
    def test_partitioned_write_raises_suspicion_immediately(self):
        """The updating side knows which replica hosts missed the write;
        suspicion appears without waiting for any daemon to run."""
        system, fs = converged_cluster()
        system.partition([{"a"}, {"b", "c"}])
        fs.write_file("/doc", b"partitioned edit")
        health = system.host("a").health()
        assert health.divergence_suspected
        volume = system.root_volume.to_hex()
        assert health.suspected == {volume: ["b", "c"]}

    def test_reconciliation_after_heal_clears_suspicion(self):
        system, fs = converged_cluster()
        system.partition([{"a"}, {"b", "c"}])
        fs.write_file("/doc", b"partitioned edit")
        system.heal()
        system.reconcile_everything()
        for name in system.hosts:
            health = system.host(name).health()
            assert not health.divergence_suspected, health.suspected

    def test_recon_abort_against_flapping_peer_raises_suspicion(self):
        """A round that dies mid-run leaves divergence *unknown*: suspect it."""
        system, fs = converged_cluster(("a", "b"))
        fs.write_file("/doc", b"newer")
        # outlast every retransmission: the run aborts while b is reachable
        system.network.faults.schedule_rpc("b", "a", ["timeout"] * 12)
        system.host("b").recon_daemon.tick()
        health = system.host("b").health()
        volume = system.root_volume.to_hex()
        assert health.suspected == {volume: ["a"]}
        system.network.faults.clear()
        system.reconcile_everything()
        assert not system.host("b").health().divergence_suspected

    def test_staleness_grows_under_partition_and_resets_after_heal(self):
        system, fs = converged_cluster()
        system.partition([{"a"}, {"b", "c"}])
        for _ in range(3):
            system.host("a").recon_daemon.tick()
        during = system.host("a").health()
        assert during.staleness_ticks["b"] >= 3
        assert during.staleness_ticks["c"] >= 3
        system.heal()
        system.reconcile_everything()
        # every peer completed a round recently; at most the final tick's
        # not-chosen peer is one round behind
        assert system.host("a").health().max_staleness <= 1

    def test_converged_quiesced_cluster_reports_clean_health(self):
        system, fs = converged_cluster()
        for name in system.hosts:
            system.host(name).propagation_daemon.tick()
        for name in system.hosts:
            health = system.host(name).health()
            assert health.up
            assert not health.divergence_suspected
            assert health.notes_pending == 0
            assert health.degraded_peers == []
            assert health.anomalies == {}

    def test_checked_read_flags_partitioned_volume(self):
        system, fs = converged_cluster()
        assert fs.read_file_checked("/doc").divergence_suspected is False
        system.partition([{"a"}, {"b", "c"}])
        fs.write_file("/doc", b"partitioned edit")
        checked = fs.read_file_checked("/doc")
        assert checked.data == b"partitioned edit"
        assert checked.divergence_suspected
        system.heal()
        system.reconcile_everything()
        assert fs.read_file_checked("/doc").divergence_suspected is False

    def test_health_disabled_system_still_answers(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET, health=False)
        fs = system.host("a").fs()
        fs.write_file("/doc", b"x")
        assert system.host("a").health_plane is None
        health = system.host("a").health()
        assert health.host == "a" and health.up
        assert not health.divergence_suspected
        assert fs.read_file_checked("/doc").divergence_suspected is False


class TestFlightRecorder:
    def test_ring_stays_bounded(self):
        system = FicusSystem(["solo"], daemon_config=QUIET)
        fs = system.host("solo").fs()
        for _ in range(FLIGHT_RING_CAPACITY // 4 + 40):  # 4+ ring entries each
            fs.write_file("/f", b"x")
        plane = system.host("solo").health_plane
        assert len(plane.recorder.ring) == FLIGHT_RING_CAPACITY

    def test_anomaly_dump_round_trips_and_renders(self, tmp_path):
        from repro.tools.ficus_top import render_dump

        system, fs = converged_cluster(("a", "b"))
        plane = system.host("a").health_plane
        plane.recorder.dump_dir = str(tmp_path)
        plane.anomaly("fsck_violation", detail_code=7)
        assert plane.anomaly_counts == {"fsck_violation": 1}
        path = plane.recorder.dump_paths[-1]
        snapshot = load_dump(path)
        assert snapshot["kind"] == "fsck_violation"
        assert snapshot["detail"] == {"detail_code": 7}
        assert snapshot["ops"], "ring should hold the preceding vnode ops"
        assert snapshot["health"]["host"] == "a"
        rendered = render_dump(path)
        assert "fsck_violation" in rendered
        assert "recorded ops" in rendered

    def test_conflict_detection_fires_the_recorder(self):
        system, fs = converged_cluster(("a", "b"))
        system.partition([{"a"}, {"b"}])
        fs.write_file("/doc", b"side a")
        system.host("b").fs().write_file("/doc", b"side b")
        system.heal()
        system.reconcile_everything()
        planes = [system.host(name).health_plane for name in ("a", "b")]
        detected = sum(p.anomaly_counts.get("conflict_detected", 0) for p in planes)
        assert detected >= 1
        assert any(
            dump["kind"] == "conflict_detected" for p in planes for dump in p.recorder.dumps
        )


class TestBlockCorruptionFallback:
    def _multi_block_setup(self):
        from repro.physical.wire import DELTA_BLOCK_SIZE

        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
        contents = bytes(i % 251 for i in range(4 * DELTA_BLOCK_SIZE))
        system.host("alpha").fs().write_file("/big", contents)
        system.reconcile_everything()
        mutated = bytearray(contents)
        mutated[0] ^= 0x55
        system.host("alpha").fs().write_file("/big", bytes(mutated))
        beta_store = next(iter(system.host("beta").physical.stores.values()))
        alpha_loc = next(loc for loc in system.root_locations if loc.host == "alpha")
        remote = system.host("beta").fabric.volume_root("alpha", alpha_loc.volrep)
        root_fh = beta_store.root_handle()
        entry = next(e for e in beta_store.read_entries(root_fh) if e.name == "big")
        return system, beta_store, remote, root_fh, entry, bytes(mutated)

    def test_corrupted_block_payload_falls_back_to_whole_file(self, tmp_path):
        """Satellite: a corrupted block-delta payload is caught by digest
        verification, fires the anomaly, and the whole-file path still
        installs the correct version."""
        system, store, remote, root_fh, entry, expected = self._multi_block_setup()
        plane = system.host("beta").health_plane
        plane.recorder.dump_dir = str(tmp_path)
        system.network.faults.schedule_block_corruption("beta", "alpha")
        result = pull_file(store, root_fh, entry.fh, remote, health=plane)
        assert result.outcome is PullOutcome.PULLED
        assert store.file_vnode(root_fh, entry.fh).read_all() == expected
        assert system.network.faults.injected.get("block_corrupt") == 1
        assert plane.anomaly_counts.get("pull_digest_mismatch") == 1
        # the anomaly left an offline-renderable evidence bundle behind
        from repro.tools.ficus_top import render_dump

        assert "pull_digest_mismatch" in render_dump(plane.recorder.dump_paths[-1])

    def test_clean_link_keeps_the_delta_path(self):
        system, store, remote, root_fh, entry, expected = self._multi_block_setup()
        plane = system.host("beta").health_plane
        result = pull_file(store, root_fh, entry.fh, remote, health=plane)
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_saved > 0  # the delta path ran
        assert plane.anomaly_counts == {}


class TestDegradedReadRouting:
    def test_reads_route_around_flapping_peer(self):
        """Satellite: READ_LATEST stops tail-probing a degraded peer when a
        healthy replica can answer, and counts every spared probe."""
        from repro.core import FicusFileSystem

        system, _ = converged_cluster()
        alpha = system.host("a")
        # no_cache reads force a fresh probe of every replica batch
        fs = FicusFileSystem(alpha.logical, ctx=ROOT_CTX.with_no_cache())

        fs.read_file("/doc")  # warm handles/mounts
        before = system.network.stats.rpcs_sent
        fs.read_file("/doc")
        healthy_rpcs = system.network.stats.rpcs_sent - before

        for _ in range(4):  # mark b as flapping: failing while reachable
            alpha.propagation_daemon.peer_health.record_failure("b")
        assert alpha._degraded_probe("b")
        skips_before = alpha.logical.degraded_skips
        before = system.network.stats.rpcs_sent
        assert fs.read_file("/doc") == b"agreed"
        degraded_rpcs = system.network.stats.rpcs_sent - before
        assert degraded_rpcs < healthy_rpcs
        assert alpha.logical.degraded_skips > skips_before

    def test_degraded_peer_still_probed_when_it_is_the_only_copy(self):
        from repro.core import FicusFileSystem

        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.host("a").fs().write_file("/doc", b"v1")
        system.reconcile_everything()
        b = system.host("b")
        for _ in range(4):
            b.propagation_daemon.peer_health.record_failure("a")
        # b's own replica answers, and when we force remote-only coverage
        # (degrade the only peer) availability still wins over routing
        fs = FicusFileSystem(b.logical, ctx=ROOT_CTX.with_no_cache())
        assert fs.read_file("/doc") == b"v1"


class TestAmbiguousTimeoutAnomaly:
    def test_non_idempotent_ambiguous_failure_fires_anomaly(self):
        net = Network()
        net.add_host("server")
        net.add_host("client")
        ufs_layer = UfsLayer(Ufs.mkfs(BlockDevice(4096), num_inodes=256, clock=net.clock))
        NfsServer(net, "server", ufs_layer)
        plane = HealthPlane("client")
        client = NfsClientLayer(net, "client", "server", health=plane)
        root = client.root()  # before the fault: root() itself makes an RPC
        net.faults.schedule_rpc("client", "server", ["reply_lost"])
        with pytest.raises(RpcTimeout):
            root.create("minted")
        assert plane.anomaly_counts == {"ambiguous_timeout": 1}
        assert plane.recorder.dumps[-1]["detail"]["op"] == "create"


class TestCrashChaos:
    # the CI crash-matrix configuration: default shape + crash epochs
    FAST_CRASH = ChaosConfig(crash_prob=0.25)

    def test_crash_seed_converges_and_recovery_sweeps_clean(self):
        report = run_chaos(31, self.FAST_CRASH)
        assert report.converged, report.problems
        assert report.crashes >= 1
        assert report.restarts == report.crashes
        assert report.flight_dumps == []

    def test_crash_runs_replay_deterministically(self):
        first = run_chaos(31, self.FAST_CRASH)
        second = run_chaos(31, self.FAST_CRASH)
        assert first.crashes == second.crashes
        assert first.tree == second.tree
        assert first.faults_injected == second.faults_injected

    def test_oracle_failure_dumps_flight_recorders(self, tmp_path, monkeypatch):
        """A diverged run must leave renderable evidence bundles behind."""
        import repro.workload.chaos as chaos_module
        from repro.tools.ficus_top import render_dump

        real_check = chaos_module._check_convergence

        def failing_check(system, host_names, report, config):
            real_check(system, host_names, report, config)
            report.problems.append("synthetic oracle failure (test)")

        monkeypatch.setattr(chaos_module, "_check_convergence", failing_check)
        monkeypatch.chdir(tmp_path)
        report = run_chaos(11, ChaosConfig(rounds=2, ops_per_round=2))
        assert not report.converged
        assert len(report.flight_dumps) == 3  # one per host
        for path in report.flight_dumps:
            rendered = render_dump(path)
            assert "chaos_oracle_failure" in rendered

    def test_restarted_host_health_survives_the_reboot(self):
        system, fs = converged_cluster(("a", "b"))
        a = system.host("a")
        a.health_plane.anomaly("fsck_violation", probe=True)
        a.crash()
        assert not a.health().up
        a.restart(system)
        assert a.health().up
        # the plane is the host's black box: counts survive the reboot,
        # and the rebuilt layers are wired back into the same plane
        assert a.health().anomalies == {"fsck_violation": 1}
        assert a.physical.health is a.health_plane
        assert a.logical.health is a.health_plane
        fs2 = a.fs()
        fs2.write_file("/doc", b"post-reboot")
        assert len(a.health_plane.recorder.ring) > 0
