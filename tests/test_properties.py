"""Property-based tests on whole-subsystem invariants.

* The UFS behaves like a simple in-memory model under arbitrary operation
  sequences, and fsck stays clean throughout.
* Directory reconciliation converges: any divergent histories of entry
  inserts/removes merge to identical directories, regardless of the order
  reconciliation happens to run in.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import FicusError
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import ROOT_INO, Ufs, fsck

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

names = st.sampled_from([f"n{i}" for i in range(8)])
payloads = st.binary(max_size=2048)


class UfsModel(RuleBasedStateMachine):
    """UFS against a dict model: files are name -> bytes in one directory
    tree of depth <= 2; fsck must stay clean after every rule."""

    def __init__(self):
        super().__init__()
        self.fs = Ufs.mkfs(BlockDevice(2048), num_inodes=128)
        self.model: dict[str, bytes] = {}
        self.dirs: set[str] = set()

    def _parent_ino(self, path: str) -> int:
        if "/" in path:
            return self.fs.path_lookup("/" + path.split("/")[0])
        return ROOT_INO

    @rule(name=names, data=payloads)
    def create_or_overwrite(self, name, data):
        if name in self.dirs:
            return
        if name not in self.model:
            try:
                self.fs.create(ROOT_INO, name)
            except FicusError:
                return
        ino = self.fs.path_lookup("/" + name)
        self.fs.write_file_atomic_contents(ino, data)
        self.model[name] = data

    @rule(name=names)
    def remove(self, name):
        if name in self.model:
            self.fs.unlink(ROOT_INO, name)
            del self.model[name]

    @rule(name=names)
    def make_directory(self, name):
        if name in self.model or name in self.dirs:
            return
        try:
            self.fs.mkdir(ROOT_INO, name)
        except FicusError:
            return
        self.dirs.add(name)

    @rule(name=names)
    def remove_directory(self, name):
        if name not in self.dirs:
            return
        children = [p for p in self.model if p.startswith(name + "/")]
        if children:
            return
        self.fs.rmdir(ROOT_INO, name)
        self.dirs.discard(name)

    @rule(dirname=names, fname=names, data=payloads)
    def create_nested(self, dirname, fname, data):
        if dirname not in self.dirs:
            return
        path = f"{dirname}/{fname}"
        dir_ino = self.fs.path_lookup("/" + dirname)
        if path not in self.model:
            try:
                self.fs.create(dir_ino, fname)
            except FicusError:
                return
        ino = self.fs.path_lookup("/" + path)
        self.fs.write_file_atomic_contents(ino, data)
        self.model[path] = data

    @rule(src=names, dst=names)
    def rename_top_level(self, src, dst):
        if src not in self.model or src == dst:
            return
        if dst in self.dirs:
            return
        self.fs.rename(ROOT_INO, src, ROOT_INO, dst)
        self.model[dst] = self.model.pop(src)

    @rule()
    def remount(self):
        self.fs = self.fs.remount()

    @invariant()
    def contents_match_model(self):
        for path, expected in self.model.items():
            ino = self.fs.path_lookup("/" + path)
            assert self.fs.read_file(ino) == expected

    @invariant()
    def fsck_clean(self):
        report = fsck(self.fs)
        assert report.clean, report.problems


TestUfsModel = UfsModel.TestCase
TestUfsModel.settings = settings(
    max_examples=15,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


op_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # which host acts
        st.sampled_from(["create", "remove", "mkdir"]),
        names,
    ),
    min_size=1,
    max_size=12,
)


class TestReconConvergence:
    @given(op_lists)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_divergent_histories_converge(self, ops):
        """Partition two replicas, apply an arbitrary op sequence to each
        side, heal, reconcile: the directory trees must be identical."""
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}])
        hosts = ["a", "b"]
        for host_index, op, name in ops:
            fs = system.host(hosts[host_index]).fs()
            try:
                if op == "create":
                    fs.write_file("/" + name, f"{host_index}:{name}".encode())
                elif op == "remove":
                    fs.unlink("/" + name)
                elif op == "mkdir":
                    fs.mkdir("/" + name)
            except FicusError:
                pass
        system.heal()
        system.reconcile_everything(rounds=4)
        tree_a = sorted(system.host("a").fs().walk_tree())
        tree_b = sorted(system.host("b").fs().walk_tree())
        assert tree_a == tree_b

    @given(op_lists)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_recon_direction_order_irrelevant(self, ops):
        """Convergence must not depend on who reconciles first."""
        results = []
        for order in [("a", "b"), ("b", "a")]:
            system = FicusSystem(["a", "b"], daemon_config=QUIET)
            system.partition([{"a"}, {"b"}])
            hosts = ["a", "b"]
            for host_index, op, name in ops:
                fs = system.host(hosts[host_index]).fs()
                try:
                    if op == "create":
                        fs.write_file("/" + name, b"x")
                    elif op == "remove":
                        fs.unlink("/" + name)
                    elif op == "mkdir":
                        fs.mkdir("/" + name)
                except FicusError:
                    pass
            system.heal()
            for _ in range(3):
                for who in order:
                    system.host(who).recon_daemon.tick()
            results.append(sorted(system.host("a").fs().walk_tree()))
        assert results[0] == results[1]
