"""Tests for the logical layer's advisory lock manager."""

import pytest

from repro.errors import PermissionDenied
from repro.logical import LockManager
from repro.util import FicusFileHandle, FileId, VolumeId

FH = FicusFileHandle(VolumeId(1, 1), FileId(1, 1))
FH2 = FicusFileHandle(VolumeId(1, 1), FileId(1, 2))


@pytest.fixture
def locks():
    return LockManager()


class TestSharedLocks:
    def test_multiple_readers(self, locks):
        locks.acquire_shared(FH, "r1")
        locks.acquire_shared(FH, "r2")
        assert locks.is_locked(FH)

    def test_release_all_unlocks(self, locks):
        locks.acquire_shared(FH, "r1")
        locks.release_shared(FH, "r1")
        assert not locks.is_locked(FH)

    def test_reader_blocks_writer(self, locks):
        locks.acquire_shared(FH, "r1")
        with pytest.raises(PermissionDenied):
            locks.acquire_exclusive(FH, "w1")

    def test_reentrant_shared(self, locks):
        locks.acquire_shared(FH, "r1")
        locks.acquire_shared(FH, "r1")
        locks.release_shared(FH, "r1")
        assert locks.is_locked(FH)
        locks.release_shared(FH, "r1")
        assert not locks.is_locked(FH)


class TestExclusiveLocks:
    def test_writer_blocks_writer(self, locks):
        locks.acquire_exclusive(FH, "w1")
        with pytest.raises(PermissionDenied):
            locks.acquire_exclusive(FH, "w2")

    def test_writer_blocks_reader(self, locks):
        locks.acquire_exclusive(FH, "w1")
        with pytest.raises(PermissionDenied):
            locks.acquire_shared(FH, "r1")

    def test_same_owner_upgrade_and_reentry(self, locks):
        locks.acquire_shared(FH, "o")
        locks.acquire_exclusive(FH, "o")  # upgrade allowed for sole owner
        locks.acquire_exclusive(FH, "o")  # re-entrant
        locks.release_exclusive(FH, "o")
        assert locks.is_locked(FH)
        locks.release_exclusive(FH, "o")
        locks.release_shared(FH, "o")
        assert not locks.is_locked(FH)

    def test_release_by_non_owner_ignored(self, locks):
        locks.acquire_exclusive(FH, "w1")
        locks.release_exclusive(FH, "w2")
        assert locks.is_locked(FH)

    def test_independent_files_independent_locks(self, locks):
        locks.acquire_exclusive(FH, "w1")
        locks.acquire_exclusive(FH2, "w2")  # no interference

    def test_replica_bound_handles_share_the_lock(self, locks):
        """Locks key on the LOGICAL file: two handles differing only in
        replica id contend for the same lock."""
        locks.acquire_exclusive(FH.at_replica(1), "w1")
        with pytest.raises(PermissionDenied):
            locks.acquire_exclusive(FH.at_replica(2), "w2")
