"""Unit tests for Ficus identifiers (paper Section 4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.util import (
    MAX_ID,
    FicusFileHandle,
    FileId,
    FileIdAllocator,
    IdAllocator,
    VolumeId,
    VolumeReplicaId,
)

u32 = st.integers(min_value=0, max_value=MAX_ID - 1)


class TestVolumeId:
    def test_round_trip_hex(self):
        vid = VolumeId(7, 42)
        assert VolumeId.from_hex(vid.to_hex()) == vid

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidArgument):
            VolumeId(MAX_ID, 0)
        with pytest.raises(InvalidArgument):
            VolumeId(0, -1)

    def test_ordering_is_total(self):
        assert VolumeId(1, 2) < VolumeId(1, 3) < VolumeId(2, 0)

    def test_bad_hex_rejected(self):
        with pytest.raises(InvalidArgument):
            VolumeId.from_hex("zzz")

    @given(u32, u32)
    def test_hex_round_trip_property(self, alloc, vol):
        vid = VolumeId(alloc, vol)
        assert VolumeId.from_hex(vid.to_hex()) == vid


class TestFileId:
    def test_round_trip_hex(self):
        fid = FileId(3, 99)
        assert FileId.from_hex(fid.to_hex()) == fid

    def test_limits_enforced(self):
        with pytest.raises(InvalidArgument):
            FileId(0, MAX_ID)

    @given(u32, u32)
    def test_hex_round_trip_property(self, issuer, unique):
        fid = FileId(issuer, unique)
        assert FileId.from_hex(fid.to_hex()) == fid


class TestFileHandle:
    def test_logical_strips_replica(self):
        fh = FicusFileHandle(VolumeId(1, 1), FileId(0, 5), replica_id=3)
        assert fh.logical.replica_id is None
        assert fh.logical.file_id == fh.file_id

    def test_at_replica_binds(self):
        fh = FicusFileHandle(VolumeId(1, 1), FileId(0, 5))
        assert fh.at_replica(9).replica_id == 9

    def test_hex_round_trip_with_and_without_replica(self):
        fh = FicusFileHandle(VolumeId(1, 2), FileId(3, 4), replica_id=5)
        assert FicusFileHandle.from_hex(fh.to_hex()) == fh
        logical = fh.logical
        assert FicusFileHandle.from_hex(logical.to_hex()) == logical

    def test_hex_is_valid_ufs_name(self):
        """The handle encoding is used as a UFS pathname component."""
        fh = FicusFileHandle(VolumeId(1, 2), FileId(3, 4), replica_id=5)
        text = fh.to_hex()
        assert "/" not in text and "\x00" not in text
        assert len(text) < 255

    def test_bad_handle_rejected(self):
        with pytest.raises(InvalidArgument):
            FicusFileHandle.from_hex("0.1.2")

    replica_ids = st.one_of(st.none(), st.integers(min_value=0, max_value=MAX_ID - 2))

    @given(u32, u32, u32, u32, replica_ids)
    def test_round_trip_property(self, a, v, i, u, r):
        fh = FicusFileHandle(VolumeId(a, v), FileId(i, u), replica_id=r)
        assert FicusFileHandle.from_hex(fh.to_hex()) == fh

    def test_sentinel_replica_id_rejected(self):
        with pytest.raises(InvalidArgument):
            FicusFileHandle(VolumeId(0, 0), FileId(0, 0), replica_id=MAX_ID - 1)


class TestAllocators:
    def test_volume_ids_unique_per_allocator(self):
        alloc = IdAllocator(allocator_id=10)
        ids = {alloc.new_volume_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(v.allocator_id == 10 for v in ids)

    def test_two_allocators_never_collide(self):
        """Uncoordinated issuance: distinct allocator-ids guarantee global
        uniqueness with zero communication (paper Section 4.2)."""
        a, b = IdAllocator(1), IdAllocator(2)
        ids_a = {a.new_volume_id() for _ in range(50)}
        ids_b = {b.new_volume_id() for _ in range(50)}
        assert not ids_a & ids_b

    def test_file_ids_prefixed_by_replica(self):
        mint = FileIdAllocator(replica_id=4)
        fid = mint.new_file_id()
        assert fid.issuing_replica == 4

    def test_two_replica_mints_never_collide(self):
        m1, m2 = FileIdAllocator(1), FileIdAllocator(2)
        ids = {m1.new_file_id() for _ in range(50)} | {m2.new_file_id() for _ in range(50)}
        assert len(ids) == 100

    def test_restore_skips_issued_ids(self):
        mint = FileIdAllocator(replica_id=1)
        first = [mint.new_file_id() for _ in range(5)]
        recovered = FileIdAllocator(replica_id=1)
        recovered.restore(highest_seen=5)
        fresh = recovered.new_file_id()
        assert fresh not in first
        assert fresh.unique == 6


class TestVolumeReplicaId:
    def test_round_trip(self):
        vr = VolumeReplicaId(VolumeId(8, 9), 2)
        assert VolumeReplicaId.from_hex(vr.to_hex()) == vr

    def test_str_contains_components(self):
        vr = VolumeReplicaId(VolumeId(8, 9), 2)
        assert "8" in str(vr) and "9" in str(vr) and "2" in str(vr)
