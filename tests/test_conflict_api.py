"""The owner-facing conflict API on the facade."""

import pytest

from repro.errors import InvalidArgument
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def conflicted_system():
    system = FicusSystem(["a", "b"], daemon_config=QUIET)
    system.host("a").fs().write_file("/f", b"base")
    system.reconcile_everything()
    system.partition([{"a"}, {"b"}])
    system.host("a").fs().write_file("/f", b"version A")
    system.host("b").fs().write_file("/f", b"version B")
    system.heal()
    system.reconcile_everything()
    return system


class TestConflictApi:
    def test_conflicts_listed(self, conflicted_system):
        host = conflicted_system.host("a")
        reports = host.fs().conflicts(host.conflict_log)
        assert len(reports) == 1
        assert reports[0].name == "f"

    def test_versions_fetched_from_all_replicas(self, conflicted_system):
        host = conflicted_system.host("a")
        report = host.conflict_log.unresolved()[0]
        versions = host.fs().conflict_versions(report)
        assert set(versions.values()) == {b"version A", b"version B"}
        assert set(versions) == {"a", "b"}

    def test_resolution_propagates_and_clears(self, conflicted_system):
        system = conflicted_system
        host = system.host("a")
        fs = host.fs()
        report = host.conflict_log.unresolved()[0]
        fs.resolve_conflict(report, b"A + B merged", host.conflict_log)
        system.reconcile_everything()
        assert system.host("a").fs().read_file("/f") == b"A + B merged"
        assert system.host("b").fs().read_file("/f") == b"A + B merged"
        assert not host.conflict_log.unresolved()
        # the other side's mirror report clears as the resolution arrives
        system.reconcile_everything()
        assert not system.host("b").conflict_log.unresolved()

    def test_resolution_requires_local_replica(self, conflicted_system):
        """A host that stores no replica cannot resolve in place."""
        system = FicusSystem(["server", "client"], root_volume_hosts=["server"], daemon_config=QUIET)
        # fabricate a report against the remote-only client view
        system.host("server").fs().write_file("/f", b"x")
        host = conflicted_system.host("a")
        report = host.conflict_log.unresolved()[0]
        client_fs = system.host("client").fs()
        with pytest.raises((InvalidArgument, Exception)):
            client_fs.resolve_conflict(report, b"nope")
