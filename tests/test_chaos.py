"""Chaos convergence runs and the retry/timeout policy they exercise."""

import pytest

from repro.errors import FileNotFound, RpcTimeout
from repro.net import Network
from repro.nfs import NfsClientLayer, NfsServer
from repro.physical import ficus_fsck
from repro.recon import PullOutcome, pull_file
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import UfsLayer
from repro.workload import RENAME_BUG_SEED, ChaosConfig, run_chaos

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: smaller than the CI module run, so the tier-1 suite stays fast
FAST = ChaosConfig(rounds=4, ops_per_round=3)


class TestChaosConvergence:
    @pytest.mark.parametrize("seed", [11, 17, 23])
    def test_seeded_chaos_converges(self, seed):
        report = run_chaos(seed, FAST)
        assert report.converged, report.problems
        assert report.faults_injected  # the run was not accidentally fault-free
        assert report.ops_attempted > 0

    def test_rename_bug_seed_converges(self):
        """The headline regression: the same-name cross-host rename storm
        replays under chaos and must still converge to a single entry."""
        report = run_chaos(RENAME_BUG_SEED, ChaosConfig(rounds=4, ops_per_round=3, rename_storm=True))
        assert report.converged, report.problems
        assert report.tree.count("/storm-renamed") == 1
        assert "/storm" not in report.tree

    def test_same_seed_replays_exactly(self):
        first = run_chaos(7, FAST)
        second = run_chaos(7, FAST)
        assert first.converged and second.converged
        assert first.faults_injected == second.faults_injected
        assert first.ops_failed == second.ops_failed
        assert first.partitions_formed == second.partitions_formed
        assert first.tree == second.tree

    def test_different_seeds_differ(self):
        a = run_chaos(7, FAST)
        b = run_chaos(8, FAST)
        assert (a.faults_injected, a.tree) != (b.faults_injected, b.tree)


def store_of(system, host_name):
    return next(iter(system.host(host_name).physical.stores.values()))


class TestRetryPolicy:
    def test_pull_file_retries_transient_fault_and_commits(self):
        """A single injected timeout mid-pull is retried by the NFS client
        under the hood and the pull still commits atomically."""
        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
        system.host("alpha").fs().write_file("/doc", b"contents")
        beta_store = store_of(system, "beta")
        alpha_loc = next(loc for loc in system.root_locations if loc.host == "alpha")
        remote = system.host("beta").fabric.volume_root("alpha", alpha_loc.volrep)

        # beta needs the entry first (a pull installs contents, not entries)
        system.reconcile_everything()
        assert system.host("beta").fs().read_file("/doc") == b"contents"

        system.host("alpha").fs().write_file("/doc", b"contents v2")
        system.network.faults.schedule_rpc("beta", "alpha", ["timeout"])
        root_fh = beta_store.root_handle()
        entry = next(e for e in beta_store.read_entries(root_fh) if e.name == "doc")
        result = pull_file(beta_store, root_fh, entry.fh, remote)
        assert result.outcome is PullOutcome.PULLED
        assert system.network.faults.injected == {"rpc_timeout": 1}
        assert system.host("beta").fs().read_file("/doc") == b"contents v2"
        assert ficus_fsck(beta_store).clean

    def test_pull_file_gives_up_cleanly_when_faults_persist(self):
        """Exhausting every retransmission surfaces as UNREACHABLE and
        leaves the local replica exactly as it was — no partial commit."""
        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
        system.host("alpha").fs().write_file("/doc", b"v1")
        system.reconcile_everything()
        system.host("alpha").fs().write_file("/doc", b"v2")

        beta_store = store_of(system, "beta")
        alpha_loc = next(loc for loc in system.root_locations if loc.host == "alpha")
        remote = system.host("beta").fabric.volume_root("alpha", alpha_loc.volrep)
        # enough scripted timeouts to outlast any retransmission schedule
        system.network.faults.schedule_rpc("beta", "alpha", ["timeout"] * 8)
        root_fh = beta_store.root_handle()
        entry = next(e for e in beta_store.read_entries(root_fh) if e.name == "doc")
        result = pull_file(beta_store, root_fh, entry.fh, remote)
        assert result.outcome is PullOutcome.UNREACHABLE
        assert ficus_fsck(beta_store).clean
        # the local replica still holds v1: a fault-free pull has work to do
        system.network.faults.clear()
        retry = pull_file(beta_store, root_fh, entry.fh, remote)
        assert retry.outcome is PullOutcome.PULLED
        assert system.host("beta").fs().read_file("/doc") == b"v2"

    def test_non_idempotent_op_is_not_retried_after_reply_lost(self):
        """create mints fresh ids server-side, so after an ambiguous
        failure (executed, reply lost) the client must surface the timeout
        rather than blindly retransmit."""
        net = Network()
        net.add_host("server")
        net.add_host("client")
        ufs_layer = UfsLayer(Ufs.mkfs(BlockDevice(4096), num_inodes=256, clock=net.clock))
        NfsServer(net, "server", ufs_layer)
        client = NfsClientLayer(net, "client", "server")
        root = client.root()

        sent_before = net.stats.rpcs_sent
        net.faults.schedule_rpc("client", "server", ["reply_lost", "ok"])
        with pytest.raises(RpcTimeout):
            root.create("minted")
        # exactly one attempt went out: the scripted "ok" for a second
        # attempt was never consumed
        assert net.stats.rpcs_sent - sent_before == 1
        assert net.faults.injected == {"reply_lost": 1}
        # and the server really did execute the lost-reply create
        assert ufs_layer.root().lookup("minted") is not None

    def test_idempotent_op_retries_through_reply_lost(self):
        """The same ambiguous failure on an idempotent operation is safely
        retransmitted and succeeds."""
        net = Network()
        net.add_host("server")
        net.add_host("client")
        ufs_layer = UfsLayer(Ufs.mkfs(BlockDevice(4096), num_inodes=256, clock=net.clock))
        NfsServer(net, "server", ufs_layer)
        client = NfsClientLayer(net, "client", "server")
        root = client.root()
        f = root.create("f")
        f.write(0, b"payload")

        net.faults.schedule_rpc("client", "server", ["reply_lost"])
        assert f.read_all() == b"payload"
        assert net.faults.injected == {"reply_lost": 1}


class TestStaleNotes:
    def test_note_for_unlinked_file_does_not_resurrect_storage(self):
        """Chaos-found leak: a new-version note serviced after the local
        entry was unlinked must not materialize storage for the dead entry
        (nothing would ever collect it)."""
        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
        system.host("alpha").fs().write_file("/f", b"v1")
        system.reconcile_everything()
        for name in ("alpha", "beta"):
            system.host(name).propagation_daemon.tick()
        assert system.host("beta").fs().read_file("/f") == b"v1"

        # a new version is noted at beta, but beta unlinks before servicing
        system.host("alpha").fs().write_file("/f", b"v2")
        system.host("beta").fs().unlink("/f")
        beta = system.host("beta")
        beta.propagation_daemon.tick()
        assert beta.propagation_daemon.stats.stale_notes == 1
        report = ficus_fsck(store_of(system, "beta"))
        assert report.clean, report.problems
        with pytest.raises(FileNotFound):
            beta.fs().read_file("/f")
