"""Tests for workload generators and the availability harness."""

import pytest

from repro.errors import InvalidArgument
from repro.net import Network
from repro.workload import (
    AvailabilityExperiment,
    BurstyUpdateGenerator,
    PartitionTraceGenerator,
    SteadyUpdateGenerator,
    ZipfReferenceGenerator,
    apply_epoch,
    expected_availability_one_copy,
    hit_ratio_estimate,
)

HOSTS = ["h0", "h1", "h2", "h3"]


class TestPartitionTraces:
    def test_deterministic_with_seed(self):
        t1 = PartitionTraceGenerator(HOSTS, 0.5, seed=42).trace(20)
        t2 = PartitionTraceGenerator(HOSTS, 0.5, seed=42).trace(20)
        assert [e.groups for e in t1] == [e.groups for e in t2]

    def test_zero_failure_always_connected(self):
        for epoch in PartitionTraceGenerator(HOSTS, 0.0, seed=1).trace(10):
            assert epoch.fully_connected

    def test_full_failure_fully_fragmented(self):
        for epoch in PartitionTraceGenerator(HOSTS, 1.0, seed=1).trace(5):
            assert len(epoch.groups) == len(HOSTS)

    def test_groups_are_a_partition_of_hosts(self):
        for epoch in PartitionTraceGenerator(HOSTS, 0.5, seed=3).trace(50):
            seen = [h for g in epoch.groups for h in g]
            assert sorted(seen) == sorted(HOSTS)

    def test_reachability_matches_groups(self):
        gen = PartitionTraceGenerator(HOSTS, 0.6, seed=9)
        for epoch in gen.trace(30):
            for a in HOSTS:
                for b in HOSTS:
                    same_group = epoch.group_of(a) == epoch.group_of(b)
                    assert epoch.reachable(a, b) == same_group

    def test_apply_epoch_drives_network(self):
        net = Network()
        for host in HOSTS:
            net.add_host(host)
        gen = PartitionTraceGenerator(HOSTS, 1.0, seed=0)
        apply_epoch(net, gen.next_epoch())
        assert not net.reachable("h0", "h1")
        gen0 = PartitionTraceGenerator(HOSTS, 0.0, seed=0)
        apply_epoch(net, gen0.next_epoch())
        assert net.reachable("h0", "h1")

    def test_bad_probability_rejected(self):
        with pytest.raises(InvalidArgument):
            PartitionTraceGenerator(HOSTS, 1.5)

    def test_expected_availability_oracle(self):
        gen = PartitionTraceGenerator(HOSTS, 1.0, seed=0)
        epoch = gen.next_epoch()
        assert expected_availability_one_copy(epoch, "h0", ["h0"])
        assert not expected_availability_one_copy(epoch, "h0", ["h1"])


class TestZipfLocality:
    def test_trace_length(self):
        gen = ZipfReferenceGenerator(4, 8, skew=1.0, seed=0)
        assert len(gen.trace(500)) == 500

    def test_high_skew_concentrates_references(self):
        flat = ZipfReferenceGenerator(4, 25, skew=0.0, seed=1).trace(2000)
        skewed = ZipfReferenceGenerator(4, 25, skew=1.5, seed=1).trace(2000)
        assert hit_ratio_estimate(skewed, 10) > hit_ratio_estimate(flat, 10)

    def test_deterministic_with_seed(self):
        t1 = ZipfReferenceGenerator(2, 5, seed=7).trace(100)
        t2 = ZipfReferenceGenerator(2, 5, seed=7).trace(100)
        assert t1 == t2

    def test_paths_well_formed(self):
        gen = ZipfReferenceGenerator(2, 3, seed=0)
        for ref in gen.trace(50):
            assert ref.path.startswith("dir") and "/" in ref.path
        assert len(gen.directories) == 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidArgument):
            ZipfReferenceGenerator(0, 5)
        with pytest.raises(InvalidArgument):
            ZipfReferenceGenerator(1, 1, skew=-1)


class TestUpdateGenerators:
    def test_bursts_cluster_in_time(self):
        gen = BurstyUpdateGenerator(["/f"], burst_size=5, intra_burst_gap=0.1,
                                    mean_burst_interval=100.0, seed=3)
        events = gen.schedule(1000.0)
        assert events
        # events come in runs of 5 spaced 0.1s apart
        gaps = [b.at - a.at for a, b in zip(events, events[1:])]
        small = [g for g in gaps if g < 1.0]
        assert len(small) >= len(events) // 2

    def test_steady_updates_evenly_spaced(self):
        gen = SteadyUpdateGenerator(["/f"], interval=10.0)
        events = gen.schedule(100.0)
        assert len(events) == 9
        gaps = {round(b.at - a.at, 6) for a, b in zip(events, events[1:])}
        assert gaps == {10.0}

    def test_events_within_window(self):
        gen = BurstyUpdateGenerator(["/a", "/b"], seed=5)
        for event in gen.schedule(500.0, start=100.0):
            assert 100.0 <= event.at < 600.0

    def test_empty_paths_rejected(self):
        with pytest.raises(InvalidArgument):
            BurstyUpdateGenerator([])
        with pytest.raises(InvalidArgument):
            SteadyUpdateGenerator([])


class TestAvailabilityExperiment:
    def test_one_copy_dominates_all_policies(self):
        results = AvailabilityExperiment(
            num_hosts=5, link_failure_prob=0.4, epochs=40, seed=11
        ).run()
        one = results["one-copy"]
        for name, stats in results.items():
            assert one.read_availability >= stats.read_availability
            assert one.write_availability >= stats.write_availability

    def test_one_copy_is_total_when_requester_hosts_replica(self):
        results = AvailabilityExperiment(
            num_hosts=4, link_failure_prob=0.6, epochs=30, seed=2
        ).run()
        # every requester hosts a replica, so one-copy never fails
        assert results["one-copy"].read_availability == 1.0
        assert results["one-copy"].write_availability == 1.0

    def test_conflicts_are_the_price_of_availability(self):
        results = AvailabilityExperiment(
            num_hosts=5, link_failure_prob=0.5, epochs=60, seed=4
        ).run()
        assert results["one-copy"].conflicts > 0
        assert results["majority-voting"].conflicts == 0

    def test_no_failures_means_everyone_available(self):
        results = AvailabilityExperiment(
            num_hosts=4, link_failure_prob=0.0, epochs=10, seed=0
        ).run()
        for stats in results.values():
            assert stats.read_availability == 1.0
            assert stats.write_availability == 1.0
