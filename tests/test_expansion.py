"""Dynamic replica placement (paper Section 3.1 / 4.3)."""

import pytest

from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestRootVolumeExpansion:
    def test_new_replica_catches_up(self):
        system = FicusSystem(["a", "b", "c"], root_volume_hosts=["a", "b"], daemon_config=QUIET)
        fs_a = system.host("a").fs()
        fs_a.makedirs("/docs")
        fs_a.write_file("/docs/x", b"existing data")
        system.reconcile_everything()
        location = system.add_root_replica("c")
        assert location.host == "c"
        # c now serves the whole tree from ITS OWN replica
        system.partition([{"c"}, {"a", "b"}])
        assert system.host("c").fs().read_file("/docs/x") == b"existing data"

    def test_new_replica_participates_in_updates(self):
        system = FicusSystem(["a", "b", "c"], root_volume_hosts=["a"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"v1")
        system.add_root_replica("c")
        # an update made at c's replica reaches a through recon
        system.partition([{"c"}, {"a", "b"}])
        system.host("c").fs().write_file("/from-c", b"written at the new replica")
        system.heal()
        system.reconcile_everything()
        assert system.host("a").fs().read_file("/from-c") == b"written at the new replica"

    def test_replica_ids_stay_unique(self):
        system = FicusSystem(["a", "b", "c"], root_volume_hosts=["a"], daemon_config=QUIET)
        loc_b = system.add_root_replica("b")
        loc_c = system.add_root_replica("c")
        ids = [loc.volrep.replica_id for loc in system.root_locations]
        assert len(ids) == len(set(ids)) == 3
        assert loc_b.volrep.replica_id != loc_c.volrep.replica_id

    def test_availability_improves_after_expansion(self):
        system = FicusSystem(["a", "b"], root_volume_hosts=["a"], daemon_config=QUIET)
        system.host("a").fs().write_file("/f", b"x")
        # before: b depends on a
        system.partition([{"a"}, {"b"}])
        from repro.errors import AllReplicasUnavailable

        with pytest.raises(AllReplicasUnavailable):
            system.host("b").fs().read_file("/f")
        system.heal()
        system.add_root_replica("b")
        system.partition([{"a"}, {"b"}])
        assert system.host("b").fs().read_file("/f") == b"x"


class TestGraftedVolumeExpansion:
    def test_expand_and_register_in_graft_point(self):
        system = FicusSystem(["a", "b", "c"], daemon_config=QUIET)
        volume, locations = system.create_volume(["b"])
        a = system.host("a")
        a.logical.create_graft_point(a.root(), "proj", volume, locations)
        a.fs().write_file("/proj/data", b"original")
        # place a second replica on c and register it in the graft point
        new_loc = system.add_volume_replica(volume, locations, "c")
        a.logical.add_graft_location(a.root(), "proj", new_loc)
        # with b gone, the graft falls over to c's (synced) replica
        system.network.set_host_up("b", False)
        a.logical.grafter.ungraft(volume)
        assert a.fs().read_file("/proj/data") == b"original"
        assert a.logical.grafter.current(volume).bound.host == "c"
