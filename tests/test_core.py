"""Tests for the public FicusFileSystem facade."""

import pytest

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def system():
    return FicusSystem(["alpha", "beta"], daemon_config=QUIET)


@pytest.fixture
def fs(system):
    return system.host("alpha").fs()


class TestFileIo:
    def test_write_and_read(self, fs):
        fs.write_file("/notes.txt", b"hello ficus")
        assert fs.read_file("/notes.txt") == b"hello ficus"

    def test_append(self, fs):
        fs.write_file("/log", b"one\n")
        fs.append_file("/log", b"two\n")
        assert fs.read_file("/log") == b"one\ntwo\n"

    def test_open_read_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.open("/ghost", "r")

    def test_w_truncates(self, fs):
        fs.write_file("/f", b"a long first version")
        fs.write_file("/f", b"short")
        assert fs.read_file("/f") == b"short"

    def test_seek_tell_partial_reads(self, fs):
        fs.write_file("/f", b"0123456789")
        with fs.open("/f") as f:
            f.seek(4)
            assert f.read(3) == b"456"
            assert f.tell() == 7
            assert f.read() == b"789"

    def test_read_on_write_only_semantics(self, fs):
        with fs.open("/f", "w") as f:
            with pytest.raises(InvalidArgument):
                f.seek(-1)

    def test_write_on_read_handle_rejected(self, fs):
        fs.write_file("/f", b"x")
        with fs.open("/f", "r") as f:
            with pytest.raises(InvalidArgument):
                f.write(b"nope")

    def test_io_after_close_rejected(self, fs):
        fs.write_file("/f", b"x")
        f = fs.open("/f")
        f.close()
        with pytest.raises(InvalidArgument):
            f.read()

    def test_truncate_via_handle(self, fs):
        fs.write_file("/f", b"0123456789")
        with fs.open("/f", "r+") as f:
            f.truncate(4)
        assert fs.read_file("/f") == b"0123"

    def test_open_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.open("/d", "r")

    def test_one_session_one_version_bump(self, fs, system):
        with fs.open("/f", "w") as f:
            for i in range(10):
                f.write(b"chunk")
        # ten writes, one update session: exactly one vv entry of count 1
        alpha = system.host("alpha")
        volrep = system.root_locations[0].volrep
        store = alpha.physical.store_for(volrep)
        entries = store.read_entries(store.root_handle())
        fh = next(e.fh for e in entries if e.name == "f")
        assert store.read_file_aux(store.root_handle(), fh).vv.total_updates == 1


class TestNamespace:
    def test_mkdir_listdir(self, fs):
        fs.mkdir("/docs")
        fs.write_file("/docs/a", b"1")
        assert fs.listdir("/") == ["docs"]
        assert fs.listdir("/docs") == ["a"]

    def test_makedirs(self, fs):
        fs.makedirs("/a/b/c")
        fs.write_file("/a/b/c/leaf", b"x")
        assert fs.read_file("/a/b/c/leaf") == b"x"
        fs.makedirs("/a/b/c")  # idempotent

    def test_unlink_and_rmdir(self, fs):
        fs.mkdir("/d")
        fs.write_file("/d/f", b"x")
        fs.unlink("/d/f")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rename(self, fs):
        fs.write_file("/old", b"content")
        fs.rename("/old", "/new")
        assert fs.read_file("/new") == b"content"
        assert not fs.exists("/old")

    def test_link(self, fs):
        fs.write_file("/orig", b"shared")
        fs.link("/orig", "/alias")
        assert fs.read_file("/alias") == b"shared"

    def test_symlink_and_readlink(self, fs):
        fs.symlink("/target/path", "/lnk")
        assert fs.readlink("/lnk") == "/target/path"

    def test_stat(self, fs):
        fs.write_file("/f", b"12345")
        st = fs.stat("/f")
        assert st.is_file and st.size == 5
        fs.mkdir("/d")
        assert fs.stat("/d").is_dir

    def test_exists(self, fs):
        assert not fs.exists("/nope")
        fs.write_file("/yes", b"")
        assert fs.exists("/yes")

    def test_walk_tree(self, fs):
        fs.makedirs("/a/b")
        fs.write_file("/a/b/f", b"x")
        fs.write_file("/top", b"y")
        assert sorted(fs.walk_tree()) == ["/a", "/a/b", "/a/b/f", "/top"]

    def test_dot_paths_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.read_file("/a/../b")

    def test_listdir_of_file_rejected(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.listdir("/f")


class TestLocking:
    def test_concurrent_writers_on_one_host_blocked(self, fs):
        f1 = fs.open("/f", "w")
        with pytest.raises(PermissionDenied):
            fs.open("/f", "a")
        f1.close()
        fs.open("/f", "a").close()

    def test_readers_share(self, fs):
        fs.write_file("/f", b"x")
        r1 = fs.open("/f")
        r2 = fs.open("/f")
        r1.close()
        r2.close()

    def test_writer_blocked_by_reader(self, fs):
        fs.write_file("/f", b"x")
        reader = fs.open("/f")
        with pytest.raises(PermissionDenied):
            fs.open("/f", "w")
        reader.close()

    def test_locks_do_not_cross_hosts(self, system):
        """Concurrency control is local: one-copy availability forbids
        global mutual exclusion, so writers on different hosts are NOT
        serialized (conflicts are detected later instead)."""
        fs_a = system.host("alpha").fs()
        fs_b = system.host("beta").fs()
        fs_a.write_file("/f", b"base")
        system.reconcile_everything()
        wa = fs_a.open("/f", "a")
        wb = fs_b.open("/f", "a")  # allowed!
        wa.write(b"-alpha")
        wb.write(b"-beta")
        wa.close()
        wb.close()


class TestCrossHostVisibility:
    def test_write_on_alpha_read_on_beta(self, system):
        fs_a = system.host("alpha").fs()
        fs_b = system.host("beta").fs()
        fs_a.write_file("/shared.txt", b"cross-host")
        assert fs_b.read_file("/shared.txt") == b"cross-host"

    def test_namespace_converges_via_recon(self, system):
        fs_a = system.host("alpha").fs()
        fs_b = system.host("beta").fs()
        fs_a.makedirs("/proj/src")
        fs_a.write_file("/proj/src/main.py", b"print('hi')")
        system.reconcile_everything()
        system.partition([{"alpha"}, {"beta"}])
        assert fs_b.read_file("/proj/src/main.py") == b"print('hi')"
