"""Tests for the baseline replica-control protocols."""

import pytest

from repro.baselines import (
    MajorityVotingRegister,
    OneCopyRegister,
    PrimaryCopyRegister,
    QuorumConsensusRegister,
    WeightedVotingRegister,
)
from repro.errors import InvalidArgument, QuorumNotAvailable
from repro.net import Network

HOSTS = ["h0", "h1", "h2", "h3", "h4"]


@pytest.fixture
def net():
    network = Network()
    for host in HOSTS:
        network.add_host(host)
    return network


class TestPrimaryCopy:
    def test_write_through_primary_visible_everywhere(self, net):
        reg = PrimaryCopyRegister(net, HOSTS, "r")
        reg.write("h3", b"v1")
        assert reg.read("h4") == b"v1"
        assert all(reg.state[h].value == b"v1" for h in HOSTS)

    def test_write_blocked_without_primary(self, net):
        reg = PrimaryCopyRegister(net, HOSTS, "r")
        net.partition([{"h0"}, {"h1", "h2", "h3", "h4"}])  # h0 is primary
        with pytest.raises(QuorumNotAvailable):
            reg.write("h1", b"v")

    def test_reads_survive_primary_loss(self, net):
        reg = PrimaryCopyRegister(net, HOSTS, "r")
        reg.write("h0", b"v")
        net.partition([{"h0"}, {"h1", "h2", "h3", "h4"}])
        assert reg.read("h1") == b"v"

    def test_custom_primary_validated(self, net):
        with pytest.raises(InvalidArgument):
            PrimaryCopyRegister(net, HOSTS, "r", primary="nowhere")


class TestMajorityVoting:
    def test_majority_required_for_write(self, net):
        reg = MajorityVotingRegister(net, HOSTS, "r")
        net.partition([{"h0", "h1"}, {"h2", "h3", "h4"}])
        with pytest.raises(QuorumNotAvailable):
            reg.write("h0", b"minority side")
        reg.write("h2", b"majority side")  # 3 of 5

    def test_read_returns_latest_version(self, net):
        reg = MajorityVotingRegister(net, HOSTS, "r")
        reg.write("h0", b"v1")
        reg.write("h1", b"v2")
        assert reg.read("h4") == b"v2"

    def test_no_split_brain(self, net):
        """Two disjoint groups can never both write."""
        reg = MajorityVotingRegister(net, HOSTS, "r")
        net.partition([{"h0", "h1", "h2"}, {"h3", "h4"}])
        reg.write("h0", b"majority")
        with pytest.raises(QuorumNotAvailable):
            reg.write("h3", b"minority")


class TestWeightedVoting:
    def test_weights_shift_availability(self, net):
        # h0 carries 3 of 7 votes; r=w=4
        weights = {"h0": 3, "h1": 1, "h2": 1, "h3": 1, "h4": 1}
        reg = WeightedVotingRegister(net, HOSTS, "r", weights=weights, read_quorum=4, write_quorum=4)
        net.partition([{"h0", "h1"}, {"h2", "h3", "h4"}])
        reg.write("h0", b"heavy side has 4 votes")  # 3+1 = 4 ✓
        with pytest.raises(QuorumNotAvailable):
            reg.write("h2", b"light side has 3 votes")

    def test_invalid_quorum_intersection_rejected(self, net):
        with pytest.raises(InvalidArgument):
            WeightedVotingRegister(net, HOSTS, "r", read_quorum=2, write_quorum=2)


class TestQuorumConsensus:
    def test_read_one_write_all_configuration(self, net):
        reg = QuorumConsensusRegister(net, HOSTS, "r", read_quorum=1, write_quorum=5)
        reg.write("h0", b"v")
        net.partition([{"h0"}, {"h1", "h2", "h3", "h4"}])
        assert reg.read("h0") == b"v"  # read quorum of 1
        with pytest.raises(QuorumNotAvailable):
            reg.write("h1", b"needs everyone")

    def test_default_majorities(self, net):
        reg = QuorumConsensusRegister(net, HOSTS, "r")
        net.partition([{"h0", "h1", "h2"}, {"h3", "h4"}])
        reg.write("h0", b"x")
        with pytest.raises(QuorumNotAvailable):
            reg.read("h3")


class TestOneCopy:
    def test_single_reachable_replica_suffices(self, net):
        reg = OneCopyRegister(net, HOSTS, "r")
        net.partition([{h} for h in HOSTS])  # total fragmentation
        for host in HOSTS:
            reg.write(host, f"local-{host}".encode())  # every host can write!
            assert reg.read(host) == f"local-{host}".encode()

    def test_conflicts_detected_on_heal(self, net):
        reg = OneCopyRegister(net, HOSTS, "r")
        reg.write("h0", b"base")
        net.partition([{"h0", "h1"}, {"h2", "h3", "h4"}])
        reg.write("h0", b"left")
        reg.write("h2", b"right")
        net.heal()
        conflicts = reg.reconcile("h0")
        assert conflicts >= 1
        assert reg.conflicts_detected >= 1
        # after reconciliation all sites agree
        assert len({reg.state[h].value for h in HOSTS}) == 1

    def test_reconcile_converges_version_vectors(self, net):
        reg = OneCopyRegister(net, HOSTS, "r")
        net.partition([{"h0"}, {"h1", "h2", "h3", "h4"}])
        reg.write("h0", b"a")
        reg.write("h1", b"b")
        net.heal()
        reg.reconcile("h0")
        vvs = {reg.state[h].vv for h in HOSTS}
        assert len(vvs) == 1

    def test_strictly_greater_availability(self, net):
        """The paper's headline claim, checked exhaustively: in every
        partition configuration, one-copy permits an operation whenever
        ANY other policy does (and sometimes when none do)."""
        one = OneCopyRegister(net, HOSTS, "one")
        others = [
            PrimaryCopyRegister(net, HOSTS, "pri"),
            MajorityVotingRegister(net, HOSTS, "maj"),
            QuorumConsensusRegister(net, HOSTS, "qc"),
        ]
        partitions = [
            [{"h0", "h1", "h2", "h3", "h4"}],
            [{"h0", "h1", "h2"}, {"h3", "h4"}],
            [{"h0"}, {"h1", "h2"}, {"h3", "h4"}],
            [{h} for h in HOSTS],
        ]
        for groups in partitions:
            net.partition([set(g) for g in groups])
            for requester in HOSTS:
                try:
                    one.write(requester, b"w")
                    one_ok = True
                except QuorumNotAvailable:
                    one_ok = False
                assert one_ok, "one-copy must always succeed with self reachable"
                for other in others:
                    try:
                        other.write(requester, b"w")
                        other_ok = True
                    except QuorumNotAvailable:
                        other_ok = False
                    # one-copy dominates: other_ok implies one_ok
                    assert not (other_ok and not one_ok)
        net.heal()
