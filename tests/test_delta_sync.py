"""Tests for the incremental sync plane: subtree pruning and block deltas.

The tentpole invariant: pruning and block deltas change what reconciliation
*costs*, never what it *does*.  Every test here pins either a cost bound
(zero directory reads when converged, one block copied for a one-block
change) or a safety property (fallbacks, mid-pull partition atomicity,
notification loop guard).
"""

import pytest

from repro.errors import HostUnreachable, NotSupported
from repro.physical.wire import DELTA_BLOCK_SIZE
from repro.recon import PullOutcome, pull_file, reconcile_directory, reconcile_subtree
from repro.sim import DaemonConfig, FicusSystem

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def system():
    return FicusSystem(["alpha", "beta"], daemon_config=QUIET)


def volrep_of(system, host_name):
    return next(loc.volrep for loc in system.root_locations if loc.host == host_name)


def store_of(system, host_name):
    return system.host(host_name).physical.store_for(volrep_of(system, host_name))


def remote_root_vnode(system, at_host, of_host):
    host = system.host(at_host)
    return host.fabric.volume_root(of_host, volrep_of(system, of_host))


def seeded_file(system, size=10 * DELTA_BLOCK_SIZE):
    """A large file present on both hosts, returned as (fh, contents)."""
    contents = bytes((i * 7) % 256 for i in range(size))
    f = system.host("alpha").root().create("big")
    f.write(0, contents)
    system.reconcile_everything()
    return f.fh, contents


class _RemoteDirProxy:
    """Wraps a remote directory vnode, intercepting chosen operations."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestBlockDeltaPull:
    def test_single_block_change_copies_one_block(self, system):
        fh, contents = seeded_file(system)
        mutated = bytearray(contents)
        mutated[3 * DELTA_BLOCK_SIZE + 5] ^= 0xFF
        system.host("alpha").root().lookup("big").write(0, bytes(mutated))

        beta_store = store_of(system, "beta")
        root_fh = beta_store.root_handle()
        remote = remote_root_vnode(system, "beta", "alpha")
        result = pull_file(beta_store, root_fh, fh, remote)
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == DELTA_BLOCK_SIZE
        assert result.bytes_saved == len(contents) - DELTA_BLOCK_SIZE
        assert beta_store.file_vnode(root_fh, fh).read_all() == bytes(mutated)

    def test_append_copies_only_new_blocks(self, system):
        fh, contents = seeded_file(system)
        grown = contents + b"tail" * 100
        system.host("alpha").root().lookup("big").write(0, grown)

        beta_store = store_of(system, "beta")
        root_fh = beta_store.root_handle()
        result = pull_file(
            beta_store, root_fh, fh, remote_root_vnode(system, "beta", "alpha")
        )
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == len(grown) - len(contents)
        assert beta_store.file_vnode(root_fh, fh).read_all() == grown

    def test_truncation_propagates_without_refetch(self, system):
        fh, contents = seeded_file(system)
        shrunk = contents[: 4 * DELTA_BLOCK_SIZE]
        alpha_file = system.host("alpha").root().lookup("big")
        alpha_file.truncate(len(shrunk))

        beta_store = store_of(system, "beta")
        root_fh = beta_store.root_handle()
        result = pull_file(
            beta_store, root_fh, fh, remote_root_vnode(system, "beta", "alpha")
        )
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == 0  # every surviving block matched locally
        assert beta_store.file_vnode(root_fh, fh).read_all() == shrunk

    def test_first_pull_is_whole_file(self, system):
        """A replica with no local copy has nothing to diff against."""
        f = system.host("alpha").root().create("f")
        f.write(0, b"version one")
        beta_store = store_of(system, "beta")
        remote = remote_root_vnode(system, "beta", "alpha")
        reconcile_directory(
            system.host("beta").physical, beta_store, beta_store.root_handle(), remote
        )
        result = pull_file(beta_store, beta_store.root_handle(), f.fh, remote)
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == len(b"version one")
        assert result.bytes_saved == 0

    def test_remote_without_delta_ops_falls_back_to_whole_file(self, system):
        fh, contents = seeded_file(system)
        mutated = contents[:100] + b"!" + contents[101:]
        system.host("alpha").root().lookup("big").write(0, mutated)

        class Legacy(_RemoteDirProxy):
            def block_digests(self, fh, ctx=None):
                raise NotSupported("block_digests")

        beta_store = store_of(system, "beta")
        root_fh = beta_store.root_handle()
        result = pull_file(
            beta_store, root_fh, fh, Legacy(remote_root_vnode(system, "beta", "alpha"))
        )
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == len(mutated)  # the whole file
        assert beta_store.file_vnode(root_fh, fh).read_all() == mutated

    def test_out_of_band_change_falls_back_to_whole_file(self, system):
        """Signatures describing a different version than the attribute
        fetch promised (out-of-band recon between the two calls) must not
        be spliced — the pull replays as a whole-file copy."""
        fh, contents = seeded_file(system)
        mutated = bytearray(contents)
        mutated[0] ^= 0xFF
        system.host("alpha").root().lookup("big").write(0, bytes(mutated))

        class OutOfBand(_RemoteDirProxy):
            def block_digests(self, fh, ctx=None):
                reply = self._inner.block_digests(fh)
                reply.vv = reply.vv.bump(99)  # a version we did not fetch attrs for
                return reply

        beta_store = store_of(system, "beta")
        root_fh = beta_store.root_handle()
        result = pull_file(
            beta_store, root_fh, fh, OutOfBand(remote_root_vnode(system, "beta", "alpha"))
        )
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == len(mutated)  # fell back to the whole file
        assert beta_store.file_vnode(root_fh, fh).read_all() == bytes(mutated)

    def test_mid_pull_partition_leaves_old_contents_intact(self, system):
        """The delta lands in the shadow and commits atomically: a
        partition after the signature fetch but before the block fetch
        leaves the local replica exactly as it was."""
        fh, contents = seeded_file(system)
        mutated = bytearray(contents)
        mutated[2 * DELTA_BLOCK_SIZE] ^= 0xFF
        system.host("alpha").root().lookup("big").write(0, bytes(mutated))

        class PartitionsMidPull(_RemoteDirProxy):
            def read_blocks(self, fh, indices, ctx=None):
                raise HostUnreachable("partitioned mid-pull")

        beta_store = store_of(system, "beta")
        root_fh = beta_store.root_handle()
        result = pull_file(
            beta_store,
            root_fh,
            fh,
            PartitionsMidPull(remote_root_vnode(system, "beta", "alpha")),
        )
        assert result.outcome is PullOutcome.UNREACHABLE
        assert beta_store.file_vnode(root_fh, fh).read_all() == contents  # untouched

        # and the next (healed) pull still succeeds as a delta
        result = pull_file(
            beta_store, root_fh, fh, remote_root_vnode(system, "beta", "alpha")
        )
        assert result.outcome is PullOutcome.PULLED
        assert result.bytes_copied == DELTA_BLOCK_SIZE
        assert beta_store.file_vnode(root_fh, fh).read_all() == bytes(mutated)


def build_tree(system, dirs=6, files_per_dir=2):
    fs = system.host("alpha").fs()
    for d in range(dirs):
        fs.mkdir(f"/d{d}")
        for f in range(files_per_dir):
            fs.write_file(f"/d{d}/f{f}", bytes(50 * (d + f + 1)))
    system.reconcile_everything()
    system.reconcile_everything()


class TestSubtreePruning:
    def test_converged_system_reconciles_with_zero_directory_reads(self):
        system = FicusSystem(["alpha", "beta", "gamma"], daemon_config=QUIET)
        build_tree(system)
        reads_before = {
            name: host.physical.counters.by_op.get("read", 0)
            for name, host in system.hosts.items()
        }
        for host in system.hosts.values():
            for result in host.recon_daemon.tick():
                assert result.directories_reconciled == 0
                assert result.subtrees_pruned >= 1
                assert result.files_pulled == 0
        for name, host in system.hosts.items():
            assert host.physical.counters.by_op.get("read", 0) == reads_before[name], (
                f"{name} served directory reads during a converged recon round"
            )

    def test_no_change_round_is_constant_rpcs(self, system):
        build_tree(system, dirs=10)
        before = system.network.stats.rpcs_sent
        results = system.host("beta").recon_daemon.tick()
        assert len(results) == 1
        # volume root fetch + (possibly) the replica-name lookup + one probe
        assert system.network.stats.rpcs_sent - before <= 3

    def test_descends_only_into_changed_subtrees(self, system):
        build_tree(system, dirs=8)
        system.host("alpha").fs().write_file("/d3/f0", b"fresh contents")
        beta_volrep = volrep_of(system, "beta")
        alpha_loc = next(loc for loc in system.root_locations if loc.host == "alpha")
        result = system.host("beta").recon_daemon.reconcile_with(beta_volrep, alpha_loc)
        # root diverged (child digest changed) and d3 diverged; the other
        # seven subtrees were pruned without a directory read
        assert result.directories_reconciled == 2
        assert result.subtrees_pruned >= 7
        assert result.files_pulled == 1
        assert system.host("beta").fs().read_file("/d3/f0") == b"fresh contents"

    def test_legacy_remote_degrades_to_full_walk(self, system):
        build_tree(system, dirs=4)

        class LegacyRoot(_RemoteDirProxy):
            def sync_probe(self, fh=None, ctx=None):
                raise NotSupported("sync_probe")

        beta = system.host("beta")
        result = reconcile_subtree(
            beta.physical,
            volrep_of(system, "beta"),
            LegacyRoot(remote_root_vnode(system, "beta", "alpha")),
            "alpha",
        )
        assert result.subtrees_pruned == 0
        assert result.directories_reconciled == 5  # root + four subdirs

    def test_pruning_preserves_convergence_semantics(self):
        """Divergence under partition still converges to identical trees."""
        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
        build_tree(system, dirs=4)
        system.partition([{"alpha"}, {"beta"}])
        system.host("alpha").fs().write_file("/d0/new-a", b"a side")
        system.host("beta").fs().write_file("/d2/new-b", b"b side")
        system.heal()
        system.reconcile_everything()
        a, b = system.host("alpha").fs(), system.host("beta").fs()
        assert sorted(a.listdir("/d0")) == sorted(b.listdir("/d0"))
        assert sorted(a.listdir("/d2")) == sorted(b.listdir("/d2"))
        assert a.read_file("/d2/new-b") == b"b side"
        assert b.read_file("/d0/new-a") == b"a side"


class TestSyncNotifications:
    def test_recon_install_invalidates_peer_caches_without_pull_notes(self):
        """A reconciliation install routes through the notification path:
        peers' attribute caches drop the directory, but — because the
        notification is marked origin="sync" — no peer mints a pull note,
        which is what prevents the two pullers from looping."""
        system = FicusSystem(["alpha", "beta", "gamma"], daemon_config=QUIET)
        system.host("alpha").fs().write_file("/f", b"contents")
        gamma = system.host("gamma")
        # prime gamma's attribute cache with the root directory's batch,
        # then forget the original update's own notifications
        assert gamma.fs().read_file("/f") == b"contents"
        for note in gamma.physical.pending_new_versions():
            gamma.physical.clear_new_version(note.key)
        invalidations_before = gamma.logical.attr_cache.stats.invalidations

        beta_volrep = volrep_of(system, "beta")
        alpha_loc = next(loc for loc in system.root_locations if loc.host == "alpha")
        result = system.host("beta").recon_daemon.reconcile_with(beta_volrep, alpha_loc)
        assert result.files_pulled == 1

        assert gamma.logical.attr_cache.stats.invalidations > invalidations_before
        assert gamma.physical.new_version_cache_size == 0  # the loop guard

    def test_converged_system_sends_no_sync_notifications(self):
        system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
        build_tree(system, dirs=3)
        sent_before = system.network.stats.datagrams_sent
        system.reconcile_everything()
        assert system.network.stats.datagrams_sent == sent_before

    def test_daemon_driven_system_settles(self):
        """With all daemons live, one update propagates everywhere and the
        system goes quiet — no notification ping-pong between pullers."""
        system = FicusSystem(
            ["alpha", "beta", "gamma"],
            daemon_config=DaemonConfig(propagation_period=2.0, recon_period=30.0),
        )
        system.host("alpha").fs().write_file("/f", b"v1")
        system.run_for(120)
        for host in system.hosts.values():
            assert host.physical.new_version_cache_size == 0
        sent_settled = system.network.stats.datagrams_sent
        system.run_for(300)
        assert system.network.stats.datagrams_sent == sent_settled
