"""Unit tests for the simulated network."""

import pytest

from repro.errors import HostUnreachable, InvalidArgument, RpcTimeout, ServiceUnavailable
from repro.net import FaultPlane, LinkFaults, Network


@pytest.fixture
def net():
    network = Network()
    for host in ["a", "b", "c", "d"]:
        network.add_host(host)
    return network


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        with pytest.raises(InvalidArgument):
            net.add_host("a")

    def test_unknown_host_rejected(self, net):
        with pytest.raises(InvalidArgument):
            net.reachable("a", "ghost")

    def test_fully_connected_by_default(self, net):
        assert net.reachable("a", "d")
        assert not net.partitioned

    def test_partition_splits_groups(self, net):
        net.partition([{"a", "b"}, {"c", "d"}])
        assert net.reachable("a", "b")
        assert not net.reachable("a", "c")
        assert net.partitioned

    def test_unlisted_host_isolated(self, net):
        net.partition([{"a", "b"}])
        assert not net.reachable("c", "a")
        assert not net.reachable("c", "d")
        assert net.reachable("c", "c")

    def test_overlapping_groups_rejected(self, net):
        with pytest.raises(InvalidArgument):
            net.partition([{"a", "b"}, {"b", "c"}])

    def test_heal_restores_connectivity(self, net):
        net.partition([{"a"}, {"b"}])
        net.heal()
        assert net.reachable("a", "b")

    def test_downed_host_unreachable_even_same_group(self, net):
        net.set_host_up("b", False)
        assert not net.reachable("a", "b")
        assert not net.reachable("b", "a")
        assert not net.reachable("b", "b")
        net.set_host_up("b", True)
        assert net.reachable("a", "b")

    def test_reachable_set_filters(self, net):
        net.partition([{"a", "b"}, {"c", "d"}])
        assert net.reachable_set("a", ["b", "c", "d", "a"]) == ["b", "a"]


class TestRpc:
    def test_call_dispatches(self, net):
        net.register_rpc("b", "echo", lambda x: x * 2)
        assert net.rpc("a", "b", "echo", 21) == 42
        assert net.stats.rpcs_sent == 1

    def test_call_across_partition_fails(self, net):
        net.register_rpc("b", "echo", lambda x: x)
        net.partition([{"a"}, {"b"}])
        with pytest.raises(HostUnreachable):
            net.rpc("a", "b", "echo", 1)
        assert net.stats.rpcs_failed == 1

    def test_call_to_missing_service_is_not_a_partition(self, net):
        # a reachable host with no such export is a configuration error:
        # distinct from HostUnreachable so retry policies never treat it
        # as transient
        with pytest.raises(ServiceUnavailable):
            net.rpc("a", "b", "nothing")
        assert not issubclass(ServiceUnavailable, HostUnreachable)
        assert net.stats.rpcs_failed == 1

    def test_rpc_advances_clock(self, net):
        net.register_rpc("b", "noop", lambda: None)
        before = net.clock.now()
        net.rpc("a", "b", "noop")
        assert net.clock.now() > before

    def test_kwargs_forwarded(self, net):
        net.register_rpc("b", "fmt", lambda x, suffix="": f"{x}{suffix}")
        assert net.rpc("a", "b", "fmt", "v", suffix="!") == "v!"


class TestMulticast:
    def test_delivery_to_all_reachable(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(("b", src, p)))
        net.register_datagram_handler("c", lambda src, p: got.append(("c", src, p)))
        delivered = net.multicast("a", ["b", "c"], "new-version")
        assert delivered == 2
        assert ("b", "a", "new-version") in got
        assert ("c", "a", "new-version") in got

    def test_partitioned_recipients_silently_miss(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(p))
        net.register_datagram_handler("c", lambda src, p: got.append(p))
        net.partition([{"a", "b"}, {"c"}])
        delivered = net.multicast("a", ["b", "c"], "notify")
        assert delivered == 1
        assert got == ["notify"]
        assert net.stats.datagrams_lost == 1

    def test_multiple_handlers_per_host(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(1))
        net.register_datagram_handler("b", lambda src, p: got.append(2))
        net.multicast("a", ["b"], None)
        assert got == [1, 2]

    def test_no_handler_counts_as_lost(self, net):
        # a reachable host with zero registered handlers received nothing:
        # the stats must not claim the notification landed
        assert net.multicast("a", ["d"], "x") == 0
        assert net.stats.datagrams_lost == 1
        assert net.stats.datagrams_delivered == 0


class TestFaultPlane:
    def test_inert_by_default(self, net):
        assert not net.faults.active
        net.register_rpc("b", "echo", lambda x: x)
        assert net.rpc("a", "b", "echo", 7) == 7
        assert net.faults.total_injected == 0

    def test_scripted_timeout_then_ok(self, net):
        calls = []
        net.register_rpc("b", "echo", lambda x: calls.append(x) or x)
        net.faults.schedule_rpc("a", "b", ["timeout", "ok"])
        with pytest.raises(RpcTimeout):
            net.rpc("a", "b", "echo", 1)
        assert calls == []  # the server never saw the lost request
        assert net.rpc("a", "b", "echo", 2) == 2
        assert calls == [2]
        assert net.faults.injected == {"rpc_timeout": 1}

    def test_scripted_reply_lost_executes_server_side(self, net):
        calls = []
        net.register_rpc("b", "bump", lambda: calls.append(1))
        net.faults.schedule_rpc("a", "b", ["reply_lost"])
        with pytest.raises(RpcTimeout):
            net.rpc("a", "b", "bump")
        assert calls == [1]  # executed, reply vanished
        assert net.stats.rpcs_failed == 1
        assert net.faults.injected == {"reply_lost": 1}

    def test_probabilistic_faults_replay_exactly(self):
        def run(seed):
            net = Network(fault_plane=FaultPlane(seed=seed))
            for host in ["a", "b"]:
                net.add_host(host)
            net.register_rpc("b", "noop", lambda: None)
            net.faults.set_default(LinkFaults(rpc_timeout=0.3, reply_lost=0.1))
            outcomes = []
            for _ in range(50):
                try:
                    net.rpc("a", "b", "noop")
                    outcomes.append("ok")
                except RpcTimeout as exc:
                    outcomes.append(str(exc))
            return outcomes, dict(net.faults.injected)

        first = run(42)
        second = run(42)
        different = run(43)
        assert first == second
        assert first != different
        assert first[1]  # some faults actually fired at these rates

    def test_datagram_drop_and_duplicate(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(p))
        net.faults.set_link("a", "b", LinkFaults(drop=1.0))
        assert net.multicast("a", ["b"], "x") == 0
        assert got == []
        assert net.stats.datagrams_lost == 1
        net.faults.set_link("a", "b", LinkFaults(duplicate=1.0))
        assert net.multicast("a", ["b"], "y") == 2
        assert got == ["y", "y"]

    def test_datagram_reorder_overtaken_then_flushed(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(p))
        net.faults.schedule_rpc("a", "b", [])  # no RPC faults involved
        net.faults.set_link("a", "b", LinkFaults(reorder=1.0))
        assert net.multicast("a", ["b"], "first") == 0  # held back
        assert got == []
        net.faults.set_link("a", "b", LinkFaults())
        # the next datagram overtakes the held one
        assert net.multicast("a", ["b"], "second") == 2
        assert got == ["second", "first"]

    def test_flush_deferred_at_quiescence(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(p))
        net.faults.set_link("a", "b", LinkFaults(reorder=1.0))
        net.multicast("a", ["b"], "held")
        assert got == []
        net.faults.clear()
        assert net.flush_deferred_datagrams() == 1
        assert got == ["held"]

    def test_clear_disarms_the_plane(self, net):
        net.faults.set_default(LinkFaults(rpc_timeout=1.0))
        assert net.faults.active
        net.faults.clear()
        assert not net.faults.active
        net.register_rpc("b", "noop", lambda: None)
        net.rpc("a", "b", "noop")  # no fault
