"""Unit tests for the simulated network."""

import pytest

from repro.errors import HostUnreachable, InvalidArgument
from repro.net import Network


@pytest.fixture
def net():
    network = Network()
    for host in ["a", "b", "c", "d"]:
        network.add_host(host)
    return network


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        with pytest.raises(InvalidArgument):
            net.add_host("a")

    def test_unknown_host_rejected(self, net):
        with pytest.raises(InvalidArgument):
            net.reachable("a", "ghost")

    def test_fully_connected_by_default(self, net):
        assert net.reachable("a", "d")
        assert not net.partitioned

    def test_partition_splits_groups(self, net):
        net.partition([{"a", "b"}, {"c", "d"}])
        assert net.reachable("a", "b")
        assert not net.reachable("a", "c")
        assert net.partitioned

    def test_unlisted_host_isolated(self, net):
        net.partition([{"a", "b"}])
        assert not net.reachable("c", "a")
        assert not net.reachable("c", "d")
        assert net.reachable("c", "c")

    def test_overlapping_groups_rejected(self, net):
        with pytest.raises(InvalidArgument):
            net.partition([{"a", "b"}, {"b", "c"}])

    def test_heal_restores_connectivity(self, net):
        net.partition([{"a"}, {"b"}])
        net.heal()
        assert net.reachable("a", "b")

    def test_downed_host_unreachable_even_same_group(self, net):
        net.set_host_up("b", False)
        assert not net.reachable("a", "b")
        assert not net.reachable("b", "a")
        assert not net.reachable("b", "b")
        net.set_host_up("b", True)
        assert net.reachable("a", "b")

    def test_reachable_set_filters(self, net):
        net.partition([{"a", "b"}, {"c", "d"}])
        assert net.reachable_set("a", ["b", "c", "d", "a"]) == ["b", "a"]


class TestRpc:
    def test_call_dispatches(self, net):
        net.register_rpc("b", "echo", lambda x: x * 2)
        assert net.rpc("a", "b", "echo", 21) == 42
        assert net.stats.rpcs_sent == 1

    def test_call_across_partition_fails(self, net):
        net.register_rpc("b", "echo", lambda x: x)
        net.partition([{"a"}, {"b"}])
        with pytest.raises(HostUnreachable):
            net.rpc("a", "b", "echo", 1)
        assert net.stats.rpcs_failed == 1

    def test_call_to_missing_service_fails(self, net):
        with pytest.raises(HostUnreachable):
            net.rpc("a", "b", "nothing")

    def test_rpc_advances_clock(self, net):
        net.register_rpc("b", "noop", lambda: None)
        before = net.clock.now()
        net.rpc("a", "b", "noop")
        assert net.clock.now() > before

    def test_kwargs_forwarded(self, net):
        net.register_rpc("b", "fmt", lambda x, suffix="": f"{x}{suffix}")
        assert net.rpc("a", "b", "fmt", "v", suffix="!") == "v!"


class TestMulticast:
    def test_delivery_to_all_reachable(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(("b", src, p)))
        net.register_datagram_handler("c", lambda src, p: got.append(("c", src, p)))
        delivered = net.multicast("a", ["b", "c"], "new-version")
        assert delivered == 2
        assert ("b", "a", "new-version") in got
        assert ("c", "a", "new-version") in got

    def test_partitioned_recipients_silently_miss(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(p))
        net.register_datagram_handler("c", lambda src, p: got.append(p))
        net.partition([{"a", "b"}, {"c"}])
        delivered = net.multicast("a", ["b", "c"], "notify")
        assert delivered == 1
        assert got == ["notify"]
        assert net.stats.datagrams_lost == 1

    def test_multiple_handlers_per_host(self, net):
        got = []
        net.register_datagram_handler("b", lambda src, p: got.append(1))
        net.register_datagram_handler("b", lambda src, p: got.append(2))
        net.multicast("a", ["b"], None)
        assert got == [1, 2]

    def test_no_handler_still_counts_delivered(self, net):
        assert net.multicast("a", ["d"], "x") == 1
