"""Selective replication: volume replicas that decline some file contents."""

import pytest

from repro.errors import AllReplicasUnavailable
from repro.physical.policy import (
    CompositePolicy,
    GlobPolicy,
    SizeCapPolicy,
    StoragePolicy,
)
from repro.physical.wire import DirectoryEntry, EntryId, EntryType
from repro.sim import DaemonConfig, FicusSystem
from repro.util import FicusFileHandle, FileId, VolumeId

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def entry(name: str) -> DirectoryEntry:
    return DirectoryEntry(
        eid=EntryId(1, 1),
        name=name,
        fh=FicusFileHandle(VolumeId(1, 1), FileId(1, 1)),
        etype=EntryType.FILE,
    )


class TestPolicies:
    def test_default_policy_stores_everything(self):
        assert StoragePolicy().wants(entry("anything.bin"))

    def test_glob_include_exclude(self):
        policy = GlobPolicy(include=("*.txt", "*.md"), exclude=("secret*",))
        assert policy.wants(entry("notes.txt"))
        assert policy.wants(entry("README.md"))
        assert not policy.wants(entry("image.png"))
        assert not policy.wants(entry("secret.txt"))

    def test_size_cap(self):
        policy = SizeCapPolicy(max_bytes=100)
        assert policy.wants(entry("f"), size_hint=50)
        assert not policy.wants(entry("f"), size_hint=200)
        assert policy.wants(entry("f"), size_hint=None)  # optimistic

    def test_composite_all_must_agree(self):
        policy = CompositePolicy(
            policies=(GlobPolicy(include=("*.txt",)), SizeCapPolicy(max_bytes=10))
        )
        assert policy.wants(entry("a.txt"), size_hint=5)
        assert not policy.wants(entry("a.txt"), size_hint=50)
        assert not policy.wants(entry("a.bin"), size_hint=5)


class TestSelectiveReplica:
    @pytest.fixture
    def system(self):
        system = FicusSystem(["full", "cache"], daemon_config=QUIET)
        cache_volrep = next(l.volrep for l in system.root_locations if l.host == "cache")
        system.host("cache").physical.set_storage_policy(
            cache_volrep, GlobPolicy(include=("*.txt",))
        )
        return system

    def test_declined_files_stay_entry_only(self, system):
        fs_full = system.host("full").fs()
        fs_full.write_file("/wanted.txt", b"text")
        fs_full.write_file("/unwanted.bin", b"binary blob")
        system.reconcile_everything()
        cache = system.host("cache")
        volrep = next(l.volrep for l in system.root_locations if l.host == "cache")
        store = cache.physical.store_for(volrep)
        entries = {e.name: e for e in store.read_entries(store.root_handle()) if e.live}
        assert set(entries) == {"wanted.txt", "unwanted.bin"}  # names replicate
        assert store.has_file(store.root_handle(), entries["wanted.txt"].fh)
        assert not store.has_file(store.root_handle(), entries["unwanted.bin"].fh)

    def test_declined_file_still_readable_through_full_replica(self, system):
        system.host("full").fs().write_file("/unwanted.bin", b"blob")
        system.reconcile_everything()
        # the cache host reads THROUGH the full replica transparently
        assert system.host("cache").fs().read_file("/unwanted.bin") == b"blob"

    def test_declined_file_unavailable_when_full_replica_cut_off(self, system):
        system.host("full").fs().write_file("/unwanted.bin", b"blob")
        system.host("full").fs().write_file("/wanted.txt", b"text")
        system.reconcile_everything()
        system.partition([{"cache"}, {"full"}])
        fs_cache = system.host("cache").fs()
        assert fs_cache.read_file("/wanted.txt") == b"text"  # stored locally
        with pytest.raises(AllReplicasUnavailable):
            fs_cache.read_file("/unwanted.bin")

    def test_propagation_daemon_honours_policy(self, system):
        fs_full = system.host("full").fs()
        fs_full.write_file("/a.txt", b"1")
        fs_full.write_file("/b.bin", b"2")
        cache = system.host("cache")
        cache.propagation_daemon.tick()
        volrep = next(l.volrep for l in system.root_locations if l.host == "cache")
        store = cache.physical.store_for(volrep)
        entries = {e.name: e for e in store.read_entries(store.root_handle()) if e.live}
        assert store.has_file(store.root_handle(), entries["a.txt"].fh)
        assert not store.has_file(store.root_handle(), entries["b.bin"].fh)

    def test_recon_reports_declined_counts(self, system):
        system.host("full").fs().write_file("/x.bin", b"z")
        cache = system.host("cache")
        results = cache.recon_daemon.tick()
        assert sum(r.files_declined_by_policy for r in results) == 1

    def test_updates_to_stored_files_keep_flowing(self, system):
        fs_full = system.host("full").fs()
        fs_full.write_file("/doc.txt", b"v1")
        system.reconcile_everything()
        fs_full.write_file("/doc.txt", b"v2 is longer")
        system.reconcile_everything()
        system.partition([{"cache"}, {"full"}])
        assert system.host("cache").fs().read_file("/doc.txt") == b"v2 is longer"
