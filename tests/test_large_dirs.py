"""Large-directory behaviour: multi-block directories, many-way merges."""


from repro.physical import ficus_fsck
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import ROOT_INO, Ufs, fsck

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestUfsLargeDirectories:
    def test_directory_spanning_many_blocks(self):
        fs = Ufs.mkfs(BlockDevice(8192), num_inodes=1024)
        names = [f"file-with-a-reasonably-long-name-{i:04d}" for i in range(300)]
        for name in names:
            fs.create(ROOT_INO, name)
        assert fs.get_inode(ROOT_INO).size > fs.sb.block_size  # multi-block
        listing = set(fs.readdir(ROOT_INO)) - {".", ".."}
        assert listing == set(names)
        assert fsck(fs).clean

    def test_shrinking_a_large_directory_frees_blocks(self):
        fs = Ufs.mkfs(BlockDevice(8192), num_inodes=1024)
        names = [f"n{i:04d}-padding-padding-padding" for i in range(300)]
        for name in names:
            fs.create(ROOT_INO, name)
        grown = fs.get_inode(ROOT_INO).size
        for name in names:
            fs.unlink(ROOT_INO, name)
        assert fs.get_inode(ROOT_INO).size < grown
        assert fsck(fs).clean

    def test_lookup_correct_across_block_boundaries(self):
        fs = Ufs.mkfs(BlockDevice(8192), num_inodes=1024)
        inos = {}
        for i in range(250):
            name = f"entry-{i:04d}-{'x' * 30}"
            inos[name] = fs.create(ROOT_INO, name)
        for name, ino in inos.items():
            assert fs.lookup(ROOT_INO, name) == ino


class TestFicusLargeDirectories:
    def test_many_files_replicate(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs_a = system.host("a").fs()
        for i in range(120):
            fs_a.write_file(f"/doc-{i:03d}", f"contents {i}".encode())
        system.reconcile_everything()
        fs_b = system.host("b").fs()
        assert len(fs_b.listdir("/")) == 120
        assert fs_b.read_file("/doc-077") == b"contents 77"
        for host in system.hosts.values():
            for store in host.physical.stores.values():
                assert ficus_fsck(store).clean

    def test_mass_collision_merge(self):
        """50 same-name creates on each side: every file survives with a
        deterministic name, identically on both replicas."""
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        system.partition([{"a"}, {"b"}])
        for i in range(50):
            system.host("a").fs().write_file(f"/clash-{i:02d}", b"A")
            system.host("b").fs().write_file(f"/clash-{i:02d}", b"B")
        system.heal()
        system.reconcile_everything()
        names_a = system.host("a").fs().listdir("/")
        names_b = system.host("b").fs().listdir("/")
        assert names_a == names_b
        assert len(names_a) == 100  # every one of the 100 files kept
        suffixed = [n for n in names_a if "#" in n]
        assert len(suffixed) == 50

    def test_mass_delete_merge_and_gc(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs_a = system.host("a").fs()
        for i in range(60):
            fs_a.write_file(f"/f{i:02d}", b"x")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        for i in range(0, 60, 2):
            fs_a.unlink(f"/f{i:02d}")
        system.heal()
        system.reconcile_everything(rounds=4)
        for name in ["a", "b"]:
            listing = system.host(name).fs().listdir("/")
            assert len(listing) == 30
            assert all(int(n[1:]) % 2 == 1 for n in listing)
        # tombstones fully collected after convergence
        for host in system.hosts.values():
            for store in host.physical.stores.values():
                dead = [
                    e
                    for e in store.read_entries(store.root_handle())
                    if not e.live
                ]
                assert dead == []
