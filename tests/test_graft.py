"""Tests for volumes, graft points, and autografting (paper Section 4)."""

import pytest

from repro.errors import AllReplicasUnavailable, InvalidArgument
from repro.physical import EntryType
from repro.physical.wire import DirectoryEntry, EntryId
from repro.sim import DaemonConfig, FicusSystem
from repro.util import FicusFileHandle, FileId, VolumeId, VolumeReplicaId
from repro.volume import (
    GraftTable,
    ReplicaLocation,
    location_entry_name,
    locations_from_entries,
)

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def system():
    return FicusSystem(["alpha", "beta", "gamma"], daemon_config=QUIET)


class TestGraftTable:
    def test_learn_and_lookup(self):
        table = GraftTable()
        vol = VolumeId(1, 5)
        locs = [ReplicaLocation(VolumeReplicaId(vol, 1), "h1")]
        table.learn(vol, locs)
        assert table.knows(vol)
        assert table.locations(vol) == locs

    def test_empty_locations_rejected(self):
        with pytest.raises(InvalidArgument):
            GraftTable().learn(VolumeId(1, 1), [])

    def test_locations_sorted_by_replica(self):
        table = GraftTable()
        vol = VolumeId(1, 1)
        table.learn(
            vol,
            [
                ReplicaLocation(VolumeReplicaId(vol, 2), "h2"),
                ReplicaLocation(VolumeReplicaId(vol, 1), "h1"),
            ],
        )
        assert [loc.volrep.replica_id for loc in table.locations(vol)] == [1, 2]


class TestLocationEntries:
    def test_round_trip_via_directory_entries(self):
        vol = VolumeId(2, 3)
        entries = [
            DirectoryEntry(
                eid=EntryId(1, i),
                name=location_entry_name(i),
                fh=FicusFileHandle(vol, FileId(1, i)),
                etype=EntryType.LOCATION,
                data=f"host{i}",
            )
            for i in (1, 2)
        ]
        locations = locations_from_entries(vol, entries)
        assert [(l.volrep.replica_id, l.host) for l in locations] == [(1, "host1"), (2, "host2")]

    def test_dead_and_foreign_entries_ignored(self):
        vol = VolumeId(2, 3)
        entries = [
            DirectoryEntry(
                eid=EntryId(1, 1),
                name=location_entry_name(1),
                fh=FicusFileHandle(vol, FileId(1, 1)),
                etype=EntryType.LOCATION,
                data="dead-host",
                status="dead",
            ),
            DirectoryEntry(
                eid=EntryId(1, 2),
                name="regular-file",
                fh=FicusFileHandle(vol, FileId(1, 2)),
                etype=EntryType.FILE,
            ),
        ]
        assert locations_from_entries(vol, entries) == []


class TestAutografting:
    def test_graft_point_crossed_transparently(self, system):
        """A path lookup walks through a graft point into the target
        volume without the client noticing (Section 4.4)."""
        volume, locations = system.create_volume(["beta", "gamma"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "projects", volume, locations)
        projects = root.lookup("projects")
        projects.create("readme").write(0, b"inside the grafted volume")
        assert root.walk("projects/readme").read_all() == b"inside the grafted volume"
        assert alpha.logical.grafter.active_grafts == 1

    def test_graft_binds_reachable_replica(self, system):
        volume, locations = system.create_volume(["beta", "gamma"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        system.partition([{"alpha", "gamma"}, {"beta"}])
        p = root.lookup("p")  # must bind gamma's replica
        state = alpha.logical.grafter.current(volume)
        assert state.bound.host == "gamma"
        p.create("f").write(0, b"written at gamma")

    def test_graft_fails_when_no_replica_reachable(self, system):
        volume, locations = system.create_volume(["beta", "gamma"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        system.partition([{"alpha"}, {"beta", "gamma"}])
        with pytest.raises(AllReplicasUnavailable):
            root.lookup("p")

    def test_regraft_after_bound_replica_lost(self, system):
        volume, locations = system.create_volume(["beta", "gamma"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        root.lookup("p")  # binds beta (first in replica order)
        first = alpha.logical.grafter.current(volume).bound.host
        system.partition([{"alpha", "gamma"}, {"beta"}] if first == "beta" else [{"alpha", "beta"}, {"gamma"}])
        root.lookup("p")  # must re-bind to the reachable replica
        second = alpha.logical.grafter.current(volume).bound.host
        assert second != first

    def test_graft_point_replicated_with_parent_volume(self, system):
        """Graft points reconcile like any directory, so a graft point
        created on alpha appears on beta after reconciliation."""
        volume, locations = system.create_volume(["gamma"])
        alpha, beta = system.host("alpha"), system.host("beta")
        alpha.logical.create_graft_point(alpha.root(), "shared", volume, locations)
        system.reconcile_everything()
        shared = beta.root().lookup("shared")
        shared.create("from-beta").write(0, b"b")
        assert alpha.root().walk("shared/from-beta").read_all() == b"b"

    def test_add_graft_location_dynamically(self, system):
        volume, locations = system.create_volume(["beta"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        # place an additional replica on gamma and register it
        new_volrep = VolumeReplicaId(volume, 99)
        system.host("gamma").physical.create_volume_replica(new_volrep)
        alpha.logical.add_graft_location(
            root, "p", ReplicaLocation(new_volrep, "gamma")
        )
        system.partition([{"alpha", "gamma"}, {"beta"}])
        alpha.logical.grafter.ungraft(volume)
        root.lookup("p")  # must find gamma through the new entry
        assert alpha.logical.grafter.current(volume).bound.host == "gamma"

    def test_nested_volumes_form_a_dag(self, system):
        vol1, locs1 = system.create_volume(["beta"])
        vol2, locs2 = system.create_volume(["gamma"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "v1", vol1, locs1)
        v1 = root.lookup("v1")
        alpha.logical.create_graft_point(v1, "v2", vol2, locs2)
        deep = root.walk("v1/v2")
        deep.create("bottom").write(0, b"three volumes deep")
        assert root.walk("v1/v2/bottom").read_all() == b"three volumes deep"
        assert alpha.logical.grafter.active_grafts == 2


class TestGraftPruning:
    def test_idle_grafts_pruned(self, system):
        volume, locations = system.create_volume(["beta"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        root.lookup("p")
        assert alpha.logical.grafter.active_grafts == 1
        system.clock.advance(10_000)
        pruned = alpha.logical.grafter.prune(idle_timeout=1800)
        assert pruned == 1
        assert alpha.logical.grafter.active_grafts == 0

    def test_active_grafts_survive_pruning(self, system):
        volume, locations = system.create_volume(["beta"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        root.lookup("p")
        system.clock.advance(100)
        assert alpha.logical.grafter.prune(idle_timeout=1800) == 0

    def test_pruned_graft_regrafts_on_demand(self, system):
        volume, locations = system.create_volume(["beta"])
        alpha = system.host("alpha")
        root = alpha.root()
        alpha.logical.create_graft_point(root, "p", volume, locations)
        root.lookup("p").create("f").write(0, b"persistent")
        system.clock.advance(10_000)
        alpha.logical.grafter.prune(idle_timeout=1800)
        assert root.walk("p/f").read_all() == b"persistent"
        assert alpha.logical.grafter.grafts_performed == 2

    def test_prune_daemon_wired(self, system):
        volume, locations = system.create_volume(["beta"])
        alpha = system.host("alpha")
        alpha.logical.create_graft_point(alpha.root(), "p", volume, locations)
        alpha.root().lookup("p")
        system.clock.advance(10_000)
        assert alpha.graft_prune_daemon.tick() == 1
