"""Tests for the vnode framework: UFS layer, null layers, transparency."""

import pytest

from repro.errors import FileNotFound, NotSupported, PermissionDenied
from repro.storage import BlockDevice
from repro.ufs import FileType, Ufs, fsck
from repro.vnode import (
    Credential,
    OpContext,
    NullLayer,
    SetAttrs,
    UfsLayer,
    Vnode,
    build_null_stack,
)


@pytest.fixture
def ufs_layer():
    return UfsLayer(Ufs.mkfs(BlockDevice(4096), num_inodes=256))


@pytest.fixture
def root(ufs_layer):
    return ufs_layer.root()


class TestUfsLayer:
    def test_create_write_read(self, root):
        f = root.create("f.txt")
        f.write(0, b"via vnodes")
        assert f.read(0, 100) == b"via vnodes"
        assert f.read_all() == b"via vnodes"

    def test_lookup_and_walk(self, root):
        a = root.mkdir("a")
        b = a.mkdir("b")
        f = b.create("f")
        assert root.walk("a/b/f").getattr().fileid == f.getattr().fileid

    def test_readdir_types(self, root):
        root.create("file")
        root.mkdir("dir")
        root.symlink("lnk", "/target")
        entries = {e.name: e.ftype for e in root.readdir()}
        assert entries["file"] == FileType.REGULAR
        assert entries["dir"] == FileType.DIRECTORY
        assert entries["lnk"] == FileType.SYMLINK

    def test_remove_and_rmdir(self, root):
        root.create("f")
        root.mkdir("d")
        root.remove("f")
        root.rmdir("d")
        with pytest.raises(FileNotFound):
            root.lookup("f")

    def test_rename_via_vnodes(self, root):
        a = root.mkdir("a")
        b = root.mkdir("b")
        a.create("f")
        a.rename("f", b, "g")
        assert b.lookup("g").getattr().ftype == FileType.REGULAR

    def test_link_via_vnodes(self, root):
        f = root.create("f")
        root.link(f, "alias")
        assert root.lookup("alias").getattr().fileid == f.getattr().fileid
        assert f.getattr().nlink == 2

    def test_setattr_truncate(self, root):
        f = root.create("f")
        f.write(0, b"0123456789")
        f.setattr(SetAttrs(size=4))
        assert f.read_all() == b"0123"

    def test_setattr_perm_uid(self, root):
        f = root.create("f")
        f.setattr(SetAttrs(perm=0o600, uid=42))
        attrs = f.getattr()
        assert attrs.perm == 0o600 and attrs.uid == 42

    def test_access_owner_vs_other(self, root):
        f = root.create("f", perm=0o640, ctx=OpContext(cred=Credential(uid=7)))
        assert f.access(4, OpContext(cred=Credential(uid=7)))  # owner read
        assert not f.access(2, OpContext(cred=Credential(uid=9)))  # other write
        assert f.access(2, OpContext(cred=Credential(uid=0)))  # root always

    def test_symlink_readlink(self, root):
        lnk = root.symlink("l", "/a/b")
        assert lnk.readlink() == "/a/b"

    def test_vnode_equality(self, ufs_layer):
        r1 = ufs_layer.root()
        r2 = ufs_layer.root()
        assert r1 == r2 and hash(r1) == hash(r2)

    def test_vnode_for_rejects_dead_ino(self, ufs_layer, root):
        f = root.create("f")
        ino = f.getattr().fileid
        root.remove("f")
        with pytest.raises(FileNotFound):
            ufs_layer.vnode_for(ino)

    def test_counters_track_operations(self, ufs_layer, root):
        root.create("f")
        root.lookup("f")
        assert ufs_layer.counters.by_op["create"] == 1
        assert ufs_layer.counters.by_op["lookup"] == 1


class TestNullLayer:
    def test_passthrough_preserves_behaviour(self, ufs_layer):
        """Transparent insertion: the same op script gives identical results
        through 0 and N null layers (paper's central transparency claim)."""
        top = build_null_stack(ufs_layer, 5)
        root = top.root()
        d = root.mkdir("d")
        f = d.create("f")
        f.write(0, b"stacked")
        assert root.walk("d/f").read_all() == b"stacked"
        assert fsck(ufs_layer.fs).clean

    def test_each_layer_counts_crossings(self, ufs_layer):
        n1 = NullLayer(ufs_layer, "n1")
        n2 = NullLayer(n1, "n2")
        root = n2.root()
        root.create("f")
        assert n1.counters.by_op["create"] == 1
        assert n2.counters.by_op["create"] == 1
        assert ufs_layer.counters.by_op["create"] == 1

    def test_vnode_args_unwrapped_across_layers(self, ufs_layer):
        """rename/link take vnode arguments; wrappers must be peeled."""
        top = build_null_stack(ufs_layer, 3)
        root = top.root()
        a = root.mkdir("a")
        b = root.mkdir("b")
        a.create("f")
        a.rename("f", b, "g")  # b is a PassthroughVnode 3 deep
        assert b.lookup("g") is not None
        f2 = root.create("orig")
        root.link(f2, "alias")
        assert root.lookup("alias").getattr().nlink == 2

    def test_errors_pass_through_unchanged(self, ufs_layer):
        top = build_null_stack(ufs_layer, 4)
        with pytest.raises(FileNotFound):
            top.root().lookup("missing")

    def test_deep_stack_still_correct(self, ufs_layer):
        top = build_null_stack(ufs_layer, 32)
        f = top.root().create("deep")
        f.write(0, b"x" * 10000)
        assert top.root().lookup("deep").read_all() == b"x" * 10000


class TestVnodeDefaults:
    def test_unimplemented_ops_raise_notsupported(self):
        class Bare(Vnode):
            pass

        bare = Bare()
        for op in ["open", "close", "readlink", "sync", "inactive"]:
            with pytest.raises(NotSupported):
                getattr(bare, op)()

    def test_operations_list_is_about_two_dozen(self):
        """Paper: 'a set of about two dozen services' — plus the six
        first-class Ficus extensions (sessions, attribute batches, and
        the sync plane's probe/delta operations)."""
        FICUS_EXTENSIONS = 6
        assert 20 <= len(Vnode.OPERATIONS) - FICUS_EXTENSIONS <= 28


class TestCrossLayerSafety:
    def test_cross_layer_link_rejected(self):
        l1 = UfsLayer(Ufs.mkfs(BlockDevice(1024), num_inodes=64))
        l2 = UfsLayer(Ufs.mkfs(BlockDevice(1024), num_inodes=64))
        f = l1.root().create("f")
        with pytest.raises(PermissionDenied):
            l2.root().link(f, "bad")

    def test_cross_layer_rename_rejected(self):
        l1 = UfsLayer(Ufs.mkfs(BlockDevice(1024), num_inodes=64))
        l2 = UfsLayer(Ufs.mkfs(BlockDevice(1024), num_inodes=64))
        l1.root().create("f")
        with pytest.raises(PermissionDenied):
            l1.root().rename("f", l2.root(), "g")
