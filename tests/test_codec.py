"""Unit and property tests for the metadata record codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.util import (
    decode_record,
    decode_records,
    encode_record,
    encode_records,
    escape_value,
    unescape_value,
)


class TestEscaping:
    def test_plain_text_unchanged(self):
        assert escape_value("hello") == "hello"

    def test_space_escaped(self):
        assert escape_value("a b") == "a\\sb"
        assert unescape_value("a\\sb") == "a b"

    def test_newline_escaped(self):
        assert unescape_value(escape_value("a\nb")) == "a\nb"

    def test_equals_escaped(self):
        assert unescape_value(escape_value("a=b")) == "a=b"

    def test_backslash_escaped(self):
        assert unescape_value(escape_value("a\\b")) == "a\\b"

    def test_dangling_escape_rejected(self):
        with pytest.raises(InvalidArgument):
            unescape_value("oops\\")

    def test_unknown_escape_rejected(self):
        with pytest.raises(InvalidArgument):
            unescape_value("\\q")

    @given(st.text())
    def test_round_trip_arbitrary_unicode(self, text):
        assert unescape_value(escape_value(text)) == text


class TestRecords:
    def test_simple_record(self):
        rec = {"name": "file.txt", "ino": "42"}
        assert decode_record(encode_record(rec)) == rec

    def test_record_with_hostile_values(self):
        rec = {"name": "a b=c\nd\\e", "x": ""}
        assert decode_record(encode_record(rec)) == rec

    def test_bad_key_rejected(self):
        with pytest.raises(InvalidArgument):
            encode_record({"bad key": "v"})
        with pytest.raises(InvalidArgument):
            encode_record({"": "v"})

    def test_empty_record(self):
        assert decode_record("") == {}

    def test_malformed_field_rejected(self):
        with pytest.raises(InvalidArgument):
            decode_record("noequals")

    def test_multi_record_file(self):
        records = [{"a": "1"}, {"b": "two words"}, {"c": "x=y"}]
        assert decode_records(encode_records(records)) == records

    def test_empty_file(self):
        assert decode_records(b"") == []
        assert encode_records([]) == b""

    keys = st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8
    )

    @given(st.lists(st.dictionaries(keys, st.text(), min_size=1, max_size=4), max_size=6))
    def test_round_trip_property(self, records):
        assert decode_records(encode_records(records)) == records
