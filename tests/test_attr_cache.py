"""The logical layer's version-vector cache: correctness under failures.

The batched attribute plane lets a host answer replica selection from a
per-host cache of :class:`~repro.physical.wire.AttrBatch` records.  A
cache of version vectors is only safe if it can never make selection
pick a *dominated* replica once the host has been told better:

* update notifications invalidate the cached batches of every replica of
  the updated directory (coherence when the datagram arrives);
* a TTL bounds the staleness window when the datagram is LOST (the
  paper's best-effort notification semantics, Section 3.2);
* a partitioned replica's cached batch is never served while the replica
  is unreachable — availability comes from the remaining replicas, not
  from a ghost of the missing one.
"""

import pytest

from repro.errors import InvalidArgument
from repro.logical.attr_cache import DEFAULT_TTL, VersionVectorCache
from repro.physical import AuxAttributes, EntryType
from repro.physical.wire import AttrBatch
from repro.sim import DaemonConfig, FicusSystem
from repro.util import FicusFileHandle, FileId, VirtualClock, VolumeId, VolumeReplicaId
from repro.vv import VersionVector

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

VOL = VolumeId(1, 1)
FH = FicusFileHandle(VOL, FileId(1, 7))


def batch(vv: VersionVector) -> AttrBatch:
    return AttrBatch(dir_aux=AuxAttributes(fh=FH, etype=EntryType.DIRECTORY, vv=vv), children={})


class TestCacheUnit:
    """VersionVectorCache in isolation, on a hand-cranked clock."""

    def setup_method(self):
        self.clock = VirtualClock()
        self.cache = VersionVectorCache(self.clock, ttl=10.0)
        self.vr1 = VolumeReplicaId(VOL, 1)
        self.vr2 = VolumeReplicaId(VOL, 2)

    def test_store_then_hit(self):
        self.cache.store(self.vr1, FH, "vnode", batch(VersionVector({1: 1})))
        entry = self.cache.lookup(self.vr1, FH)
        assert entry is not None and entry.batch is not None
        assert self.cache.stats.hits == 1

    def test_ttl_expires_batch_but_keeps_vnode(self):
        self.cache.store(self.vr1, FH, "vnode", batch(VersionVector({1: 1})))
        self.clock.advance(11.0)
        entry = self.cache.lookup(self.vr1, FH)
        assert entry is not None and entry.batch is None
        assert entry.dir_vnode == "vnode"  # resolution survives expiry
        assert self.cache.stats.expirations == 1

    def test_invalidate_dir_drops_every_replicas_batch(self):
        self.cache.store(self.vr1, FH, "v1", batch(VersionVector({1: 1})))
        self.cache.store(self.vr2, FH, "v2", batch(VersionVector({2: 1})))
        dropped = self.cache.invalidate_dir(VOL, FH)
        assert dropped == 2
        for vr in (self.vr1, self.vr2):
            entry = self.cache.lookup(vr, FH)
            assert entry is not None and entry.batch is None
        assert self.cache.stats.invalidations == 2

    def test_invalidate_removes_entry_entirely(self):
        self.cache.store(self.vr1, FH, "v1", batch(VersionVector({1: 1})))
        self.cache.invalidate(self.vr1, FH)
        assert self.cache.lookup(self.vr1, FH) is None
        assert len(self.cache) == 0


def two_host_world():
    """alpha holds replica 1, beta replica 2, of one converged volume."""
    system = FicusSystem(["alpha", "beta"], daemon_config=QUIET)
    fs_a = system.host("alpha").fs()
    fs_b = system.host("beta").fs()
    fs_a.write_file("/f", b"v1")
    system.reconcile_everything()
    return system, fs_a, fs_b


class TestNotificationCoherence:
    def test_heal_plus_notification_defeats_stale_cache(self):
        """A host that missed updates during a partition must serve the
        new version as soon as a post-heal notification arrives — never
        the dominated replica its cache still remembers.

        The selection tie-break prefers the lowest replica id, so with a
        stale cache (both replicas apparently EQUAL) alpha would pick its
        own dominated copy.  The datagram invalidation is what saves it.
        """
        system, fs_a, fs_b = two_host_world()
        # warm alpha's cache with beta's (currently equal) batch
        assert fs_a.read_file("/f") == b"v1"

        system.partition([{"alpha"}, {"beta"}])
        fs_b.write_file("/f", b"v2 during partition")  # datagram lost
        assert system.network.stats.datagrams_lost > 0

        system.heal()
        fs_b.write_file("/f", b"v3 after heal")  # datagram delivered
        cache = system.host("alpha").logical.attr_cache
        assert cache.stats.invalidations > 0
        assert fs_a.read_file("/f") == b"v3 after heal"

    def test_local_write_through_keeps_own_replica_fresh(self):
        """Updating locally refreshes the updater's cached batch without
        an RPC: the very next selection sees the new version vector."""
        system, fs_a, fs_b = two_host_world()
        assert fs_a.read_file("/f") == b"v1"
        refreshes_before = system.host("alpha").logical.attr_cache.stats.refreshes
        fs_a.write_file("/f", b"v2")
        cache = system.host("alpha").logical.attr_cache
        assert cache.stats.refreshes > refreshes_before
        assert fs_a.read_file("/f") == b"v2"


class TestLostDatagramTtl:
    def test_ttl_bounds_staleness_when_notification_is_lost(self):
        """The partition eats the notification; after heal the stale
        batch may answer for at most the TTL, then selection refetches
        and finds the dominating remote version."""
        system, fs_a, fs_b = two_host_world()
        assert fs_a.read_file("/f") == b"v1"  # alpha caches beta's batch

        system.partition([{"alpha"}, {"beta"}])
        fs_b.write_file("/f", b"v2 unseen")  # notification lost for good
        system.heal()
        # no further writes: nothing will ever invalidate alpha's cache
        system.run_for(DEFAULT_TTL + 1.0)

        cache = system.host("alpha").logical.attr_cache
        expirations_before = cache.stats.expirations
        assert fs_a.read_file("/f") == b"v2 unseen"
        assert cache.stats.expirations > expirations_before


class TestPartitionReachability:
    def test_cached_batch_of_unreachable_replica_is_not_served(self):
        """During the partition the missing replica simply vanishes from
        the candidate set — its cached batch must not ghost-vote."""
        system, fs_a, fs_b = two_host_world()
        assert fs_a.read_file("/f") == b"v1"  # cache both replicas
        logical = system.host("alpha").logical
        root_fh = logical.root().fh

        system.partition([{"alpha"}, {"beta"}])
        views = [view for view, _ in logical.replica_batches(logical.root_volume, root_fh)]
        assert [v.location.host for v in views] == ["alpha"]
        # reads stay available from the local replica
        assert fs_a.read_file("/f") == b"v1"

    def test_warm_read_path_issues_no_rpcs(self):
        """The acceptance criterion for the attribute plane: a fully
        warm read on the replica-holding host touches the network zero
        times."""
        system, fs_a, fs_b = two_host_world()
        fs_a.read_file("/f")  # warm every batch
        before = system.network.stats.rpcs_sent
        hits_before = system.host("alpha").logical.attr_cache.stats.hits
        assert fs_a.read_file("/f") == b"v1"
        assert system.network.stats.rpcs_sent == before
        assert system.host("alpha").logical.attr_cache.stats.hits > hits_before


class TestReservedNames:
    """User names beginning with '@@' are rejected at the logical layer
    (they are the physical layer's operation-encoding prefix)."""

    def setup_method(self):
        self.system = FicusSystem(["solo"], daemon_config=QUIET)
        self.fs = self.system.host("solo").fs()

    def test_create_rejected(self):
        with pytest.raises(InvalidArgument):
            self.fs.write_file("/@@evil", b"x")

    def test_mkdir_rejected(self):
        with pytest.raises(InvalidArgument):
            self.fs.mkdir("/@@dir")

    def test_symlink_rejected(self):
        with pytest.raises(InvalidArgument):
            self.fs.symlink("/target", "/@@link")

    def test_rename_to_reserved_rejected(self):
        self.fs.write_file("/ok", b"x")
        with pytest.raises(InvalidArgument):
            self.fs.rename("/ok", "/@@sneaky")
        assert self.fs.read_file("/ok") == b"x"

    def test_link_rejected(self):
        self.fs.write_file("/ok", b"x")
        with pytest.raises(InvalidArgument):
            self.fs.link("/ok", "/@@alias")

    def test_plain_names_with_at_signs_still_work(self):
        self.fs.write_file("/user@host", b"mail-style names are fine")
        self.fs.write_file("/a@@b", b"interior @@ is fine")
        assert self.fs.read_file("/user@host") == b"mail-style names are fine"
        assert self.fs.read_file("/a@@b") == b"interior @@ is fine"
