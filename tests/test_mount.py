"""Tests for namespace composition via MountLayer."""

import pytest

from repro.errors import CrossDevice, FileNotFound, InvalidArgument
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import Ufs
from repro.vnode import MountLayer, UfsLayer

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


def ufs_layer():
    return UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=128))


@pytest.fixture
def namespace():
    base = ufs_layer()
    base.root().mkdir("mnt")
    base.root().mkdir("home")
    mounted = ufs_layer()
    mounted.root().create("inside").write(0, b"from the mounted fs")
    ns = MountLayer(base)
    ns.mount("/mnt", mounted)
    return ns, base, mounted


class TestMounting:
    def test_lookup_crosses_mount_point(self, namespace):
        ns, _, _ = namespace
        assert ns.root().walk("mnt/inside").read_all() == b"from the mounted fs"

    def test_writes_land_in_the_right_layer(self, namespace):
        ns, base, mounted = namespace
        ns.root().walk("mnt").create("new").write(0, b"x")
        assert mounted.root().lookup("new").read_all() == b"x"
        with pytest.raises(FileNotFound):
            base.root().walk("mnt").lookup("new")

    def test_base_files_still_visible(self, namespace):
        ns, base, _ = namespace
        base.root().walk("home").create("f").write(0, b"base data")
        assert ns.root().walk("home/f").read_all() == b"base data"

    def test_mount_point_must_be_existing_directory(self):
        ns = MountLayer(ufs_layer())
        with pytest.raises(FileNotFound):
            ns.mount("/nonexistent", ufs_layer())
        ns.base.root().create("file")
        with pytest.raises(InvalidArgument):
            ns.mount("/file", ufs_layer())

    def test_double_mount_rejected(self, namespace):
        ns, _, _ = namespace
        with pytest.raises(InvalidArgument):
            ns.mount("/mnt", ufs_layer())

    def test_unmount_restores_underlying_directory(self, namespace):
        ns, base, _ = namespace
        base.root().walk("mnt").create("hidden").write(0, b"under the mount")
        with pytest.raises(FileNotFound):
            ns.root().walk("mnt").lookup("hidden")  # covered by the mount
        ns.unmount("/mnt")
        assert ns.root().walk("mnt/hidden").read_all() == b"under the mount"

    def test_unmount_unknown_rejected(self, namespace):
        ns, _, _ = namespace
        with pytest.raises(InvalidArgument):
            ns.unmount("/home")

    def test_nested_mounts(self, namespace):
        ns, _, mounted = namespace
        mounted.root().mkdir("deeper")
        third = ufs_layer()
        third.root().create("bottom").write(0, b"third fs")
        ns.mount("/mnt/deeper", third)
        assert ns.root().walk("mnt/deeper/bottom").read_all() == b"third fs"
        assert ns.mount_points == ["/mnt", "/mnt/deeper"]

    def test_mount_point_protected_from_removal(self, namespace):
        ns, _, _ = namespace
        with pytest.raises(InvalidArgument):
            ns.root().rmdir("mnt")
        with pytest.raises(InvalidArgument):
            ns.root().remove("mnt")


class TestCrossMountRestrictions:
    def test_rename_across_mounts_rejected(self, namespace):
        ns, _, _ = namespace
        root = ns.root()
        root.walk("home").create("f")
        with pytest.raises(CrossDevice):
            root.walk("home").rename("f", root.walk("mnt"), "f")

    def test_link_across_mounts_rejected(self, namespace):
        ns, _, _ = namespace
        root = ns.root()
        f = root.walk("home").create("f")
        with pytest.raises(CrossDevice):
            root.walk("mnt").link(f, "alias")

    def test_rename_within_one_mount_works(self, namespace):
        ns, _, _ = namespace
        mnt = ns.root().walk("mnt")
        mnt.create("a").write(0, b"z")
        mnt.rename("a", mnt, "b")
        assert mnt.lookup("b").read_all() == b"z"


class TestFicusAsAMount:
    def test_replicated_namespace_beside_private_files(self):
        """The workstation picture: private UFS at /, the distributed
        Ficus namespace mounted at /ficus."""
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        private = ufs_layer()
        private.root().mkdir("ficus")
        private.root().create("private.txt").write(0, b"local only")
        ns = MountLayer(private)
        ns.mount("/ficus", system.host("a").logical)
        root = ns.root()
        root.walk("ficus").create("shared.txt").write(0, b"replicated")
        # visible to the other Ficus host...
        assert system.host("b").fs().read_file("/shared.txt") == b"replicated"
        # ...while private files never left the workstation
        assert root.lookup("private.txt").read_all() == b"local only"
