"""Edge-case sweep across layers: the paths mainline tests don't hit."""

import pytest

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotSupported,
)
from repro.net import Network
from repro.nfs import NfsClientLayer, NfsServer
from repro.sim import DaemonConfig, FicusSystem
from repro.storage import BlockDevice
from repro.ufs import FileType, Ufs
from repro.util import VirtualClock
from repro.vnode import Credential, OpContext, SetAttrs, UfsLayer

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


class TestVirtualClock:
    def test_negative_advance_rejected(self):
        with pytest.raises(InvalidArgument):
            VirtualClock().advance(-1.0)

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0

    def test_repr(self):
        assert "3.5" in repr(VirtualClock(3.5))


class TestNfsEdges:
    @pytest.fixture
    def world(self):
        net = Network()
        net.add_host("s")
        net.add_host("c")
        layer = UfsLayer(Ufs.mkfs(BlockDevice(2048), num_inodes=128, clock=net.clock))
        NfsServer(net, "s", layer)
        return net, layer, NfsClientLayer(net, "c", "s")

    def test_setattr_over_nfs(self, world):
        _, _, client = world
        f = client.root().create("f")
        f.write(0, b"0123456789")
        f.setattr(SetAttrs(size=4, perm=0o600))
        attrs = f.getattr()
        assert attrs.size == 4 and attrs.perm == 0o600

    def test_access_over_nfs(self, world):
        _, _, client = world
        f = client.root().create("f", perm=0o600, ctx=OpContext(cred=Credential(uid=5)))
        assert f.access(4, OpContext(cred=Credential(uid=5)))
        assert not f.access(4, OpContext(cred=Credential(uid=6)))

    def test_nfs_vnode_equality_and_hash(self, world):
        _, _, client = world
        client.root().create("f")
        a = client.root().lookup("f")
        b = client.root().lookup("f")
        assert a == b and hash(a) == hash(b)

    def test_name_cache_expires_after_ttl(self, world):
        net, layer, client = world
        root = client.root()
        root.create("f")
        root.lookup("f")
        # mutate behind the cache, past the TTL
        layer.root().remove("f")
        net.clock.advance(10.0)
        with pytest.raises(FileNotFound):
            root.lookup("f")

    def test_lookup_error_not_cached(self, world):
        _, layer, client = world
        root = client.root()
        with pytest.raises(FileNotFound):
            root.lookup("late")
        layer.root().create("late").write(0, b"now exists")
        assert root.lookup("late").read_all() == b"now exists"

    def test_fsync_is_noop_but_accepted(self, world):
        _, _, client = world
        f = client.root().create("f")
        f.fsync()


class TestPhysicalEdges:
    @pytest.fixture
    def system(self):
        return FicusSystem(["solo"], daemon_config=QUIET)

    def test_physical_root_readdir_lists_volume_replicas(self, system):
        host = system.host("solo")
        entries = host.physical.root().readdir()
        assert len(entries) == 1
        assert entries[0].ftype == FileType.DIRECTORY

    def test_physical_root_getattr(self, system):
        attrs = system.host("solo").physical.root().getattr()
        assert attrs.ftype == FileType.DIRECTORY

    def test_unknown_volume_replica_lookup(self, system):
        from repro.util import VolumeId, VolumeReplicaId

        phys = system.host("solo").physical
        with pytest.raises(FileNotFound):
            phys.root().lookup(VolumeReplicaId(VolumeId(9, 9), 9).to_hex())

    def test_dir_setattr_size_rejected(self, system):
        host = system.host("solo")
        volrep = system.root_locations[0].volrep
        root = host.physical.root().lookup(volrep.to_hex())
        with pytest.raises(IsADirectory):
            root.setattr(SetAttrs(size=0))

    def test_dir_setattr_perm_allowed(self, system):
        host = system.host("solo")
        volrep = system.root_locations[0].volrep
        root = host.physical.root().lookup(volrep.to_hex())
        root.setattr(SetAttrs(perm=0o700))
        assert root.getattr().perm == 0o700

    def test_file_vnode_lookup_rejected(self, system):
        fs = system.host("solo").fs()
        fs.write_file("/f", b"x")
        host = system.host("solo")
        volrep = system.root_locations[0].volrep
        root = host.physical.root().lookup(volrep.to_hex())
        with pytest.raises(NotADirectory):
            root.lookup("f").lookup("child")

    def test_double_volume_replica_creation_rejected(self, system):
        phys = system.host("solo").physical
        with pytest.raises(InvalidArgument):
            phys.create_volume_replica(system.root_locations[0].volrep)


class TestLogicalEdges:
    @pytest.fixture
    def system(self):
        return FicusSystem(["a", "b"], daemon_config=QUIET)

    def test_dir_getattr_and_access(self, system):
        root = system.host("a").root()
        attrs = root.getattr()
        assert attrs.ftype == FileType.DIRECTORY
        assert root.access(4)

    def test_file_setattr_perm(self, system):
        root = system.host("a").root()
        f = root.create("f")
        f.setattr(SetAttrs(perm=0o640))
        assert f.getattr().perm == 0o640

    def test_file_setattr_size_bumps_vv(self, system):
        root = system.host("a").root()
        f = root.create("f")
        f.write(0, b"0123456789")
        f.setattr(SetAttrs(size=2))
        assert f.read_all() == b"01"

    def test_fsync_accepted(self, system):
        root = system.host("a").root()
        f = root.create("f")
        f.write(0, b"x")
        f.fsync()

    def test_logical_vnode_equality(self, system):
        root = system.host("a").root()
        root.create("f")
        assert root.lookup("f") == root.lookup("f")
        assert root == system.host("a").root()
        assert root != system.host("b").root()

    def test_lookup_on_file_rejected(self, system):
        root = system.host("a").root()
        root.create("f")
        with pytest.raises(NotADirectory):
            root.lookup("f").lookup("child")


class TestFacadeEdges:
    @pytest.fixture
    def fs(self):
        return FicusSystem(["solo"], daemon_config=QUIET).host("solo").fs()

    def test_append_creates_missing_file(self, fs):
        fs.append_file("/new", b"first")
        assert fs.read_file("/new") == b"first"

    def test_stat_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.stat("/ghost")

    def test_mkdir_under_file_rejected(self, fs):
        fs.write_file("/f", b"x")
        with pytest.raises(NotADirectory):
            fs.mkdir("/f/sub")

    def test_bad_open_mode_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.open("/f", "q")

    def test_rename_to_nested_missing_parent(self, fs):
        fs.write_file("/f", b"x")
        with pytest.raises(FileNotFound):
            fs.rename("/f", "/no/such/place")

    def test_double_close_tolerated(self, fs):
        fs.write_file("/f", b"x")
        handle = fs.open("/f")
        handle.close()
        handle.close()

    def test_context_manager_releases_on_error(self, fs):
        fs.write_file("/f", b"x")
        with pytest.raises(RuntimeError):
            with fs.open("/f", "w") as f:
                raise RuntimeError("boom")
        # the lock must have been released
        fs.open("/f", "w").close()

    def test_walk_tree_of_subdir(self, fs):
        fs.makedirs("/a/b")
        fs.write_file("/a/b/f", b"x")
        assert fs.walk_tree("/a") == ["/a/b", "/a/b/f"]

    def test_link_to_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.link("/d", "/alias")


class TestNullLayerEdges:
    def test_unsupported_op_propagates(self):
        from repro.vnode import build_null_stack

        base = UfsLayer(Ufs.mkfs(BlockDevice(1024), num_inodes=64))
        top = build_null_stack(base, 2)
        f = top.root().create("f")
        with pytest.raises(NotSupported):
            f.ioctl("whatever")
