"""Tests for the extension layers (monitor, auth, crypt) and their
composition — the paper's 'slipped in as a transparent layer' claim
exercised with layers that actually do something."""

import pytest

from repro.errors import FileNotFound, PermissionDenied
from repro.layers import AccessPolicy, AuthLayer, CryptLayer, Keystream, MonitorLayer
from repro.storage import BlockDevice
from repro.ufs import Ufs, fsck
from repro.vnode import Credential, OpContext, UfsLayer


@pytest.fixture
def ufs_layer():
    return UfsLayer(Ufs.mkfs(BlockDevice(4096), num_inodes=256))


class TestMonitorLayer:
    def test_operations_profiled(self, ufs_layer):
        mon = MonitorLayer(ufs_layer)
        root = mon.root()
        f = root.create("f")
        f.write(0, b"0123456789")
        f.read(0, 10)
        root.lookup("f")
        assert mon.profile["create"].calls == 1
        assert mon.profile["write"].bytes_in == 10
        assert mon.profile["read"].bytes_out == 10
        assert mon.profile["lookup"].calls == 1
        assert mon.profile["read"].mean_seconds > 0

    def test_errors_counted(self, ufs_layer):
        mon = MonitorLayer(ufs_layer)
        with pytest.raises(FileNotFound):
            mon.root().lookup("missing")
        assert mon.profile["lookup"].errors == 1

    def test_behaviour_unchanged(self, ufs_layer):
        mon = MonitorLayer(ufs_layer)
        root = mon.root()
        d = root.mkdir("d")
        d.create("f").write(0, b"through the monitor")
        assert root.walk("d/f").read_all() == b"through the monitor"
        assert fsck(ufs_layer.fs).clean

    def test_report_and_reset(self, ufs_layer):
        mon = MonitorLayer(ufs_layer)
        mon.root().create("f")
        text = mon.report()
        assert "create" in text and "calls" in text
        mon.reset()
        assert not mon.profile


class TestAuthLayer:
    def test_denied_uid_blocked_everywhere(self, ufs_layer):
        auth = AuthLayer(ufs_layer, AccessPolicy(allowed_uids={100}))
        root = auth.root()
        intruder = OpContext(cred=Credential(uid=200))
        with pytest.raises(PermissionDenied):
            root.lookup("anything", intruder)
        with pytest.raises(PermissionDenied):
            root.create("f", ctx=intruder)
        assert auth.denials == 2

    def test_allowed_uid_passes(self, ufs_layer):
        auth = AuthLayer(ufs_layer, AccessPolicy(allowed_uids={100}))
        root = auth.root()
        member = OpContext(cred=Credential(uid=100))
        f = root.create("f", ctx=member)
        f.write(0, b"ok", ctx=member)
        assert root.lookup("f", member).read(0, 2, member) == b"ok"

    def test_read_only_uid(self, ufs_layer):
        auth = AuthLayer(ufs_layer, AccessPolicy(read_only_uids={50}))
        root = auth.root()
        root.create("f").write(0, b"public")
        reader = OpContext(cred=Credential(uid=50))
        assert root.lookup("f", reader).read(0, 6, reader) == b"public"
        with pytest.raises(PermissionDenied):
            root.create("nope", ctx=reader)
        with pytest.raises(PermissionDenied):
            root.lookup("f", reader).write(0, b"x", reader)

    def test_root_bypass_configurable(self, ufs_layer):
        strict = AuthLayer(ufs_layer, AccessPolicy(allowed_uids={1}, root_bypasses=False))
        with pytest.raises(PermissionDenied):
            strict.root().create("f")  # default cred is uid 0

    def test_rename_and_link_gated(self, ufs_layer):
        auth = AuthLayer(ufs_layer, AccessPolicy(read_only_uids={50}))
        root = auth.root()
        f = root.create("f")
        reader = OpContext(cred=Credential(uid=50))
        with pytest.raises(PermissionDenied):
            root.rename("f", root, "g", reader)
        with pytest.raises(PermissionDenied):
            root.link(f, "alias", reader)


class TestKeystream:
    def test_apply_is_involution(self):
        ks = Keystream(b"secret")
        data = bytes(range(256)) * 3
        assert ks.apply(7, 100, ks.apply(7, 100, data)) == data

    def test_position_dependence(self):
        ks = Keystream(b"secret")
        assert ks.apply(7, 0, b"same") != ks.apply(7, 1000, b"same")

    def test_file_dependence(self):
        ks = Keystream(b"secret")
        assert ks.apply(7, 0, b"same") != ks.apply(8, 0, b"same")

    def test_key_dependence(self):
        assert Keystream(b"a").apply(7, 0, b"same") != Keystream(b"b").apply(7, 0, b"same")

    def test_splice_consistency(self):
        """Encrypting in two chunks equals encrypting in one."""
        ks = Keystream(b"k")
        data = b"x" * 100
        whole = ks.apply(3, 40, data)
        parts = ks.apply(3, 40, data[:37]) + ks.apply(3, 77, data[37:])
        assert whole == parts


class TestCryptLayer:
    def test_round_trip(self, ufs_layer):
        crypt = CryptLayer(ufs_layer, key=b"hunter2")
        root = crypt.root()
        f = root.create("secret.txt")
        f.write(0, b"the plans for the fortress")
        assert root.lookup("secret.txt").read(0, 100) == b"the plans for the fortress"

    def test_lower_layer_sees_only_ciphertext(self, ufs_layer):
        crypt = CryptLayer(ufs_layer, key=b"hunter2")
        crypt.root().create("f").write(0, b"plaintext-plaintext")
        raw = ufs_layer.root().lookup("f").read_all()
        assert raw != b"plaintext-plaintext"
        assert len(raw) == len(b"plaintext-plaintext")

    def test_random_access_read_write(self, ufs_layer):
        crypt = CryptLayer(ufs_layer, key=b"k")
        f = crypt.root().create("f")
        f.write(0, b"a" * 1000)
        f.write(500, b"MIDDLE")
        assert f.read(498, 10) == b"aaMIDDLEaa"

    def test_wrong_key_reads_garbage(self, ufs_layer):
        CryptLayer(ufs_layer, key=b"right").root().create("f").write(0, b"sensitive")
        wrong = CryptLayer(ufs_layer, key=b"wrong")
        assert wrong.root().lookup("f").read(0, 9) != b"sensitive"


class TestComposition:
    def test_full_tower(self, ufs_layer):
        """auth over monitor over crypt over UFS: every layer does its job
        simultaneously, none knows about the others."""
        crypt = CryptLayer(ufs_layer, key=b"k")
        mon = MonitorLayer(crypt)
        auth = AuthLayer(mon, AccessPolicy(read_only_uids={9}))
        root = auth.root()
        root.create("f").write(0, b"layered")
        # plaintext visible at the top
        assert root.lookup("f").read(0, 7) == b"layered"
        # ciphertext at the bottom
        assert ufs_layer.root().lookup("f").read_all() != b"layered"
        # the monitor saw the traffic
        assert mon.profile["write"].calls == 1
        # the policy still bites
        with pytest.raises(PermissionDenied):
            root.lookup("f").write(0, b"x", OpContext(cred=Credential(uid=9)))

    def test_crypt_under_ficus_stack(self):
        """Encryption below the physical layer: replica storage on disk is
        ciphertext while the logical layer serves plaintext — layers
        'can ... even surround other layers' (Section 7)."""
        from repro.physical import FicusPhysicalLayer
        from repro.util import VolumeId, VolumeReplicaId
        from repro.physical import EntryType, op_insert

        base = UfsLayer(Ufs.mkfs(BlockDevice(8192), num_inodes=256))
        crypt = CryptLayer(base, key=b"disk-key")
        phys = FicusPhysicalLayer(crypt, "hostX")
        vr = VolumeReplicaId(VolumeId(1, 1), 1)
        store = phys.create_volume_replica(vr)
        root = phys.root().lookup(vr.to_hex())
        from repro.util import FicusFileHandle

        fh = FicusFileHandle(VolumeId(1, 1), store.new_file_id())
        root.create(op_insert(store.new_entry_id(), "doc", fh, EntryType.FILE)).write(0, b"top secret")
        # through the stack: plaintext
        assert root.lookup("doc").read(0, 10) == b"top secret"
        # on the raw UFS: ciphertext (find the biggest regular file's bytes)
        raw_hits = []
        fs = base.fs
        for ino in range(1, fs.sb.num_inodes + 1):
            inode = fs._get_inode_raw(ino)
            if inode.is_regular and inode.size == 10:
                raw_hits.append(fs.read_file(ino))
        assert raw_hits and all(b"top secret" != data for data in raw_hits)
