"""Unit tests for the UFS substrate."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NameTooLong,
    NoSpace,
    NotADirectory,
)
from repro.storage import BlockDevice
from repro.ufs import MAX_NAME_LEN, ROOT_INO, FileType, Ufs, fsck


@pytest.fixture
def fs():
    return Ufs.mkfs(BlockDevice(4096), num_inodes=256)


class TestFiles:
    def test_create_and_read_empty(self, fs):
        ino = fs.create(ROOT_INO, "f")
        assert fs.read_file(ino) == b""
        assert fs.getattr(ino).ftype == FileType.REGULAR

    def test_write_and_read_back(self, fs):
        ino = fs.create(ROOT_INO, "f")
        fs.write_file(ino, 0, b"hello")
        assert fs.read_file(ino) == b"hello"

    def test_write_at_offset_creates_hole(self, fs):
        ino = fs.create(ROOT_INO, "f")
        fs.write_file(ino, 10000, b"tail")
        data = fs.read_file(ino)
        assert len(data) == 10004
        assert data[:10000] == bytes(10000)
        assert data[-4:] == b"tail"

    def test_overwrite_middle(self, fs):
        ino = fs.create(ROOT_INO, "f")
        fs.write_file(ino, 0, b"a" * 100)
        fs.write_file(ino, 50, b"B" * 10)
        data = fs.read_file(ino)
        assert data[49:61] == b"a" + b"B" * 10 + b"a"

    def test_partial_read(self, fs):
        ino = fs.create(ROOT_INO, "f")
        fs.write_file(ino, 0, b"0123456789")
        assert fs.read_file(ino, 3, 4) == b"3456"
        assert fs.read_file(ino, 8, 100) == b"89"
        assert fs.read_file(ino, 100, 5) == b""

    def test_large_file_uses_indirect_blocks(self, fs):
        ino = fs.create(ROOT_INO, "f")
        big = bytes(range(256)) * 300  # ~75 KB > 12 direct 4K blocks
        fs.write_file(ino, 0, big)
        assert fs.read_file(ino) == big
        assert fs.get_inode(ino).indirect != 0
        assert fsck(fs).clean

    def test_file_size_limit_enforced(self, fs):
        ino = fs.create(ROOT_INO, "f")
        max_blocks = 12 + fs.sb.pointers_per_block
        with pytest.raises(NoSpace):
            fs.write_file(ino, max_blocks * fs.sb.block_size, b"x")

    def test_truncate_shrinks_and_frees(self, fs):
        ino = fs.create(ROOT_INO, "f")
        free_before = fs.free_block_count()
        fs.write_file(ino, 0, b"z" * 100000)
        fs.truncate_file(ino, 10)
        assert fs.read_file(ino) == b"z" * 10
        assert fs.free_block_count() == free_before - 1
        assert fsck(fs).clean

    def test_truncate_then_extend_reads_zeros(self, fs):
        """Old bytes must never resurface past a truncation point."""
        ino = fs.create(ROOT_INO, "f")
        fs.write_file(ino, 0, b"secret-data!")
        fs.truncate_file(ino, 6)
        fs.write_file(ino, 12, b"new")
        assert fs.read_file(ino) == b"secret" + bytes(6) + b"new"

    def test_duplicate_create_rejected_without_leak(self, fs):
        fs.create(ROOT_INO, "f")
        free = fs.free_inode_count()
        with pytest.raises(FileExists):
            fs.create(ROOT_INO, "f")
        assert fs.free_inode_count() == free

    def test_atomic_contents_replace(self, fs):
        ino = fs.create(ROOT_INO, "f")
        fs.write_file(ino, 0, b"long old contents" * 10)
        fs.write_file_atomic_contents(ino, b"new")
        assert fs.read_file(ino) == b"new"


class TestDirectories:
    def test_mkdir_has_dot_entries(self, fs):
        d = fs.mkdir(ROOT_INO, "d")
        entries = fs.readdir(d)
        assert entries["."] == d
        assert entries[".."] == ROOT_INO

    def test_nested_path_lookup(self, fs):
        a = fs.mkdir(ROOT_INO, "a")
        b = fs.mkdir(a, "b")
        f = fs.create(b, "c.txt")
        assert fs.path_lookup("/a/b/c.txt") == f
        assert fs.path_lookup("b/c.txt", base=a) == f

    def test_lookup_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.lookup(ROOT_INO, "ghost")

    def test_lookup_through_file_raises(self, fs):
        f = fs.create(ROOT_INO, "f")
        with pytest.raises(NotADirectory):
            fs.lookup(f, "x")

    def test_rmdir_only_when_empty(self, fs):
        d = fs.mkdir(ROOT_INO, "d")
        fs.create(d, "f")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir(ROOT_INO, "d")
        fs.unlink(d, "f")
        fs.rmdir(ROOT_INO, "d")
        with pytest.raises(FileNotFound):
            fs.lookup(ROOT_INO, "d")
        assert fsck(fs).clean

    def test_rmdir_dot_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.rmdir(ROOT_INO, ".")

    def test_nlink_accounting_for_subdirs(self, fs):
        assert fs.get_inode(ROOT_INO).nlink == 2
        fs.mkdir(ROOT_INO, "d1")
        fs.mkdir(ROOT_INO, "d2")
        assert fs.get_inode(ROOT_INO).nlink == 4

    def test_name_too_long(self, fs):
        with pytest.raises(NameTooLong):
            fs.create(ROOT_INO, "x" * (MAX_NAME_LEN + 1))
        fs.create(ROOT_INO, "x" * MAX_NAME_LEN)  # exactly at the limit is fine

    def test_names_with_odd_characters(self, fs):
        for name in ["a b", "a=b", "café", "a\\b", ".hidden"]:
            ino = fs.create(ROOT_INO, name)
            assert fs.lookup(ROOT_INO, name) == ino

    def test_slash_and_nul_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.create(ROOT_INO, "a/b")
        with pytest.raises(InvalidArgument):
            fs.create(ROOT_INO, "a\x00b")


class TestLinks:
    def test_hard_link_shares_data(self, fs):
        ino = fs.create(ROOT_INO, "orig")
        fs.write_file(ino, 0, b"shared")
        fs.link(ino, ROOT_INO, "alias")
        assert fs.path_lookup("/alias") == ino
        assert fs.get_inode(ino).nlink == 2

    def test_unlink_keeps_data_until_last_link(self, fs):
        ino = fs.create(ROOT_INO, "orig")
        fs.write_file(ino, 0, b"d")
        fs.link(ino, ROOT_INO, "alias")
        fs.unlink(ROOT_INO, "orig")
        assert fs.read_file(ino) == b"d"
        fs.unlink(ROOT_INO, "alias")
        with pytest.raises(FileNotFound):
            fs.get_inode(ino)
        assert fsck(fs).clean

    def test_link_to_directory_rejected(self, fs):
        d = fs.mkdir(ROOT_INO, "d")
        with pytest.raises(IsADirectory):
            fs.link(d, ROOT_INO, "dlink")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir(ROOT_INO, "d")
        with pytest.raises(IsADirectory):
            fs.unlink(ROOT_INO, "d")

    def test_symlink_round_trip(self, fs):
        s = fs.symlink(ROOT_INO, "lnk", "/a/b/c")
        assert fs.readlink(s) == "/a/b/c"
        assert fs.getattr(s).ftype == FileType.SYMLINK

    def test_readlink_on_regular_file_rejected(self, fs):
        f = fs.create(ROOT_INO, "f")
        with pytest.raises(InvalidArgument):
            fs.readlink(f)


class TestRename:
    def test_simple_rename(self, fs):
        ino = fs.create(ROOT_INO, "old")
        fs.rename(ROOT_INO, "old", ROOT_INO, "new")
        assert fs.path_lookup("/new") == ino
        with pytest.raises(FileNotFound):
            fs.lookup(ROOT_INO, "old")

    def test_rename_across_directories_fixes_dotdot(self, fs):
        a = fs.mkdir(ROOT_INO, "a")
        b = fs.mkdir(ROOT_INO, "b")
        d = fs.mkdir(a, "d")
        fs.rename(a, "d", b, "d")
        assert fs.readdir(d)[".."] == b
        assert fs.get_inode(a).nlink == 2
        assert fs.get_inode(b).nlink == 3
        assert fsck(fs).clean

    def test_rename_replaces_file_target(self, fs):
        src = fs.create(ROOT_INO, "src")
        fs.write_file(src, 0, b"src")
        dst = fs.create(ROOT_INO, "dst")
        fs.write_file(dst, 0, b"dst")
        fs.rename(ROOT_INO, "src", ROOT_INO, "dst")
        assert fs.read_file(fs.path_lookup("/dst")) == b"src"
        with pytest.raises(FileNotFound):
            fs.get_inode(dst)
        assert fsck(fs).clean

    def test_rename_onto_directory_rejected(self, fs):
        fs.create(ROOT_INO, "f")
        fs.mkdir(ROOT_INO, "d")
        with pytest.raises(IsADirectory):
            fs.rename(ROOT_INO, "f", ROOT_INO, "d")


class TestPersistence:
    def test_remount_preserves_everything(self, fs):
        a = fs.mkdir(ROOT_INO, "a")
        f = fs.create(a, "f")
        fs.write_file(f, 0, b"persisted" * 100)
        fs2 = fs.remount()
        assert fs2.read_file(fs2.path_lookup("/a/f")) == b"persisted" * 100
        assert fsck(fs2).clean

    def test_generation_numbers_advance_across_remount(self, fs):
        f1 = fs.create(ROOT_INO, "f1")
        gen1 = fs.get_inode(f1).generation
        fs.unlink(ROOT_INO, "f1")
        fs2 = fs.remount()
        f2 = fs2.create(ROOT_INO, "f2")
        assert fs2.get_inode(f2).generation > gen1


class TestCaching:
    def test_warm_reopen_costs_zero_ios(self):
        """Paper Section 6: opening a recently accessed file involves no
        overhead not already incurred by the normal Unix file system —
        here, zero device I/Os for a fully warm cache."""
        dev = BlockDevice(4096)
        fs = Ufs.mkfs(dev, num_inodes=128)
        d = fs.mkdir(ROOT_INO, "d")
        f = fs.create(d, "f")
        fs.write_file(f, 0, b"data")
        fs.read_file(fs.path_lookup("/d/f"))  # warm everything
        snap = dev.counters.snapshot()
        fs.read_file(fs.path_lookup("/d/f"))
        assert dev.counters.delta_since(snap).total == 0

    def test_cold_lookup_reads_disk(self):
        dev = BlockDevice(4096)
        fs = Ufs.mkfs(dev, num_inodes=128)
        d = fs.mkdir(ROOT_INO, "d")
        fs.create(d, "f")
        fs.cache.invalidate_all()
        fs.namecache.invalidate_all()
        snap = dev.counters.snapshot()
        fs.path_lookup("/d/f")
        assert dev.counters.delta_since(snap).reads > 0

    def test_namecache_invalidated_on_unlink(self, fs):
        f = fs.create(ROOT_INO, "f")
        assert fs.lookup(ROOT_INO, "f") == f
        fs.unlink(ROOT_INO, "f")
        with pytest.raises(FileNotFound):
            fs.lookup(ROOT_INO, "f")

    def test_zero_capacity_caches_still_correct(self):
        dev = BlockDevice(4096)
        fs = Ufs.mkfs(dev, num_inodes=64, cache_blocks=0, name_cache_size=0)
        f = fs.create(ROOT_INO, "f")
        fs.write_file(f, 0, b"no caching")
        assert fs.read_file(fs.path_lookup("/f")) == b"no caching"


class TestSpaceExhaustion:
    def test_out_of_inodes(self):
        fs = Ufs.mkfs(BlockDevice(4096), num_inodes=4)
        fs.create(ROOT_INO, "a")
        fs.create(ROOT_INO, "b")
        with pytest.raises(NoSpace):
            fs.create(ROOT_INO, "c")  # inodes 1,2 reserved; 3,4 used

    def test_out_of_blocks(self):
        fs = Ufs.mkfs(BlockDevice(16), num_inodes=8)
        ino = fs.create(ROOT_INO, "big")
        with pytest.raises(NoSpace):
            fs.write_file(ino, 0, bytes(fs.sb.block_size * 100))

    def test_fsck_clean_after_enospc(self):
        fs = Ufs.mkfs(BlockDevice(16), num_inodes=8)
        ino = fs.create(ROOT_INO, "big")
        try:
            fs.write_file(ino, 0, bytes(fs.sb.block_size * 100))
        except NoSpace:
            pass
        # partial writes may have landed; block accounting must still agree
        assert fsck(fs).clean
