"""Symlink resolution through the path facade."""

import pytest

from repro.errors import FileNotFound, InvalidArgument
from repro.sim import DaemonConfig, FicusSystem
from repro.ufs import FileType

QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)


@pytest.fixture
def fs():
    return FicusSystem(["solo"], daemon_config=QUIET).host("solo").fs()


class TestFollowing:
    def test_absolute_symlink_followed(self, fs):
        fs.makedirs("/real/dir")
        fs.write_file("/real/dir/file", b"via link")
        fs.symlink("/real/dir", "/shortcut")
        assert fs.read_file("/shortcut/file") == b"via link"

    def test_relative_symlink_followed(self, fs):
        fs.makedirs("/a/b")
        fs.write_file("/a/target", b"sibling")
        fs.symlink("target", "/a/lnk")  # relative to /a
        assert fs.read_file("/a/lnk") == b"sibling"

    def test_final_component_followed_for_reads(self, fs):
        fs.write_file("/real", b"data")
        fs.symlink("/real", "/alias")
        assert fs.read_file("/alias") == b"data"
        assert fs.stat("/alias").is_file

    def test_lstat_does_not_follow(self, fs):
        fs.write_file("/real", b"data")
        fs.symlink("/real", "/alias")
        assert fs.lstat("/alias").ftype == FileType.SYMLINK
        assert fs.stat("/alias").ftype == FileType.REGULAR

    def test_readlink_does_not_follow(self, fs):
        fs.write_file("/real", b"x")
        fs.symlink("/real", "/alias")
        assert fs.readlink("/alias") == "/real"

    def test_chained_symlinks(self, fs):
        fs.write_file("/end", b"final")
        fs.symlink("/end", "/hop2")
        fs.symlink("/hop2", "/hop1")
        assert fs.read_file("/hop1") == b"final"

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/b", "/a")
        fs.symlink("/a", "/b")
        with pytest.raises(InvalidArgument):
            fs.read_file("/a")

    def test_dangling_symlink(self, fs):
        fs.symlink("/nowhere", "/dangling")
        with pytest.raises(FileNotFound):
            fs.read_file("/dangling")
        # but lstat of the link itself works
        assert fs.lstat("/dangling").ftype == FileType.SYMLINK

    def test_write_through_symlinked_directory(self, fs):
        fs.makedirs("/real")
        fs.symlink("/real", "/lnk")
        fs.write_file("/lnk/created-via-link", b"y")
        assert fs.read_file("/real/created-via-link") == b"y"

    def test_symlinks_replicate(self):
        system = FicusSystem(["a", "b"], daemon_config=QUIET)
        fs_a, fs_b = system.host("a").fs(), system.host("b").fs()
        fs_a.write_file("/real", b"z")
        fs_a.symlink("/real", "/lnk")
        system.reconcile_everything()
        system.partition([{"a"}, {"b"}])
        assert fs_b.readlink("/lnk") == "/real"
        assert fs_b.read_file("/lnk") == b"z"
