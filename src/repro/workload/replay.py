"""Trace-driven workload replay.

Floyd's studies (papers [5], [6]) were trace-driven; this module gives the
reproduction the same methodology: a plain-text trace format (one operation
per line, key=value records), a synthesizer that turns the statistical
generators into traces, and a replayer that applies a trace to a live
:class:`~repro.sim.FicusSystem` — including partition and heal events, so
whole experiment scenarios are a data file rather than code.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from repro.errors import FicusError, InvalidArgument
from repro.util.codec import decode_record, encode_record

#: Operations understood by the replayer.
OPS = (
    "write",
    "read",
    "exists",
    "mkdir",
    "unlink",
    "rmdir",
    "rename",
    "symlink",
    "partition",
    "heal",
    "advance",
    "tick",
)


@dataclass(frozen=True)
class TraceOp:
    """One trace line."""

    at: float
    op: str
    host: str = ""
    path: str = ""
    path2: str = ""  # rename destination / symlink target
    data: bytes = b""
    groups: tuple[frozenset[str], ...] = ()

    def encode(self) -> str:
        rec = {"t": f"{self.at:.6f}", "op": self.op}
        if self.host:
            rec["host"] = self.host
        if self.path:
            rec["path"] = self.path
        if self.path2:
            rec["path2"] = self.path2
        if self.data:
            rec["data"] = base64.b64encode(self.data).decode("ascii")
        if self.groups:
            rec["groups"] = ";".join(",".join(sorted(g)) for g in self.groups)
        return encode_record(rec)

    @classmethod
    def decode(cls, line: str) -> "TraceOp":
        rec = decode_record(line)
        try:
            op = rec["op"]
            if op not in OPS:
                raise InvalidArgument(f"unknown trace op {op!r}")
            groups = ()
            if "groups" in rec:
                groups = tuple(
                    frozenset(g.split(",")) for g in rec["groups"].split(";") if g
                )
            return cls(
                at=float(rec["t"]),
                op=op,
                host=rec.get("host", ""),
                path=rec.get("path", ""),
                path2=rec.get("path2", ""),
                data=base64.b64decode(rec["data"]) if "data" in rec else b"",
                groups=groups,
            )
        except KeyError as exc:
            raise InvalidArgument(f"trace line missing field {exc}") from exc


def encode_trace(ops: list[TraceOp]) -> str:
    return "\n".join(op.encode() for op in ops)


def decode_trace(text: str) -> list[TraceOp]:
    ops = [TraceOp.decode(line) for line in text.splitlines() if line.strip()]
    if any(b.at < a.at for a, b in zip(ops, ops[1:])):
        raise InvalidArgument("trace timestamps must be non-decreasing")
    return ops


@dataclass
class ReplayResult:
    """What happened during one replay."""

    applied: int = 0
    failed: int = 0
    reads: int = 0
    read_bytes: int = 0
    failures: list[tuple[TraceOp, str]] = field(default_factory=list)


def replay_trace(system, ops: list[TraceOp], strict: bool = False) -> ReplayResult:
    """Apply a trace to a :class:`~repro.sim.FicusSystem`.

    Virtual time advances to each op's timestamp (firing daemons on the
    way).  With ``strict`` False (the default), operation failures — e.g.
    a read during a partition — are recorded, not raised: partial
    operation is the normal state of the world being replayed.
    """
    result = ReplayResult()
    for op in ops:
        if op.at > system.clock.now():
            system.run_for(op.at - system.clock.now())
        try:
            _apply(system, op, result)
            result.applied += 1
        except FicusError as exc:
            if strict:
                raise
            result.failed += 1
            result.failures.append((op, f"{type(exc).__name__}: {exc}"))
    return result


def _apply(system, op: TraceOp, result: ReplayResult) -> None:
    if op.op == "partition":
        system.partition([set(g) for g in op.groups])
        return
    if op.op == "heal":
        system.heal()
        return
    if op.op == "advance":
        return  # time already advanced by the replay loop
    if op.op == "tick":
        # a recorded daemon tick: path names which daemon ran on the host,
        # so replicate-and-verify reproduces the exact message schedule
        host = system.host(op.host)
        if op.path == "propagation":
            host.propagation_daemon.tick()
        elif op.path == "recon":
            host.recon_daemon.tick()
        else:
            raise InvalidArgument(f"unknown tick daemon {op.path!r}")
        return
    fs = system.host(op.host).fs()
    if op.op == "write":
        fs.write_file(op.path, op.data)
    elif op.op == "read":
        data = fs.read_file(op.path)
        result.reads += 1
        result.read_bytes += len(data)
    elif op.op == "exists":
        fs.exists(op.path)
    elif op.op == "mkdir":
        # one RPC, exactly like the call being replayed: makedirs would
        # probe every path component and its extra lookups would shift
        # the fault-plane draw sequence, breaking replicate-and-verify
        fs.mkdir(op.path)
    elif op.op == "unlink":
        fs.unlink(op.path)
    elif op.op == "rmdir":
        fs.rmdir(op.path)
    elif op.op == "rename":
        fs.rename(op.path, op.path2)
    elif op.op == "symlink":
        fs.symlink(op.path2, op.path)


def synthesize_trace(
    hosts: list[str],
    duration: float,
    ops_per_minute: float = 30.0,
    write_fraction: float = 0.4,
    partition_prob_per_minute: float = 0.05,
    seed: int = 0,
) -> list[TraceOp]:
    """Generate a random-but-reproducible mixed trace."""
    import random

    rng = random.Random(seed)
    ops: list[TraceOp] = []
    t = 0.0
    paths: list[str] = []
    serial = 0
    partitioned = False
    while t < duration:
        t += rng.expovariate(ops_per_minute / 60.0)
        if t >= duration:
            break
        if rng.random() < partition_prob_per_minute / max(1.0, ops_per_minute):
            if partitioned:
                ops.append(TraceOp(at=t, op="heal"))
            else:
                shuffled = hosts[:]
                rng.shuffle(shuffled)
                cut = rng.randint(1, len(shuffled) - 1)
                ops.append(
                    TraceOp(
                        at=t,
                        op="partition",
                        groups=(frozenset(shuffled[:cut]), frozenset(shuffled[cut:])),
                    )
                )
            partitioned = not partitioned
            continue
        host = rng.choice(hosts)
        if rng.random() < write_fraction or not paths:
            serial += 1
            path = f"/t{serial}"
            ops.append(TraceOp(at=t, op="write", host=host, path=path,
                               data=f"payload {serial}".encode()))
            paths.append(path)
        else:
            ops.append(TraceOp(at=t, op="read", host=host, path=rng.choice(paths)))
    if partitioned:
        ops.append(TraceOp(at=duration, op="heal"))
    return ops
