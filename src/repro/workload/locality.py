"""File-reference locality workloads.

Floyd's UNIX trace studies ([5], [6] in the paper) found "a strong degree
of file reference locality"; Ficus's dual-mapping scheme is cheap
*because* caching exploits that locality (Section 2.6).  Experiment E11
replays synthetic traces with tunable locality: file popularity follows a
Zipf distribution (skew ``s``), and references cluster by directory the
way real working sets do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import InvalidArgument


@dataclass(frozen=True)
class FileRef:
    """One trace record: a reference to a file in a directory."""

    directory: str
    name: str

    @property
    def path(self) -> str:
        return f"{self.directory}/{self.name}"


class ZipfReferenceGenerator:
    """Generates file references with Zipf-distributed popularity.

    ``skew = 0`` is uniform (no locality); larger skews concentrate
    references on few files (strong locality).  Classic UNIX traces are
    well fit by skew near 1.
    """

    def __init__(
        self,
        num_directories: int,
        files_per_directory: int,
        skew: float = 1.0,
        seed: int = 0,
    ):
        if num_directories < 1 or files_per_directory < 1:
            raise InvalidArgument("need at least one directory and file")
        if skew < 0:
            raise InvalidArgument("skew must be non-negative")
        self.rng = random.Random(seed)
        self.files: list[FileRef] = [
            FileRef(directory=f"dir{d:03d}", name=f"file{f:03d}")
            for d in range(num_directories)
            for f in range(files_per_directory)
        ]
        # Zipf weights over a random permutation so popularity does not
        # correlate with directory order.
        order = list(range(len(self.files)))
        self.rng.shuffle(order)
        weights = [0.0] * len(self.files)
        for rank, index in enumerate(order, start=1):
            weights[index] = 1.0 / (rank**skew)
        self._weights = weights

    @property
    def directories(self) -> list[str]:
        return sorted({ref.directory for ref in self.files})

    def trace(self, length: int) -> list[FileRef]:
        """Draw ``length`` references."""
        return self.rng.choices(self.files, weights=self._weights, k=length)


def hit_ratio_estimate(trace: list[FileRef], working_set: int) -> float:
    """Fraction of references whose file was seen in the last ``working_set``
    distinct files — a cache-independent locality measure for sanity checks."""
    recent: list[str] = []
    hits = 0
    for ref in trace:
        path = ref.path
        if path in recent:
            hits += 1
            recent.remove(path)
        recent.append(path)
        if len(recent) > working_set:
            recent.pop(0)
    return hits / len(trace) if trace else 0.0
