"""Chaos convergence harness: seeded faults, then prove convergence.

"One key problem faced by a file system such as Ficus is that update
propagation is not reliable" (paper Section 2.3.1) — notifications are
best-effort datagrams, hosts crash between executing an operation and
acknowledging it, and partitions come and go.  The system's answer is
that *reconciliation* guarantees eventual consistency regardless of what
the optimistic fast path loses.

This harness puts that guarantee under test.  It drives a
:class:`~repro.sim.FicusSystem` through a seeded schedule of namespace
operations while the network's :class:`~repro.net.FaultPlane` drops,
duplicates, reorders, and times out traffic, and partitions split the
hosts at random.  Then every fault is withdrawn and the system is given
a bounded number of reconciliation rounds, after which the oracle runs:

* ``ficus_fsck`` must be clean on every replica (this includes the
  duplicate-(name, fh) invariant behind the cross-host rename bug);
* every host must report an identical name tree;
* file contents must agree wherever no update conflict was reported.

Everything is derived from one integer seed — the fault plane, the
partition schedule, and the operation mix — so any failure replays
exactly with ``run_chaos(seed)``.

Run as a module for CI::

    python -m repro.workload.chaos --seeds 11 17 1990 --rename-storm-seed 1990
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.errors import FicusError
from repro.net import LinkFaults
from repro.physical import ficus_fsck
from repro.sim import TOPOLOGIES, DaemonConfig, FicusSystem, make_topology

#: seed under which the harness always replays the cross-host rename
#: collision (the PR's headline bug) inside the chaos schedule
RENAME_BUG_SEED = 1990

_QUIET = DaemonConfig(propagation_period=None, recon_period=None, graft_prune_period=None)

#: moderate loss: enough to exercise every retry path without making the
#: chaos phase a pure error storm
DEFAULT_FAULTS = LinkFaults(
    drop=0.2, duplicate=0.1, reorder=0.1, rpc_timeout=0.08, reply_lost=0.04
)


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run; the seed supplies all randomness."""

    host_count: int = 3
    rounds: int = 8
    ops_per_round: int = 4
    #: chance per round that the topology is re-drawn into two groups
    partition_prob: float = 0.35
    #: chance per round that an existing partition heals
    heal_prob: float = 0.5
    faults: LinkFaults = DEFAULT_FAULTS
    #: deterministically replay the same-name cross-host rename collision
    #: before the random schedule begins
    rename_storm: bool = False
    #: distinct file names the operation mix draws from (small on purpose,
    #: so concurrent operations collide)
    file_names: int = 4
    dir_names: int = 2
    #: chance per round that one up host crashes (0.0 keeps the rng
    #: schedule of crash-free seeds byte-identical)
    crash_prob: float = 0.0
    #: rounds a crashed host stays down before the harness reboots it
    crash_down_rounds: int = 2
    #: enable the automatic conflict-resolution registry and mix covered
    #: append-log operations into the schedule (False keeps the rng
    #: schedule of resolver-free seeds byte-identical)
    resolvers: bool = False
    #: peer-selection strategy both daemons run ("full_mesh", "ring",
    #: "gossip"); full_mesh replays historical schedules byte-identically,
    #: and the gossip schedule is seeded from the chaos seed so a failing
    #: run replays its peer selections exactly
    topology: str = "full_mesh"
    #: record the exact call history (every fs call, tick, partition and
    #: heal) as a replayable trace on the report; consumes no randomness,
    #: so recorded and unrecorded runs of a seed are byte-identical
    record_history: bool = False
    #: after convergence, re-execute the recorded history on a fresh
    #: cluster and byte-diff the two (implies ``record_history``)
    verify_replication: bool = False
    #: oracle gate: after the quiesce no replica may report reconciliation
    #: staleness older than this many virtual seconds (None = ungated)
    staleness_slo_seconds: float | None = None
    #: advance the shared virtual clock this much at the top of every
    #: round, so wall-clock staleness accrues during partitions (0.0
    #: keeps historical seeds' timestamps byte-identical; the advance
    #: draws no randomness either way)
    clock_step: float = 0.0


@dataclass
class ChaosReport:
    """What one chaos run did and whether the system converged."""

    seed: int
    ops_attempted: int = 0
    #: operations the fault plane caused to fail at the client
    ops_failed: int = 0
    partitions_formed: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    unresolved_conflicts: int = 0
    #: concurrent-update conflicts the resolver subsystem merged away
    auto_resolved: int = 0
    crashes: int = 0
    restarts: int = 0
    #: oracle violations; empty means the run converged
    problems: list[str] = field(default_factory=list)
    #: the (identical) converged name tree, for report consumers
    tree: list[str] = field(default_factory=list)
    #: flight-recorder dumps written because the oracle failed
    flight_dumps: list[str] = field(default_factory=list)
    #: the recorded call history (``config.record_history``), replayable
    #: through :func:`~repro.workload.replay.replay_trace`
    history: list = field(default_factory=list)
    #: worst per-host wall-clock staleness observed after the quiesce
    max_staleness_seconds: float = 0.0
    #: the replicate-and-verify outcome (``config.verify_replication``)
    verify: object = None

    @property
    def converged(self) -> bool:
        return not self.problems


class _RecordingFs:
    """Transparent recorder around the path-based filesystem facade.

    Every call is appended to the history *before* it runs, so attempts
    the fault plane failed are recorded too — replaying them re-issues
    the same RPCs and therefore consumes the same fault-plane draws,
    which is what makes the re-execution schedule byte-identical.
    """

    def __init__(self, fs, host_name: str, clock, history: list):
        self._fs = fs
        self._host = host_name
        self._clock = clock
        self._history = history

    def _rec(self, op: str, path: str = "", path2: str = "", data: bytes = b"") -> None:
        from repro.workload.replay import TraceOp

        self._history.append(
            TraceOp(
                at=self._clock.now(), op=op, host=self._host, path=path, path2=path2, data=data
            )
        )

    def write_file(self, path: str, data: bytes):
        self._rec("write", path, data=data)
        return self._fs.write_file(path, data)

    def read_file(self, path: str):
        self._rec("read", path)
        return self._fs.read_file(path)

    def exists(self, path: str):
        self._rec("exists", path)
        return self._fs.exists(path)

    def mkdir(self, path: str):
        self._rec("mkdir", path)
        return self._fs.mkdir(path)

    def rename(self, src: str, dst: str):
        self._rec("rename", src, dst)
        return self._fs.rename(src, dst)

    def unlink(self, path: str):
        self._rec("unlink", path)
        return self._fs.unlink(path)


def run_chaos(seed: int, config: ChaosConfig | None = None) -> ChaosReport:
    """One seeded chaos run: inject faults, quiesce, check convergence."""
    config = config or ChaosConfig()
    rng = random.Random(seed)
    report = ChaosReport(seed=seed)

    recording = config.record_history or config.verify_replication
    if recording and (config.rename_storm or config.crash_prob):
        # the storm prologue and crash/restart epochs act outside the
        # trace vocabulary, so a recorded history could not replay them
        raise ValueError("record_history/verify_replication exclude rename_storm and crashes")
    history: list | None = report.history if recording else None

    host_names = [f"h{i}" for i in range(config.host_count)]
    system = FicusSystem(
        host_names,
        daemon_config=_QUIET,
        topology=make_topology(config.topology, seed=seed),
    )
    system.network.faults.reseed(seed)
    if config.resolvers:
        system.enable_resolvers()

    if config.rename_storm:
        _rename_storm(system, host_names)

    system.network.faults.set_default(config.faults)
    partitioned = False
    down: dict[str, int] = {}  # crashed host -> rounds left down
    for round_index in range(config.rounds):
        if config.clock_step:
            system.clock.advance(config.clock_step)
        # reboot hosts whose downtime has elapsed; the restart runs the
        # shadow-commit recovery sweep, so a second sweep must find nothing
        for host_name in [h for h, left in down.items() if left <= 1]:
            del down[host_name]
            _restart_host(system, host_name, report)
        for host_name in down:
            down[host_name] -= 1
        partitioned = _maybe_repartition(
            system, host_names, rng, partitioned, report, config, history
        )
        # config.crash_prob short-circuits before the rng draw, keeping
        # crash-free seeds' schedules byte-identical to before
        if (
            config.crash_prob
            and len(down) < len(host_names) - 1
            and rng.random() < config.crash_prob
        ):
            victim = rng.choice(sorted(h for h in host_names if h not in down))
            system.host(victim).crash()
            down[victim] = config.crash_down_rounds
            report.crashes += 1
        for host_name in host_names:
            if host_name in down:
                continue
            fs = system.host(host_name).fs()
            if history is not None:
                fs = _RecordingFs(fs, host_name, system.clock, history)
            for _ in range(config.ops_per_round):
                report.ops_attempted += 1
                try:
                    _random_op(fs, rng, config, host_name, round_index)
                except FicusError:
                    # an injected timeout or a partition surfaced at the
                    # client — exactly what optimism tolerates
                    report.ops_failed += 1
        # exercise the daemons (and their retry/degraded-peer policies)
        # while the faults are still live
        for host_name in host_names:
            if host_name in down:
                continue
            host = system.host(host_name)
            if history is not None:
                _record_tick(history, system, host_name, "propagation")
            host.propagation_daemon.tick()
            if history is not None:
                _record_tick(history, system, host_name, "recon")
            host.recon_daemon.tick()

    # -- quiesce: withdraw every fault, then converge ---------------------
    for host_name in sorted(down):
        _restart_host(system, host_name, report)
    down.clear()
    report.faults_injected = dict(system.network.faults.injected)
    system.heal()
    system.network.faults.clear()
    system.network.flush_deferred_datagrams()
    for host_name in host_names:
        host = system.host(host_name)
        host.propagation_daemon.peer_health.reset()
        host.recon_daemon.peer_health.reset()
    system.reconcile_everything(rounds=config.host_count + 2)
    for _ in range(2):
        for host_name in host_names:
            system.host(host_name).propagation_daemon.tick()

    _check_convergence(system, host_names, report, config)
    report.unresolved_conflicts = system.total_conflicts()
    report.auto_resolved = sum(
        system.host(h).recon_daemon.stats.total_auto_resolved for h in host_names
    )

    # wall-clock staleness SLO: after the heal and the convergence
    # rounds, no replica may still be serving data older than the bound
    report.max_staleness_seconds = max(
        (system.host(h).health().max_staleness_seconds for h in host_names), default=0.0
    )
    if (
        config.staleness_slo_seconds is not None
        and report.max_staleness_seconds > config.staleness_slo_seconds
    ):
        for host_name in host_names:
            health = system.host(host_name).health()
            if health.max_staleness_seconds > config.staleness_slo_seconds:
                report.problems.append(
                    f"{host_name}: staleness SLO violated after heal: "
                    f"{health.max_staleness_seconds:g}s > "
                    f"{config.staleness_slo_seconds:g}s ({health.staleness_seconds})"
                )

    if config.verify_replication:
        from repro.workload.verify import replicate_and_verify, state_fingerprint

        baseline = state_fingerprint(system, host_names)
        verify = replicate_and_verify(report.history, seed, config, baseline)
        report.verify = verify
        for problem in verify.problems:
            report.problems.append(f"replicate-and-verify: {problem}")

    if report.problems:
        _dump_flight_recorders(system, host_names, seed, report)
    return report


def _record_tick(history: list, system: FicusSystem, host_name: str, daemon: str) -> None:
    from repro.workload.replay import TraceOp

    history.append(
        TraceOp(at=system.clock.now(), op="tick", host=host_name, path=daemon)
    )


def _restart_host(system: FicusSystem, host_name: str, report: ChaosReport) -> None:
    """Reboot a crashed host and assert the recovery sweep ran clean.

    ``FicusHost.restart`` scavenges orphan shadow files as part of crash
    recovery; a second sweep immediately afterwards must therefore find
    nothing — residue means the atomic-commit recovery path is broken.
    """
    host = system.host(host_name)
    host.restart(system)
    report.restarts += 1
    residue = 0
    for store in host.physical.stores.values():
        for dir_fh in store.all_directory_handles():
            residue += store.scavenge_shadows(dir_fh)
    if residue:
        report.problems.append(
            f"{host_name}: recovery sweep left {residue} shadow file(s) behind"
        )
        plane = host.health_plane
        if plane is not None:
            plane.anomaly("fsck_violation", host=host_name, shadow_residue=residue)


def _dump_flight_recorders(
    system: FicusSystem, host_names: list[str], seed: int, report: ChaosReport
) -> None:
    """The oracle failed: freeze every host's flight recorder to disk."""
    for host_name in host_names:
        plane = system.host(host_name).health_plane
        if plane is None:
            continue
        snapshot = plane.anomaly(
            "chaos_oracle_failure", seed=seed, problems=report.problems[:5]
        )
        path = f"ficus_flight_chaos_{seed}_{host_name}.jsonl"
        report.flight_dumps.append(plane.recorder.write_dump(snapshot, path))


def _rename_storm(system: FicusSystem, host_names: list[str]) -> None:
    """Replay the headline bug: every host renames one file to one name."""
    first = system.host(host_names[0]).fs()
    first.write_file("/storm", b"contested")
    system.reconcile_everything()
    for host_name in host_names:
        system.host(host_name).propagation_daemon.tick()
    system.partition([{name} for name in host_names])
    for host_name in host_names:
        try:
            system.host(host_name).fs().rename("/storm", "/storm-renamed")
        except FicusError:
            pass  # a replica without the entry yet simply sits this out
    system.heal()


def _maybe_repartition(
    system: FicusSystem,
    host_names: list[str],
    rng: random.Random,
    partitioned: bool,
    report: ChaosReport,
    config: ChaosConfig,
    history: list | None = None,
) -> bool:
    if partitioned and rng.random() < config.heal_prob:
        if history is not None:
            from repro.workload.replay import TraceOp

            history.append(TraceOp(at=system.clock.now(), op="heal"))
        system.heal()
        return False
    if not partitioned and rng.random() < config.partition_prob and len(host_names) > 1:
        shuffled = list(host_names)
        rng.shuffle(shuffled)
        cut = rng.randrange(1, len(shuffled))
        groups = [set(shuffled[:cut]), set(shuffled[cut:])]
        if history is not None:
            from repro.workload.replay import TraceOp

            history.append(
                TraceOp(
                    at=system.clock.now(),
                    op="partition",
                    groups=tuple(frozenset(g) for g in groups),
                )
            )
        system.partition(groups)
        report.partitions_formed += 1
        return True
    return partitioned


def _append_log_line(fs, path: str, line: str) -> None:
    """Append one record to a mailbox-style log file (read-modify-write)."""
    existing = fs.read_file(path) if fs.exists(path) else b""
    fs.write_file(path, existing + line.encode() + b"\n")


def _random_op(fs, rng: random.Random, config: ChaosConfig, host_name: str, round_index: int):
    """One namespace operation drawn from a deliberately small namespace."""
    # the resolvers gate short-circuits before any rng draw, so seeds run
    # without resolvers keep their historical schedules byte-identical
    if config.resolvers and rng.random() < 0.35:
        line = f"{host_name}:{round_index}:{rng.randrange(1000)}"
        _append_log_line(fs, f"/box{rng.randrange(2)}.log", line)
        return
    roll = rng.random()
    fname = f"/f{rng.randrange(config.file_names)}"
    dname = f"/d{rng.randrange(config.dir_names)}"
    if roll < 0.45:
        fs.write_file(fname, f"{host_name}:{round_index}:{rng.randrange(1000)}".encode())
    elif roll < 0.60:
        if not fs.exists(dname):
            fs.mkdir(dname)
        else:
            fs.write_file(f"{dname}/inner", host_name.encode())
    elif roll < 0.80:
        target = f"/f{rng.randrange(config.file_names)}"
        if fs.exists(fname) and fname != target and not fs.exists(target):
            fs.rename(fname, target)
    else:
        if fs.exists(fname):
            fs.unlink(fname)


def _check_convergence(
    system: FicusSystem, host_names: list[str], report: ChaosReport, config: ChaosConfig
) -> None:
    registry = system.resolvers if config.resolvers else None
    for host_name in host_names:
        host = system.host(host_name)
        for volrep, store in host.physical.stores.items():
            # the conflict log rides along so fsck can audit resolution
            # bookkeeping (resolved vvs must strictly dominate both inputs)
            fsck = ficus_fsck(store, conflict_log=host.conflict_log, resolvers=registry)
            for problem in fsck.problems:
                report.problems.append(f"{host_name}/{volrep}: {problem}")

    trees = {name: sorted(system.host(name).fs().walk_tree()) for name in host_names}
    baseline_host = host_names[0]
    baseline = trees[baseline_host]
    for host_name in host_names[1:]:
        if trees[host_name] != baseline:
            report.problems.append(
                f"trees diverged: {baseline_host}={baseline} vs "
                f"{host_name}={trees[host_name]}"
            )
    report.tree = baseline

    # resolver-covered files get the strong oracle: the registry merged
    # every concurrent update, so zero unresolved conflicts may mention
    # them and every replica must hold byte-identical contents — even
    # when hosts resolved the same conflict independently
    if registry is not None and not report.problems:
        for path in baseline:
            name = path.rsplit("/", 1)[-1]
            if not registry.covers(name):
                continue
            contents = set()
            for host_name in host_names:
                fs = system.host(host_name).fs()
                if fs.stat(path).is_file:
                    contents.add(fs.read_file(path))
            if len(contents) > 1:
                report.problems.append(
                    f"{path}: resolver-covered contents diverged across replicas"
                )
        for host_name in host_names:
            for open_conflict in system.host(host_name).conflict_log.unresolved():
                if registry.covers(open_conflict.name):
                    report.problems.append(
                        f"{host_name}: resolver-covered file "
                        f"{open_conflict.name!r} left unresolved"
                    )

    # contents must agree wherever no conflict is on record; a reported
    # update conflict legitimately preserves both versions until resolved
    if system.total_conflicts() == 0 and not report.problems:
        for path in baseline:
            contents = set()
            for host_name in host_names:
                fs = system.host(host_name).fs()
                if fs.stat(path).is_file:
                    contents.add(fs.read_file(path))
            if len(contents) > 1:
                report.problems.append(f"{path}: contents diverged with no conflict reported")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Seeded chaos convergence runs")
    parser.add_argument("--seeds", type=int, nargs="+", default=[11, 17, 23])
    parser.add_argument(
        "--rename-storm-seed",
        type=int,
        default=None,
        help="additionally run this seed with the cross-host rename collision replay",
    )
    parser.add_argument(
        "--crash-seed",
        type=int,
        default=None,
        help="additionally run this seed with seeded host crash/restart epochs",
    )
    parser.add_argument(
        "--resolver-seed",
        type=int,
        default=None,
        help="additionally run this seed with automatic conflict resolvers "
        "and covered append-log traffic in the mix",
    )
    parser.add_argument(
        "--verify-seed",
        type=int,
        default=None,
        help="additionally run this seed recording its full call history, then "
        "re-execute the recording on a fresh cluster and byte-diff the two "
        "(with the wall-clock staleness SLO gated)",
    )
    parser.add_argument(
        "--staleness-slo",
        type=float,
        default=60.0,
        help="staleness bound in virtual seconds applied to the --verify-seed run",
    )
    parser.add_argument("--hosts", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument(
        "--topology",
        choices=sorted(TOPOLOGIES),
        default="full_mesh",
        help="peer-selection strategy for both daemons (default: full_mesh, "
        "which replays historical seed schedules byte-identically)",
    )
    args = parser.parse_args(argv)

    base = ChaosConfig(host_count=args.hosts, rounds=args.rounds, topology=args.topology)
    runs = [(seed, base) for seed in args.seeds]
    if args.rename_storm_seed is not None:
        runs.append((args.rename_storm_seed, replace(base, rename_storm=True)))
    if args.crash_seed is not None:
        runs.append((args.crash_seed, replace(base, crash_prob=0.25)))
    if args.resolver_seed is not None:
        runs.append((args.resolver_seed, replace(base, resolvers=True)))
    if args.verify_seed is not None:
        runs.append(
            (
                args.verify_seed,
                replace(
                    base,
                    verify_replication=True,
                    staleness_slo_seconds=args.staleness_slo,
                    clock_step=1.0,
                ),
            )
        )

    failures = 0
    for seed, config in runs:
        report = run_chaos(seed, config)
        status = "converged" if report.converged else "DIVERGED"
        storm = "" if config.topology == "full_mesh" else f" [{config.topology}]"
        storm += " +rename-storm" if config.rename_storm else ""
        if config.resolvers:
            storm += f" +resolvers({report.auto_resolved} auto-resolved)"
        if config.verify_replication:
            verdict = "replay identical" if report.verify.identical else "REPLAY DIVERGED"
            storm += (
                f" +verify({len(report.history)} ops recorded, {verdict}, "
                f"staleness {report.max_staleness_seconds:g}s)"
            )
        crashes = f", {report.crashes} crashes" if config.crash_prob else ""
        print(
            f"seed {seed}{storm}: {status}; "
            f"{report.ops_attempted} ops ({report.ops_failed} failed), "
            f"{report.partitions_formed} partitions{crashes}, "
            f"faults {report.faults_injected or '{}'}, "
            f"{report.unresolved_conflicts} conflicts open"
        )
        for problem in report.problems:
            print(f"  !! {problem}")
        for path in report.flight_dumps:
            print(f"  flight recorder dumped: {path}")
        failures += 0 if report.converged else 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
