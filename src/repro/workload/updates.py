"""Update workload generation, including bursts.

Experiment E6 needs bursty updates: "rapid propagation enhances the
availability of the new version of the file; delayed propagation may
reduce the overall propagation cost when updates are bursty" (Section
3.2).  A burst of k updates to one file within the propagation delay
window should cost one pull, not k.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import InvalidArgument


@dataclass(frozen=True)
class UpdateEvent:
    """One scheduled write."""

    at: float
    path: str
    payload: bytes


class BurstyUpdateGenerator:
    """Bursts of writes to shared files, Poisson-spaced bursts."""

    def __init__(
        self,
        paths: list[str],
        burst_size: int = 5,
        intra_burst_gap: float = 0.1,
        mean_burst_interval: float = 60.0,
        seed: int = 0,
    ):
        if not paths:
            raise InvalidArgument("need at least one path")
        if burst_size < 1:
            raise InvalidArgument("burst_size must be >= 1")
        self.paths = list(paths)
        self.burst_size = burst_size
        self.intra_burst_gap = intra_burst_gap
        self.mean_burst_interval = mean_burst_interval
        self.rng = random.Random(seed)

    def schedule(self, duration: float, start: float = 0.0) -> list[UpdateEvent]:
        """All update events within ``[start, start + duration)``."""
        events: list[UpdateEvent] = []
        t = start
        serial = 0
        while True:
            t += self.rng.expovariate(1.0 / self.mean_burst_interval)
            if t >= start + duration:
                break
            path = self.rng.choice(self.paths)
            for k in range(self.burst_size):
                when = t + k * self.intra_burst_gap
                if when >= start + duration:
                    break
                serial += 1
                events.append(
                    UpdateEvent(at=when, path=path, payload=f"update-{serial}".encode())
                )
        return events


class SteadyUpdateGenerator:
    """Evenly spaced single updates (the no-burst control)."""

    def __init__(self, paths: list[str], interval: float = 10.0, seed: int = 0):
        if not paths:
            raise InvalidArgument("need at least one path")
        self.paths = list(paths)
        self.interval = interval
        self.rng = random.Random(seed)

    def schedule(self, duration: float, start: float = 0.0) -> list[UpdateEvent]:
        events = []
        serial = 0
        t = start + self.interval
        while t < start + duration:
            serial += 1
            events.append(
                UpdateEvent(
                    at=t,
                    path=self.rng.choice(self.paths),
                    payload=f"update-{serial}".encode(),
                )
            )
            t += self.interval
        return events
