"""Availability measurement harness (experiment E5).

Runs every replica-control policy against identical partition traces and
records, per policy, the fraction of read and update operations that were
permitted — the comparison behind the paper's "strictly greater
availability" claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines import (
    MajorityVotingRegister,
    OneCopyRegister,
    PrimaryCopyRegister,
    QuorumConsensusRegister,
    ReplicatedRegister,
    WeightedVotingRegister,
)
from repro.errors import QuorumNotAvailable
from repro.net import Network
from repro.workload.partitions import PartitionTraceGenerator, apply_epoch


@dataclass
class PolicyAvailability:
    """Measured availability of one policy over one trace."""

    policy: str
    reads_attempted: int = 0
    reads_succeeded: int = 0
    writes_attempted: int = 0
    writes_succeeded: int = 0
    conflicts: int = 0

    @property
    def read_availability(self) -> float:
        return self.reads_succeeded / self.reads_attempted if self.reads_attempted else 0.0

    @property
    def write_availability(self) -> float:
        return self.writes_succeeded / self.writes_attempted if self.writes_attempted else 0.0


@dataclass
class AvailabilityExperiment:
    """One full policy-comparison run."""

    num_hosts: int = 5
    link_failure_prob: float = 0.3
    epochs: int = 200
    ops_per_epoch: int = 4
    write_fraction: float = 0.5
    seed: int = 0
    results: dict[str, PolicyAvailability] = field(default_factory=dict)

    def run(self) -> dict[str, PolicyAvailability]:
        hosts = [f"h{i}" for i in range(self.num_hosts)]
        network = Network()
        for host in hosts:
            network.add_host(host)

        policies: list[ReplicatedRegister] = [
            OneCopyRegister(network, hosts, "one"),
            PrimaryCopyRegister(network, hosts, "pri"),
            MajorityVotingRegister(network, hosts, "maj"),
            WeightedVotingRegister(network, hosts, "wv"),
            QuorumConsensusRegister(network, hosts, "qc"),
        ]
        self.results = {p.policy_name: PolicyAvailability(p.policy_name) for p in policies}

        trace_gen = PartitionTraceGenerator(hosts, self.link_failure_prob, seed=self.seed)
        op_rng = random.Random(self.seed + 1)

        for _ in range(self.epochs):
            epoch = trace_gen.next_epoch()
            apply_epoch(network, epoch)
            # the same operation sequence is issued against every policy
            ops = [
                (op_rng.choice(hosts), op_rng.random() < self.write_fraction)
                for _ in range(self.ops_per_epoch)
            ]
            for requester, is_write in ops:
                payload = f"v-{epoch.index}-{requester}".encode()
                for policy in policies:
                    stats = self.results[policy.policy_name]
                    if is_write:
                        stats.writes_attempted += 1
                        try:
                            policy.write(requester, payload)
                            stats.writes_succeeded += 1
                        except QuorumNotAvailable:
                            pass
                    else:
                        stats.reads_attempted += 1
                        try:
                            policy.read(requester)
                            stats.reads_succeeded += 1
                        except QuorumNotAvailable:
                            pass
            # periodic healing + reconciliation keeps one-copy conflicts bounded
            network.heal()
            for policy in policies:
                if isinstance(policy, OneCopyRegister):
                    policy.reconcile(hosts[0])
                    self.results[policy.policy_name].conflicts = policy.conflicts_detected
        return self.results
