"""Partition trace generation.

"For a variety of technical, economic, and administrative reasons various
system components such as hosts, network links, and gateways will at times
be unusable" (paper Section 1).  We model that directly: every pair of
hosts has a link that is independently down with some probability each
epoch; the partition groups are the connected components of the surviving
link graph.  A seeded RNG makes every trace reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.errors import InvalidArgument


@dataclass
class PartitionEpoch:
    """One epoch of a partition trace."""

    index: int
    groups: list[frozenset[str]]

    @property
    def fully_connected(self) -> bool:
        return len(self.groups) == 1

    def group_of(self, host: str) -> frozenset[str]:
        for group in self.groups:
            if host in group:
                return group
        return frozenset([host])

    def reachable(self, a: str, b: str) -> bool:
        return b in self.group_of(a)


class PartitionTraceGenerator:
    """Generates epoch-by-epoch partition configurations."""

    def __init__(self, hosts: list[str], link_failure_prob: float, seed: int = 0):
        if not 0.0 <= link_failure_prob <= 1.0:
            raise InvalidArgument("link_failure_prob must be in [0, 1]")
        if len(hosts) < 1:
            raise InvalidArgument("need at least one host")
        self.hosts = list(hosts)
        self.link_failure_prob = link_failure_prob
        self.rng = random.Random(seed)
        self._epoch = 0

    def next_epoch(self) -> PartitionEpoch:
        """Sample link failures and return the resulting components."""
        graph = nx.Graph()
        graph.add_nodes_from(self.hosts)
        for i, a in enumerate(self.hosts):
            for b in self.hosts[i + 1 :]:
                if self.rng.random() >= self.link_failure_prob:
                    graph.add_edge(a, b)
        groups = [frozenset(c) for c in nx.connected_components(graph)]
        epoch = PartitionEpoch(index=self._epoch, groups=sorted(groups, key=min))
        self._epoch += 1
        return epoch

    def trace(self, epochs: int) -> list[PartitionEpoch]:
        return [self.next_epoch() for _ in range(epochs)]


def apply_epoch(network, epoch: PartitionEpoch) -> None:
    """Install one epoch's grouping on a simulated network."""
    if epoch.fully_connected:
        network.heal()
    else:
        network.partition([set(g) for g in epoch.groups])


def expected_availability_one_copy(
    epoch: PartitionEpoch, requester: str, replica_hosts: list[str]
) -> bool:
    """Ground truth for E5: a one-copy op succeeds iff >=1 replica in the
    requester's component."""
    group = epoch.group_of(requester)
    return any(host in group for host in replica_hosts)
