"""Workload generators and measurement harnesses."""

from repro.workload.availability import AvailabilityExperiment, PolicyAvailability
from repro.workload.chaos import (
    RENAME_BUG_SEED,
    ChaosConfig,
    ChaosReport,
    run_chaos,
)
from repro.workload.locality import FileRef, ZipfReferenceGenerator, hit_ratio_estimate
from repro.workload.partitions import (
    PartitionEpoch,
    PartitionTraceGenerator,
    apply_epoch,
    expected_availability_one_copy,
)
from repro.workload.replay import (
    ReplayResult,
    TraceOp,
    decode_trace,
    encode_trace,
    replay_trace,
    synthesize_trace,
)
from repro.workload.updates import BurstyUpdateGenerator, SteadyUpdateGenerator, UpdateEvent
from repro.workload.verify import VerifyReport, replicate_and_verify, state_fingerprint

__all__ = [
    "AvailabilityExperiment",
    "BurstyUpdateGenerator",
    "ChaosConfig",
    "ChaosReport",
    "RENAME_BUG_SEED",
    "run_chaos",
    "FileRef",
    "PartitionEpoch",
    "PartitionTraceGenerator",
    "PolicyAvailability",
    "ReplayResult",
    "SteadyUpdateGenerator",
    "TraceOp",
    "UpdateEvent",
    "VerifyReport",
    "ZipfReferenceGenerator",
    "replicate_and_verify",
    "state_fingerprint",
    "apply_epoch",
    "decode_trace",
    "encode_trace",
    "replay_trace",
    "synthesize_trace",
    "expected_availability_one_copy",
    "hit_ratio_estimate",
]
