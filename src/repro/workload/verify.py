"""Replicate-and-verify: re-execute a recorded workload, byte-diff the result.

The chaos harness proves *convergence* — every replica agrees after the
faults are withdrawn.  This module proves *determinism*: record the exact
operation history of a chaos run (every filesystem call, probe, daemon
tick, partition, and heal), re-execute it on a freshly built
:class:`~repro.sim.FicusSystem` with the same seed, and compare the two
clusters byte for byte — name trees, file contents per replica, and the
per-file version-vector maps.  A mismatch means some state crept in from
outside the recorded inputs (an unseeded random, wall-clock leakage, an
iteration-order dependency), which is exactly the class of bug that makes
"replay the failing seed" debugging impossible.

On divergence the report does not stop at "trees differ": it composes the
provenance DAGs of both runs and points at the first version whose
minting history disagrees — the operator lands on the offending write,
not on a tree diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry import VersionDAG
from repro.workload.replay import TraceOp, replay_trace


def state_fingerprint(system, host_names: list[str] | None = None) -> dict:
    """Everything observable about the cluster's replicated state.

    Per host, per volume replica: the directory entry sets (names,
    handles, liveness), the stored file contents, and the version vector
    of every stored file — read at the *store* level, so a stale local
    replica cannot hide behind the logical layer's remote-read fallback.
    The per-host provenance rings ride along for divergence attribution.
    """
    if host_names is None:
        host_names = sorted(system.hosts)
    out: dict = {}
    for host_name in host_names:
        host = system.host(host_name)
        stores: dict = {}
        for volrep, store in sorted(host.physical.stores.items(), key=lambda kv: str(kv[0])):
            entries = []
            files = {}
            for dir_fh in sorted(store.all_directory_handles(), key=lambda fh: fh.to_hex()):
                for entry in store.read_entries(dir_fh):
                    entries.append(
                        (dir_fh.to_hex(), entry.name, entry.fh.to_hex(), entry.status)
                    )
                    fh = entry.fh.logical
                    if entry.live and store.has_file(dir_fh, fh):
                        aux = store.read_file_aux(dir_fh, fh)
                        files[fh.to_hex()] = (
                            store.file_vnode(dir_fh, fh).read_all(),
                            aux.vv.encode(),
                        )
            stores[str(volrep)] = {"entries": sorted(entries), "files": files}
        prov = []
        if host.health_plane is not None:
            prov = host.health_plane.provenance.snapshot()
        out[host_name] = {"stores": stores, "prov": prov}
    return out


@dataclass
class VerifyReport:
    """Outcome of one replicate-and-verify pass."""

    ops_replayed: int = 0
    ops_failed: int = 0
    #: mismatches between the recorded run and its re-execution; empty
    #: means the replay reproduced the cluster byte for byte
    problems: list[str] = field(default_factory=list)
    #: human-readable pointer at the first version whose provenance
    #: disagrees between the runs (set when problems were found)
    first_divergence: str = ""

    @property
    def identical(self) -> bool:
        return not self.problems


def _diff_fingerprints(baseline: dict, replayed: dict, report: VerifyReport) -> None:
    for host_name in baseline:
        base_host = baseline[host_name]
        replay_host = replayed.get(host_name)
        if replay_host is None:
            report.problems.append(f"{host_name}: missing from the replayed cluster")
            continue
        for volrep, base_store in base_host["stores"].items():
            replay_store = replay_host["stores"].get(volrep, {"entries": [], "files": {}})
            if base_store["entries"] != replay_store["entries"]:
                report.problems.append(
                    f"{host_name}/{volrep}: directory entries diverged "
                    f"({len(base_store['entries'])} recorded vs "
                    f"{len(replay_store['entries'])} replayed)"
                )
            base_files = base_store["files"]
            replay_files = replay_store["files"]
            for fh in sorted(set(base_files) | set(replay_files)):
                if fh not in base_files:
                    report.problems.append(f"{host_name}/{volrep}: extra file {fh} in replay")
                elif fh not in replay_files:
                    report.problems.append(f"{host_name}/{volrep}: file {fh} missing in replay")
                elif base_files[fh][1] != replay_files[fh][1]:
                    report.problems.append(
                        f"{host_name}/{volrep}: {fh} vv diverged: "
                        f"{base_files[fh][1] or 'genesis'} vs {replay_files[fh][1] or 'genesis'}"
                    )
                elif base_files[fh][0] != replay_files[fh][0]:
                    report.problems.append(
                        f"{host_name}/{volrep}: {fh} contents diverged at identical vv "
                        f"{base_files[fh][1] or 'genesis'}"
                    )


def _first_diverging_write(baseline: dict, replayed: dict) -> str:
    """Point at the earliest version minted differently across the runs.

    Both runs' provenance rings are composed into DAGs; walking every
    file's lineage oldest-first, the first node whose minting events
    disagree (different hosts, kinds, or parents) is where the replay's
    history forked from the recording — the write to investigate.
    """
    base_dag = VersionDAG.from_records(
        rec for host in baseline.values() for rec in host["prov"]
    )
    replay_dag = VersionDAG.from_records(
        rec for host in replayed.values() for rec in host["prov"]
    )
    for fh in base_dag.file_handles():
        for node in base_dag.nodes_for(fh):
            other = replay_dag.node(fh, node.vv)
            base_mints = sorted(set(node.minted_by()))
            other_mints = sorted(set(other.minted_by())) if other is not None else []
            if base_mints != other_mints or (
                other is not None and node.parents != other.parents
            ):
                minted = (
                    ", ".join(f"{k} by {h} at t={a:g}" for h, a, k in base_mints)
                    or "outside ring retention"
                )
                return (
                    f"first diverging write: {fh} @ {node.vv or 'genesis'} "
                    f"(recorded: {minted}; replayed: "
                    f"{', '.join(f'{k} by {h}' for h, _, k in other_mints) or 'never minted'}) — "
                    f"query with: ficus_prov --lineage {fh[:8]}"
                )
    for fh in replay_dag.file_handles():
        for node in replay_dag.nodes_for(fh):
            if base_dag.node(fh, node.vv) is None:
                return (
                    f"first diverging write: replay minted {fh} @ {node.vv or 'genesis'} "
                    f"which the recorded run never produced"
                )
    return ""


def replicate_and_verify(
    history: list[TraceOp],
    seed: int,
    config,
    baseline: dict,
) -> VerifyReport:
    """Re-execute a recorded chaos history on a fresh cluster and compare.

    ``config`` is the :class:`~repro.workload.chaos.ChaosConfig` of the
    recorded run — the fresh system is built exactly as ``run_chaos``
    builds one (same topology seed, same fault-plane reseed, same
    resolver registry, same fault profile), so replaying the recorded
    call sequence reproduces the exact datagram and fault schedule.
    ``baseline`` is the recorded run's :func:`state_fingerprint` taken
    after its quiesce.
    """
    # imported here: chaos imports this module, so the reverse import
    # must stay inside the function
    from repro.sim import FicusSystem, make_topology
    from repro.workload.chaos import _QUIET

    host_names = [f"h{i}" for i in range(config.host_count)]
    system = FicusSystem(
        host_names,
        daemon_config=_QUIET,
        topology=make_topology(config.topology, seed=seed),
    )
    system.network.faults.reseed(seed)
    if config.resolvers:
        system.enable_resolvers()
    system.network.faults.set_default(config.faults)

    replay = replay_trace(system, history, strict=False)
    report = VerifyReport(ops_replayed=replay.applied, ops_failed=replay.failed)

    # quiesce exactly as run_chaos does
    system.heal()
    system.network.faults.clear()
    system.network.flush_deferred_datagrams()
    for host_name in host_names:
        host = system.host(host_name)
        host.propagation_daemon.peer_health.reset()
        host.recon_daemon.peer_health.reset()
    system.reconcile_everything(rounds=config.host_count + 2)
    for _ in range(2):
        for host_name in host_names:
            system.host(host_name).propagation_daemon.tick()

    replayed = state_fingerprint(system, host_names)
    _diff_fingerprints(baseline, replayed, report)
    if report.problems:
        report.first_divergence = _first_diverging_write(baseline, replayed)
        if report.first_divergence:
            report.problems.append(report.first_divergence)
    return report
