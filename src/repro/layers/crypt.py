"""A transparent encryption vnode layer (paper Section 1's third example).

File *contents* are enciphered on write and deciphered on read with a
position-based keystream, so random-access reads and writes work without
rewriting the file.  Everything below this layer (Ficus physical, UFS,
an NFS server...) sees only ciphertext; everything above sees plaintext.
The cipher is a keyed SHA-256 keystream XOR — positionally seekable and
deterministic, which is what the layering demonstration needs (it is NOT
presented as cryptographically strong).
"""

from __future__ import annotations

import hashlib

from repro.vnode.interface import ROOT_CTX, FileSystemLayer, OpContext, Vnode
from repro.vnode.passthrough import NullLayer, PassthroughVnode

_BLOCK = 32  # SHA-256 digest size


class Keystream:
    """Seekable keystream: byte i of file f depends on (key, f, i)."""

    def __init__(self, key: bytes):
        self.key = key

    def _block(self, fileid: int, index: int) -> bytes:
        material = self.key + fileid.to_bytes(8, "little") + index.to_bytes(8, "little")
        return hashlib.sha256(material).digest()

    def pad(self, fileid: int, offset: int, length: int) -> bytes:
        """Keystream bytes covering [offset, offset+length)."""
        first = offset // _BLOCK
        last = (offset + length + _BLOCK - 1) // _BLOCK
        stream = b"".join(self._block(fileid, i) for i in range(first, last))
        start = offset - first * _BLOCK
        return stream[start : start + length]

    def apply(self, fileid: int, offset: int, data: bytes) -> bytes:
        pad = self.pad(fileid, offset, len(data))
        return bytes(a ^ b for a, b in zip(data, pad))


class CryptLayer(NullLayer):
    """Pass-through layer enciphering regular-file contents."""

    layer_name = "crypt"

    #: Only data crossings are transformed; every other op passes through.
    INTERCEPTS: frozenset[str] = frozenset({"read", "write"})

    def __init__(self, lower: FileSystemLayer, key: bytes, name: str = "crypt"):
        super().__init__(lower, name=name)
        self.keystream = Keystream(key)

    def wrap(self, lower: Vnode) -> "CryptVnode":
        return CryptVnode(self, lower)


class CryptVnode(PassthroughVnode):
    """Enciphers writes and deciphers reads; all else passes through."""

    def __init__(self, layer: CryptLayer, lower: Vnode):
        super().__init__(layer, lower)
        self.layer: CryptLayer = layer

    def _fileid(self) -> int:
        return self.lower.getattr().fileid

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        ciphertext = self.lower.read(offset, length, ctx)
        self.layer.counters.bump("read")
        return self.layer.keystream.apply(self._fileid(), offset, ciphertext)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.counters.bump("write")
        ciphertext = self.layer.keystream.apply(self._fileid(), offset, data)
        return self.lower.write(offset, ciphertext, ctx)
