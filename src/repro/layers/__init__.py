"""Extension layers demonstrating the stackable architecture.

The paper (Section 1): "We have used it to provide file distribution and
replication; we expect to use it for performance monitoring, user
authentication and encryption."  These three layers realize that
expectation — each slips transparently into any vnode stack.
"""

from repro.layers.auth import AccessPolicy, AuthLayer, AuthVnode
from repro.layers.crypt import CryptLayer, CryptVnode, Keystream
from repro.layers.monitor import MonitorLayer, MonitorVnode, OpProfile

__all__ = [
    "AccessPolicy",
    "AuthLayer",
    "AuthVnode",
    "CryptLayer",
    "CryptVnode",
    "Keystream",
    "MonitorLayer",
    "MonitorVnode",
    "OpProfile",
]
