"""A performance-monitoring vnode layer.

"We have used it to provide file distribution and replication; we expect
to use it for **performance monitoring**, user authentication and
encryption" (paper Section 1).  This layer demonstrates that expectation:
slipped anywhere into a stack, it records per-operation call counts,
latency sums, and byte volumes without the layers above or below
noticing.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.telemetry import MetricsRegistry
from repro.vnode.interface import (
    ROOT_CTX,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)
from repro.vnode.passthrough import NullLayer, PassthroughVnode


@dataclass
class OpProfile:
    """Statistics for one vnode operation."""

    calls: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class MonitorLayer(NullLayer):
    """Pass-through layer that profiles every operation crossing it."""

    layer_name = "monitor"

    #: The operations :class:`MonitorVnode` times (when enabled).
    INTERCEPTS: frozenset[str] = frozenset(
        {
            "read",
            "write",
            "lookup",
            "create",
            "mkdir",
            "remove",
            "rmdir",
            "getattr",
            "setattr",
            "readdir",
            "truncate",
        }
    )

    def __init__(
        self,
        lower: FileSystemLayer,
        name: str = "monitor",
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
    ):
        super().__init__(lower, name=name)
        #: timing source; injectable so simulated deployments can profile
        #: in virtual time (and tests can supply a fake clock)
        self.clock = clock or time.perf_counter
        self.registry = registry
        self.profile: dict[str, OpProfile] = {}
        #: live profiling switch — a disabled monitor is a pure pass-through
        self.enabled = True

    def set_enabled(self, value: bool) -> bool:
        """Turn profiling on or off; returns the previous setting.

        A disabled monitor interposes on nothing, so fused stacks over it
        must rebuild their dispatch plans — hence the fusion invalidation.
        """
        previous = self.enabled
        self.enabled = bool(value)
        if previous != self.enabled:
            self.invalidate_fusion()
        return previous

    def intercepted_ops(self) -> frozenset[str]:
        return self.INTERCEPTS if self.enabled else frozenset()

    def wrap(self, lower: Vnode) -> "MonitorVnode":
        return MonitorVnode(self, lower)

    def record(self, op: str, seconds: float, error: bool, n_in: int = 0, n_out: int = 0) -> None:
        prof = self.profile.setdefault(op, OpProfile())
        prof.calls += 1
        prof.total_seconds += seconds
        if error:
            prof.errors += 1
        prof.bytes_in += n_in
        prof.bytes_out += n_out
        registry = self.registry
        if registry is not None:
            prefix = f"monitor.{self.layer_name}.{op}"
            registry.counter(f"{prefix}.calls").inc()
            if error:
                registry.counter(f"{prefix}.errors").inc()
            registry.histogram(f"{prefix}.seconds").observe(seconds)
            if n_in or n_out:
                registry.counter(f"{prefix}.bytes").inc(n_in + n_out)

    def report(self) -> str:
        """Human-readable profile table."""
        lines = [f"{'op':>10} | {'calls':>7} | {'errors':>6} | {'mean us':>9} | {'bytes':>10}"]
        for op in sorted(self.profile):
            prof = self.profile[op]
            lines.append(
                f"{op:>10} | {prof.calls:>7} | {prof.errors:>6} | "
                f"{prof.mean_seconds * 1e6:>9.1f} | {prof.bytes_in + prof.bytes_out:>10}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.profile.clear()


class MonitorVnode(PassthroughVnode):
    """Wraps a lower vnode, timing each forwarded operation."""

    def __init__(self, layer: MonitorLayer, lower: Vnode):
        super().__init__(layer, lower)
        self.layer: MonitorLayer = layer

    def _timed(self, op: str, thunk, n_in: int = 0):
        if not self.layer.enabled:
            return thunk()
        clock = self.layer.clock
        start = clock()
        try:
            result = thunk()
        except Exception:
            self.layer.record(op, clock() - start, error=True, n_in=n_in)
            raise
        n_out = len(result) if isinstance(result, (bytes, str)) else 0
        self.layer.record(op, clock() - start, error=False, n_in=n_in, n_out=n_out)
        return result

    # data-bearing operations get byte accounting; the rest just timing

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        return self._timed("read", lambda: self.lower.read(offset, length, ctx))

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        if not self.layer.enabled:
            return self.lower.write(offset, data, ctx)
        clock = self.layer.clock
        start = clock()
        try:
            written = self.lower.write(offset, data, ctx)
        except Exception:
            self.layer.record("write", clock() - start, error=True, n_in=len(data))
            raise
        self.layer.record("write", clock() - start, error=False, n_in=written)
        return written

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self.layer.wrap(self._timed("lookup", lambda: self.lower.lookup(name, ctx)))

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self.layer.wrap(self._timed("create", lambda: self.lower.create(name, perm, ctx)))

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self.layer.wrap(self._timed("mkdir", lambda: self.lower.mkdir(name, perm, ctx)))

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._timed("remove", lambda: self.lower.remove(name, ctx))

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._timed("rmdir", lambda: self.lower.rmdir(name, ctx))

    def getattr(self, ctx: OpContext = ROOT_CTX):
        return self._timed("getattr", lambda: self.lower.getattr(ctx))

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self._timed("setattr", lambda: self.lower.setattr(attrs, ctx))

    def readdir(self, ctx: OpContext = ROOT_CTX):
        return self._timed("readdir", lambda: self.lower.readdir(ctx))

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self._timed("truncate", lambda: self.lower.truncate(size, ctx))
