"""A user-authentication vnode layer (paper Section 1's second example).

Enforces an access-control policy *above* whatever storage sits below —
without the storage layer knowing.  The policy is deliberately simple
(per-uid allow/deny plus read-only users); the point is architectural:
authentication slips into the stack as one more transparent layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PermissionDenied
from repro.vnode.interface import (
    ROOT_CTX,
    Credential,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)
from repro.vnode.passthrough import NullLayer, PassthroughVnode


@dataclass
class AccessPolicy:
    """Who may do what through this layer."""

    #: uids allowed through at all (None = everyone)
    allowed_uids: set[int] | None = None
    #: uids restricted to read-only operations
    read_only_uids: set[int] = field(default_factory=set)
    #: uid 0 bypasses every check when True
    root_bypasses: bool = True

    def check(self, cred: Credential, mutating: bool) -> None:
        if self.root_bypasses and cred.uid == 0:
            return
        if self.allowed_uids is not None and cred.uid not in self.allowed_uids:
            raise PermissionDenied(f"uid {cred.uid} is not admitted by this layer")
        if mutating and cred.uid in self.read_only_uids:
            raise PermissionDenied(f"uid {cred.uid} is read-only through this layer")


class AuthLayer(NullLayer):
    """Pass-through layer that authenticates each credential."""

    layer_name = "auth"

    #: Exactly the operations :class:`AuthVnode` guards with a policy check.
    INTERCEPTS: frozenset[str] = frozenset(
        {
            # credential-gated reads
            "read",
            "getattr",
            "readdir",
            "lookup",
            "readlink",
            "access",
            # credential-gated mutations
            "write",
            "truncate",
            "setattr",
            "create",
            "mkdir",
            "remove",
            "rmdir",
            "rename",
            "link",
            "symlink",
        }
    )

    def __init__(self, lower: FileSystemLayer, policy: AccessPolicy, name: str = "auth"):
        super().__init__(lower, name=name)
        self.policy = policy
        self.denials = 0

    def wrap(self, lower: Vnode) -> "AuthVnode":
        return AuthVnode(self, lower)

    def check(self, cred: Credential, mutating: bool) -> None:
        try:
            self.policy.check(cred, mutating)
        except PermissionDenied:
            self.denials += 1
            raise


class AuthVnode(PassthroughVnode):
    """Checks the credential before forwarding each operation."""

    def __init__(self, layer: AuthLayer, lower: Vnode):
        super().__init__(layer, lower)
        self.layer: AuthLayer = layer

    # -- reads --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        self.layer.check(ctx.cred, mutating=False)
        return super().read(offset, length, ctx)

    def getattr(self, ctx: OpContext = ROOT_CTX):
        self.layer.check(ctx.cred, mutating=False)
        return super().getattr(ctx)

    def readdir(self, ctx: OpContext = ROOT_CTX):
        self.layer.check(ctx.cred, mutating=False)
        return super().readdir(ctx)

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.check(ctx.cred, mutating=False)
        return super().lookup(name, ctx)

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        self.layer.check(ctx.cred, mutating=False)
        return super().readlink(ctx)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.check(ctx.cred, mutating=False)
        return super().access(mode, ctx)

    # -- mutations --

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.check(ctx.cred, mutating=True)
        return super().write(offset, data, ctx)

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.check(ctx.cred, mutating=True)
        super().truncate(size, ctx)

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.check(ctx.cred, mutating=True)
        super().setattr(attrs, ctx)

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.check(ctx.cred, mutating=True)
        return super().create(name, perm, ctx)

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.check(ctx.cred, mutating=True)
        return super().mkdir(name, perm, ctx)

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.check(ctx.cred, mutating=True)
        super().remove(name, ctx)

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.check(ctx.cred, mutating=True)
        super().rmdir(name, ctx)

    def rename(self, src_name: str, dst_dir: Vnode, dst_name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.check(ctx.cred, mutating=True)
        super().rename(src_name, dst_dir, dst_name, ctx)

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.check(ctx.cred, mutating=True)
        super().link(target, name, ctx)

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.check(ctx.cred, mutating=True)
        return super().symlink(name, target, ctx)
