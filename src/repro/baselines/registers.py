"""Baseline replica-control protocols, implemented as working systems.

Section 1 of the paper claims: "One-copy availability provides strictly
greater availability than primary copy [2], voting [21], weighted voting
[7], and quorum consensus [10]."  To reproduce that comparison honestly,
each policy is implemented as a real replicated register over the same
simulated network Ficus runs on: writes assemble their quorums with RPCs,
version numbers resolve staleness, and partitions make calls fail exactly
as they would for Ficus.

All five policies expose the same interface (:class:`ReplicatedRegister`):

* :class:`PrimaryCopyRegister` — Alsberg & Day: all updates at a primary.
* :class:`MajorityVotingRegister` — Thomas: majority for read and write.
* :class:`WeightedVotingRegister` — Gifford: per-site weights, r + w > N.
* :class:`QuorumConsensusRegister` — Herlihy: configurable quorum sizes.
* :class:`OneCopyRegister` — the Ficus policy: any single reachable
  replica suffices for both reads and writes.  Its price is visible too:
  reads may be stale and concurrent writes conflict (counted via version
  vectors), which is exactly the trade the paper makes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import HostUnreachable, InvalidArgument, QuorumNotAvailable
from repro.net import Network
from repro.vv import VersionVector


@dataclass
class SiteState:
    """Storage of one replica site."""

    value: bytes = b""
    version: int = 0
    #: used only by the one-copy policy
    vv: VersionVector = field(default_factory=VersionVector)


class ReplicatedRegister(abc.ABC):
    """One logical value replicated at a set of hosts."""

    policy_name = "abstract"

    def __init__(self, network: Network, sites: list[str], register_id: str = "reg"):
        if not sites:
            raise InvalidArgument("need at least one replica site")
        self.network = network
        self.sites = list(sites)
        self.register_id = register_id
        self.state: dict[str, SiteState] = {site: SiteState() for site in sites}
        for site in sites:
            network.register_rpc(site, f"{register_id}.read", self._make_read(site))
            network.register_rpc(site, f"{register_id}.write", self._make_write(site))

    def _make_read(self, site: str):
        def handler() -> tuple[bytes, int, str]:
            st = self.state[site]
            return (st.value, st.version, st.vv.encode())

        return handler

    def _make_write(self, site: str):
        def handler(value: bytes, version: int, vv_text: str) -> None:
            st = self.state[site]
            st.value = value
            st.version = version
            st.vv = VersionVector.decode(vv_text)

        return handler

    # -- per-site RPC helpers --

    def _read_site(self, requester: str, site: str) -> tuple[bytes, int, VersionVector]:
        value, version, vv_text = self.network.rpc(
            requester, site, f"{self.register_id}.read"
        )
        return value, version, VersionVector.decode(vv_text)

    def _write_site(
        self, requester: str, site: str, value: bytes, version: int, vv: VersionVector
    ) -> None:
        self.network.rpc(
            requester, site, f"{self.register_id}.write", value, version, vv.encode()
        )

    def _poll_sites(self, requester: str) -> dict[str, tuple[bytes, int, VersionVector]]:
        """Read every reachable site; unreachable ones are skipped."""
        replies = {}
        for site in self.sites:
            try:
                replies[site] = self._read_site(requester, site)
            except HostUnreachable:
                continue
        return replies

    # -- the policy interface --

    @abc.abstractmethod
    def read(self, requester: str) -> bytes:
        """Read the register; raises QuorumNotAvailable when not permitted."""

    @abc.abstractmethod
    def write(self, requester: str, value: bytes) -> None:
        """Write the register; raises QuorumNotAvailable when not permitted."""


class PrimaryCopyRegister(ReplicatedRegister):
    """Alsberg & Day 1976: all updates funnel through a primary site.

    Reads are served by any reachable copy (possibly stale); updates
    require the primary, so a partition hiding the primary freezes all
    writers — the availability gap Ficus exploits.
    """

    policy_name = "primary-copy"

    def __init__(self, network: Network, sites: list[str], register_id: str = "reg", primary: str | None = None):
        super().__init__(network, sites, register_id)
        self.primary = primary or sites[0]
        if self.primary not in sites:
            raise InvalidArgument(f"primary {self.primary!r} is not a replica site")

    def read(self, requester: str) -> bytes:
        for site in self.sites:
            try:
                value, _, _ = self._read_site(requester, site)
                return value
            except HostUnreachable:
                continue
        raise QuorumNotAvailable("no reachable copy")

    def write(self, requester: str, value: bytes) -> None:
        try:
            _, version, _ = self._read_site(requester, self.primary)
            self._write_site(requester, self.primary, value, version + 1, VersionVector())
        except HostUnreachable as exc:
            raise QuorumNotAvailable("primary unreachable") from exc
        # asynchronous best-effort propagation to the secondaries
        for site in self.sites:
            if site == self.primary:
                continue
            try:
                self._write_site(
                    requester, site, value, self.state[self.primary].version, VersionVector()
                )
            except HostUnreachable:
                continue


class MajorityVotingRegister(ReplicatedRegister):
    """Thomas 1979: both reads and writes assemble a strict majority."""

    policy_name = "majority-voting"

    @property
    def _majority(self) -> int:
        return len(self.sites) // 2 + 1

    def read(self, requester: str) -> bytes:
        replies = self._poll_sites(requester)
        if len(replies) < self._majority:
            raise QuorumNotAvailable(
                f"read quorum {self._majority} not met: {len(replies)} reachable"
            )
        return max(replies.values(), key=lambda r: r[1])[0]

    def write(self, requester: str, value: bytes) -> None:
        replies = self._poll_sites(requester)
        if len(replies) < self._majority:
            raise QuorumNotAvailable(
                f"write quorum {self._majority} not met: {len(replies)} reachable"
            )
        version = max(r[1] for r in replies.values()) + 1
        for site in replies:
            self._write_site(requester, site, value, version, VersionVector())


class WeightedVotingRegister(ReplicatedRegister):
    """Gifford 1979: sites carry vote weights; r + w > total enforced."""

    policy_name = "weighted-voting"

    def __init__(
        self,
        network: Network,
        sites: list[str],
        register_id: str = "reg",
        weights: dict[str, int] | None = None,
        read_quorum: int | None = None,
        write_quorum: int | None = None,
    ):
        super().__init__(network, sites, register_id)
        self.weights = weights or {site: 1 for site in sites}
        total = sum(self.weights[s] for s in sites)
        self.read_quorum = read_quorum if read_quorum is not None else total // 2 + 1
        self.write_quorum = write_quorum if write_quorum is not None else total // 2 + 1
        if self.read_quorum + self.write_quorum <= total:
            raise InvalidArgument(
                f"r({self.read_quorum}) + w({self.write_quorum}) must exceed total votes ({total})"
            )

    def _reachable_votes(self, replies: dict) -> int:
        return sum(self.weights[site] for site in replies)

    def read(self, requester: str) -> bytes:
        replies = self._poll_sites(requester)
        if self._reachable_votes(replies) < self.read_quorum:
            raise QuorumNotAvailable("read quorum votes not met")
        return max(replies.values(), key=lambda r: r[1])[0]

    def write(self, requester: str, value: bytes) -> None:
        replies = self._poll_sites(requester)
        if self._reachable_votes(replies) < self.write_quorum:
            raise QuorumNotAvailable("write quorum votes not met")
        version = max(r[1] for r in replies.values()) + 1
        for site in replies:
            self._write_site(requester, site, value, version, VersionVector())


class QuorumConsensusRegister(ReplicatedRegister):
    """Herlihy 1986: independent read/write quorum sizes, r + w > N."""

    policy_name = "quorum-consensus"

    def __init__(
        self,
        network: Network,
        sites: list[str],
        register_id: str = "reg",
        read_quorum: int | None = None,
        write_quorum: int | None = None,
    ):
        super().__init__(network, sites, register_id)
        n = len(sites)
        self.read_quorum = read_quorum if read_quorum is not None else n // 2 + 1
        self.write_quorum = write_quorum if write_quorum is not None else n // 2 + 1
        if self.read_quorum + self.write_quorum <= n:
            raise InvalidArgument("r + w must exceed the number of replicas")

    def read(self, requester: str) -> bytes:
        replies = self._poll_sites(requester)
        if len(replies) < self.read_quorum:
            raise QuorumNotAvailable("read quorum not met")
        return max(replies.values(), key=lambda r: r[1])[0]

    def write(self, requester: str, value: bytes) -> None:
        replies = self._poll_sites(requester)
        if len(replies) < self.write_quorum:
            raise QuorumNotAvailable("write quorum not met")
        version = max(r[1] for r in replies.values()) + 1
        for site in replies:
            self._write_site(requester, site, value, version, VersionVector())


class OneCopyRegister(ReplicatedRegister):
    """The Ficus policy: any single reachable copy permits read AND write.

    Writes land on one replica and bump its version vector; a best-effort
    push propagates to whoever is reachable (standing in for notification
    plus propagation).  Concurrent partitioned writes create version-vector
    conflicts, counted in :attr:`conflicts_detected` — the cost side of
    the availability trade, reported honestly.
    """

    policy_name = "one-copy"

    def __init__(self, network: Network, sites: list[str], register_id: str = "reg"):
        super().__init__(network, sites, register_id)
        self._site_index = {site: i + 1 for i, site in enumerate(sites)}
        self.conflicts_detected = 0
        self.stale_reads = 0
        self._write_counter = 0

    def read(self, requester: str) -> bytes:
        replies = self._poll_sites(requester)
        if not replies:
            raise QuorumNotAvailable("no reachable copy")
        # most recent available: maximal version vector among reachable
        items = list(replies.items())
        best_site, best = items[0]
        for site, reply in items[1:]:
            if reply[2].strictly_dominates(best[2]) or (
                reply[2].concurrent_with(best[2]) and reply[1] > best[1]
            ):
                best_site, best = site, reply
        # staleness accounting: a strictly newer version exists somewhere
        for site in self.sites:
            if site in replies:
                continue
            if self.state[site].vv.strictly_dominates(best[2]):
                self.stale_reads += 1
                break
        return best[0]

    def write(self, requester: str, value: bytes) -> None:
        target_reply = None
        target_site = None
        for site in self.sites:
            try:
                target_reply = self._read_site(requester, site)
                target_site = site
                break
            except HostUnreachable:
                continue
        if target_site is None:
            raise QuorumNotAvailable("no reachable copy")
        self._write_counter += 1
        new_vv = target_reply[2].bump(self._site_index[target_site])
        self._write_site(requester, target_site, value, self._write_counter, new_vv)
        # best-effort propagation; detect conflicts where it cannot win
        for site in self.sites:
            if site == target_site:
                continue
            try:
                _, _, site_vv = self._read_site(requester, site)
            except HostUnreachable:
                continue
            if new_vv.strictly_dominates(site_vv):
                self._write_site(requester, site, value, self._write_counter, new_vv)
            elif new_vv.concurrent_with(site_vv):
                self.conflicts_detected += 1

    def reconcile(self, requester: str) -> int:
        """Merge all reachable replicas (post-partition healing).

        Conflicting values merge deterministically (lexicographically
        largest wins) under the merged version vector — a stand-in for
        owner resolution so long experiments can proceed.  Returns the
        number of conflicts resolved.
        """
        replies = self._poll_sites(requester)
        if not replies:
            return 0
        merged_vv = VersionVector()
        conflicts = 0
        values = []
        for value, version, vv in replies.values():
            merged_vv = merged_vv.merge(vv)
            values.append((value, version, vv))
        maximal = [v for v in values if not any(o[2].strictly_dominates(v[2]) for o in values)]
        distinct = {v[0] for v in maximal}
        if len(distinct) > 1:
            conflicts = len(distinct) - 1
            self.conflicts_detected += conflicts
        winner = max(maximal, key=lambda v: (v[0], v[1]))
        self._write_counter += 1
        for site in replies:
            self._write_site(requester, site, winner[0], self._write_counter, merged_vv)
        return conflicts
