"""Baseline replica-control protocols for the availability comparison."""

from repro.baselines.registers import (
    MajorityVotingRegister,
    OneCopyRegister,
    PrimaryCopyRegister,
    QuorumConsensusRegister,
    ReplicatedRegister,
    SiteState,
    WeightedVotingRegister,
)

__all__ = [
    "MajorityVotingRegister",
    "OneCopyRegister",
    "PrimaryCopyRegister",
    "QuorumConsensusRegister",
    "ReplicatedRegister",
    "SiteState",
    "WeightedVotingRegister",
]
