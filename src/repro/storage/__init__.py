"""Simulated block storage with exact I/O accounting."""

from repro.storage.device import DEFAULT_BLOCK_SIZE, BlockDevice, CrashPlan, IoCounters

__all__ = ["DEFAULT_BLOCK_SIZE", "BlockDevice", "CrashPlan", "IoCounters"]
