"""Simulated block storage.

The paper's only quantitative performance claims (Section 6) are stated as
disk I/O counts: opening a file in a non-recently-accessed directory costs
"four I/Os beyond the normal Unix overhead", and a recently accessed open
costs nothing extra.  Reproducing those numbers needs a storage device that
counts every block read and write exactly — which a simulated device does
better than real hardware.

:class:`BlockDevice` is a flat array of fixed-size blocks with read/write
counters and optional failure injection (for crash-consistency tests of the
shadow-file atomic commit, paper Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CrashInjected, InvalidArgument, IOError_

#: Default block size.  4.2BSD UFS used 4K/8K blocks; 4K keeps simulated
#: images small while preserving the inode-block/data-block distinction.
DEFAULT_BLOCK_SIZE = 4096


@dataclass
class IoCounters:
    """Running totals of block-level operations on a device."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IoCounters":
        return IoCounters(self.reads, self.writes)

    def delta_since(self, earlier: "IoCounters") -> "IoCounters":
        """I/Os performed since ``earlier`` was snapshotted."""
        return IoCounters(self.reads - earlier.reads, self.writes - earlier.writes)

    def __str__(self) -> str:
        return f"{self.reads}r/{self.writes}w"


@dataclass
class CrashPlan:
    """Failure injection: crash the device after N more writes.

    Used by the atomic-commit experiments (E7): a crash between the shadow
    write and the commit record must leave the original replica intact.
    """

    writes_until_crash: int
    tripped: bool = False


class BlockDevice:
    """A fixed-size array of blocks with exact I/O accounting.

    Blocks are ``bytes`` of exactly ``block_size``; unwritten blocks read as
    zeros.  All higher layers (UFS buffer cache, inode table, data blocks)
    sit on top of this.
    """

    def __init__(self, num_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE, name: str = "disk0"):
        if num_blocks <= 0:
            raise InvalidArgument(f"num_blocks must be positive, got {num_blocks}")
        if block_size <= 0:
            raise InvalidArgument(f"block_size must be positive, got {block_size}")
        self.name = name
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.counters = IoCounters()
        self._blocks: dict[int, bytes] = {}
        self._zero = bytes(block_size)
        self._crash_plan: CrashPlan | None = None
        self._failed = False

    # -- failure injection ------------------------------------------------

    def plan_crash_after_writes(self, writes: int) -> None:
        """Arrange for the device to "crash" after ``writes`` more writes."""
        if writes < 0:
            raise InvalidArgument("writes must be >= 0")
        self._crash_plan = CrashPlan(writes_until_crash=writes)

    def clear_crash_plan(self) -> None:
        self._crash_plan = None

    def fail(self) -> None:
        """Hard-fail the device: all subsequent I/O raises EIO."""
        self._failed = True

    def recover(self) -> None:
        """Bring a failed/crashed device back; persisted blocks survive."""
        self._failed = False
        self._crash_plan = None

    @property
    def failed(self) -> bool:
        return self._failed

    # -- block I/O ---------------------------------------------------------

    def _check_block(self, blockno: int) -> None:
        if self._failed:
            raise IOError_(f"{self.name}: device failed")
        if not 0 <= blockno < self.num_blocks:
            raise InvalidArgument(f"{self.name}: block {blockno} out of range [0,{self.num_blocks})")

    def read_block(self, blockno: int) -> bytes:
        """Read one block (counted)."""
        self._check_block(blockno)
        self.counters.reads += 1
        return self._blocks.get(blockno, self._zero)

    def write_block(self, blockno: int, data: bytes) -> None:
        """Write one block (counted).  ``data`` must be exactly block_size."""
        self._check_block(blockno)
        if len(data) != self.block_size:
            raise InvalidArgument(
                f"{self.name}: write of {len(data)} bytes to block {blockno}; block size is {self.block_size}"
            )
        plan = self._crash_plan
        if plan is not None and not plan.tripped:
            if plan.writes_until_crash <= 0:
                plan.tripped = True
                self._failed = True
                raise CrashInjected(f"{self.name}: injected crash before write to block {blockno}")
            plan.writes_until_crash -= 1
        self.counters.writes += 1
        if data == self._zero:
            self._blocks.pop(blockno, None)
        else:
            self._blocks[blockno] = bytes(data)

    # -- introspection -----------------------------------------------------

    @property
    def blocks_in_use(self) -> int:
        """Number of blocks holding non-zero data (storage footprint)."""
        return len(self._blocks)

    def raw_block(self, blockno: int) -> bytes:
        """Uncounted peek at a block — for tests and fsck-style checkers."""
        if not 0 <= blockno < self.num_blocks:
            raise InvalidArgument(f"block {blockno} out of range")
        return self._blocks.get(blockno, self._zero)

    def __repr__(self) -> str:
        return f"BlockDevice({self.name!r}, {self.num_blocks}x{self.block_size}, io={self.counters})"
