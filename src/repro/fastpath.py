"""Runtime switch for the fused/zero-copy hot path.

The PR-8 performance plane (decoded-metadata caches in the UFS and the
replica store, memoized wire decodes, fused vnode chains) is controlled
by one module-level flag so a single process can measure *legacy* and
*optimized* behaviour back to back — exactly what the ``bench_open_io``
throughput gate does.  Production runs leave it enabled; the paper's
E3/E4 disk-I/O accounting is preserved either way because every cache is
keyed to the buffer-cache epoch (see ARCHITECTURE.md, "The fused hot
path").
"""

from __future__ import annotations

#: Master switch for the decoded-metadata caches and memoized decodes.
#: Mutated only through :func:`set_enabled` (benchmarks, tests).
ENABLED = True


def set_enabled(value: bool) -> bool:
    """Flip the hot path on or off; returns the previous value."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous
