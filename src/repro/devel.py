"""The development methodology of paper Section 5.

"The vnode interface normally accessible only inside the kernel has been
'exposed' to the application level ... we customized a copy of the NFS
server daemon code to run outside of the kernel as the interface to the
Ficus layers. ... Today, Ficus layers may be compiled for application
level or kernel resident execution merely by setting a switch."

The analogue here: any vnode layer can run *in-process* ("kernel
resident") or behind an NFS server in a separate simulated address space
("application level"), chosen by one switch.  The returned stacks are
interchangeable — which is the whole point — and
:func:`measure_crossing_penalty` quantifies the address-space-crossing
cost the paper says "complicates performance measurements and analysis".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.net import Network
from repro.nfs import NfsClientConfig, NfsClientLayer, NfsServer
from repro.vnode.interface import FileSystemLayer

#: Address suffixes for the two simulated address spaces.
_KERNEL_SIDE = "-kernel"
_USER_SIDE = "-user"


def externalize(
    layer: FileSystemLayer,
    network: Network,
    name: str = "devlayer",
    nfs_config: NfsClientConfig | None = None,
) -> NfsClientLayer:
    """Run ``layer`` at "application level": export it through an NFS
    server in its own simulated address space and return an equivalent
    layer reached through the NFS client.

    The caller's code cannot tell the difference (same vnode interface),
    except for the crossing cost — exactly the Section 5 setup.
    """
    server_addr = f"{name}{_USER_SIDE}"
    client_addr = f"{name}{_KERNEL_SIDE}"
    if not network.has_host(server_addr):
        network.add_host(server_addr)
    if not network.has_host(client_addr):
        network.add_host(client_addr)
    NfsServer(network, server_addr, layer, service=f"devel.{name}")
    return NfsClientLayer(
        network,
        client_addr,
        server_addr,
        service=f"devel.{name}",
        config=nfs_config or NfsClientConfig(attr_cache_ttl=0, name_cache_ttl=0),
    )


def build_switchable(
    layer_factory,
    user_level: bool,
    network: Network | None = None,
    name: str = "devlayer",
) -> FileSystemLayer:
    """The paper's 'switch': the same layer, in-kernel or at user level.

    ``layer_factory`` builds the layer under test; with ``user_level``
    False it is returned as-is (kernel resident), with True it is placed
    behind an out-of-kernel NFS server.
    """
    layer = layer_factory()
    if not user_level:
        return layer
    return externalize(layer, network or Network(), name=name)


@dataclass
class CrossingPenalty:
    """Measured cost of moving a layer out of the kernel."""

    kernel_seconds_per_op: float
    user_seconds_per_op: float

    @property
    def factor(self) -> float:
        if self.kernel_seconds_per_op == 0:
            return float("inf")
        return self.user_seconds_per_op / self.kernel_seconds_per_op


def measure_crossing_penalty(layer_factory, ops: int = 2000) -> CrossingPenalty:
    """Time the same getattr workload against both execution modes."""

    def time_mode(user_level: bool) -> float:
        layer = build_switchable(layer_factory, user_level, name=f"bench{int(user_level)}")
        root = layer.root()
        probe = root.create("probe")
        probe.write(0, b"x")
        target = root.lookup("probe")
        start = time.perf_counter()
        for _ in range(ops):
            target.getattr()
        return (time.perf_counter() - start) / ops

    return CrossingPenalty(
        kernel_seconds_per_op=time_mode(False),
        user_seconds_per_op=time_mode(True),
    )
