"""Inspection tools: human-readable dumps of replica and cluster state.

The debugging companion to :func:`repro.physical.ficus_fsck` — where the
checker says *whether* a replica is consistent, these dumps show *what*
is in it: the namespace tree with version vectors, tombstones and their
GC acknowledgement state, storage presence, and cluster-wide divergence
summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.physical import ReplicaStore
from repro.physical.wire import EntryType
from repro.util import FicusFileHandle


def dump_replica(store: ReplicaStore, show_tombstones: bool = True) -> str:
    """A tree-formatted dump of one volume replica's state."""
    lines = [f"volume replica {store.volrep} @ {store.root_handle()}"]

    def recurse(dir_fh: FicusFileHandle, indent: str, seen: set) -> None:
        if dir_fh in seen:
            lines.append(f"{indent}(already shown: {dir_fh})")
            return
        seen.add(dir_fh)
        try:
            aux = store.read_dir_aux(dir_fh)
            entries = store.read_entries(dir_fh)
        except Exception as exc:
            lines.append(f"{indent}!! unreadable: {exc}")
            return
        lines.append(f"{indent}[dir vv={aux.vv} refs={aux.refs}]")
        for entry in sorted(entries, key=lambda e: (not e.live, e.name)):
            if not entry.live:
                if show_tombstones:
                    lines.append(
                        f"{indent}  ✝ {entry.name} eid={entry.eid.encode()} "
                        f"acks={sorted(entry.acks)} acks2={sorted(entry.acks2)}"
                    )
                continue
            if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
                marker = "⌘" if entry.etype == EntryType.GRAFT_POINT else "+"
                lines.append(f"{indent}  {marker} {entry.name}/")
                if entry.etype == EntryType.DIRECTORY and store.has_directory(entry.fh):
                    recurse(entry.fh, indent + "    ", seen)
            elif entry.etype == EntryType.LOCATION:
                lines.append(f"{indent}  @ {entry.name} -> {entry.data}")
            else:
                if store.has_file(dir_fh, entry.fh):
                    file_aux = store.read_file_aux(dir_fh, entry.fh)
                    size = store.file_vnode(dir_fh, entry.fh).getattr().size
                    lines.append(
                        f"{indent}  - {entry.name} ({size}B, vv={file_aux.vv})"
                    )
                else:
                    lines.append(f"{indent}  - {entry.name} (entry-only, not stored)")

    recurse(store.root_handle(), "  ", set())
    return "\n".join(lines)


@dataclass
class DivergenceReport:
    """Pairwise divergence between two replicas of a volume."""

    only_in_a: list[str] = field(default_factory=list)
    only_in_b: list[str] = field(default_factory=list)
    version_mismatches: list[str] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return not (self.only_in_a or self.only_in_b or self.version_mismatches)


def _collect(store: ReplicaStore) -> dict[str, tuple]:
    """path -> (fh, vv-or-None) for every live entry of the replica."""
    out: dict[str, tuple] = {}

    def recurse(dir_fh: FicusFileHandle, prefix: str, seen: set) -> None:
        if dir_fh in seen:
            return
        seen.add(dir_fh)
        for entry in store.read_entries(dir_fh):
            if not entry.live or entry.etype == EntryType.LOCATION:
                continue
            path = f"{prefix}/{entry.name}"
            if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
                out[path] = (entry.fh, None)
                if entry.etype == EntryType.DIRECTORY and store.has_directory(entry.fh):
                    recurse(entry.fh, path, seen)
            else:
                vv = (
                    store.read_file_aux(dir_fh, entry.fh).vv
                    if store.has_file(dir_fh, entry.fh)
                    else None
                )
                out[path] = (entry.fh, vv)

    recurse(store.root_handle(), "", set())
    return out


def diff_replicas(a: ReplicaStore, b: ReplicaStore) -> DivergenceReport:
    """Compare two replicas of the same volume by name and version."""
    report = DivergenceReport()
    view_a = _collect(a)
    view_b = _collect(b)
    report.only_in_a = sorted(set(view_a) - set(view_b))
    report.only_in_b = sorted(set(view_b) - set(view_a))
    for path in sorted(set(view_a) & set(view_b)):
        fh_a, vv_a = view_a[path]
        fh_b, vv_b = view_b[path]
        if fh_a != fh_b:
            report.version_mismatches.append(f"{path}: different files ({fh_a} vs {fh_b})")
        elif vv_a is not None and vv_b is not None and vv_a != vv_b:
            report.version_mismatches.append(f"{path}: vv {vv_a} vs {vv_b}")
    return report


def cluster_summary(system) -> str:
    """One-screen status of a :class:`~repro.sim.FicusSystem`."""
    lines = [f"cluster @ t={system.clock.now():.1f}s, {len(system.hosts)} hosts"]
    net = system.network.stats
    lines.append(
        f"  network: {net.rpcs_sent} rpcs ({net.rpcs_failed} failed), "
        f"{net.datagrams_sent} datagrams ({net.datagrams_lost} lost)"
    )
    for name, host in sorted(system.hosts.items()):
        up = "up" if system.network.host_is_up(name) else "DOWN"
        prop = host.propagation_daemon.stats
        lines.append(
            f"  {name} [{up}]: replicas={len(host.physical.stores)} "
            f"pulls={prop.pulls_succeeded} recon-runs={host.recon_daemon.stats.runs} "
            f"purged-tombstones={host.recon_daemon.tombstones_purged} "
            f"conflicts={len(host.conflict_log.unresolved())} "
            f"pending-notes={host.physical.new_version_cache_size} "
            f"disk={host.device.counters}"
        )
        if getattr(host, "health_plane", None) is not None:
            health = host.health()
            lines.append(
                f"    health: staleness={health.max_staleness} "
                f"suspected={','.join(health.suspected_volumes()) or '-'} "
                f"degraded={','.join(health.degraded_peers) or '-'} "
                f"anomalies={sum(health.anomalies.values())}"
            )
    return "\n".join(lines)
