"""Directory reconciliation (paper Section 3.3, after Guy & Popek).

"A reconciliation algorithm examines the state of two replicas, determines
which operations have been performed on each, selects a set of operations
to perform on the local replica which reflect previously unseen activity
at the remote replica, and then applies those operations to the local
replica.  The Ficus directory reconciliation algorithm determines which
entries have been added to or deleted from the remote replica, and applies
appropriate entry insertion or deletion operations to the local replica."

Entries are identified by globally unique insertion ids, so the merge is
an exercise in set algebra:

* remote entry unknown here, live  -> apply the insert
* remote entry unknown here, dead  -> record the tombstone
* known here and live, remote dead -> apply the delete (a delete always
  causally follows the insert it names, so it wins)
* known here and dead              -> nothing; tombstones are stable

Because copying directory *bytes* would replay allocation side effects
wrongly, operations — not bytes — are transferred ("simply copying
directory contents is incorrect; in a sense, a directory operation needs
to be 'replayed' at each replica").

Name collisions created by concurrent inserts are repaired automatically
and deterministically at read time (see
:func:`repro.physical.vnodes.effective_entries`); this pass counts them so
the repair is visible to experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FileNotFound, HostUnreachable, StaleFileHandle
from repro.physical import (
    FicusPhysicalLayer,
    PhysicalDirVnode,
    ReplicaStore,
    count_name_collisions,
    decode_directory,
)
from repro.physical.wire import EntryType
from repro.util import FicusFileHandle
from repro.vnode.interface import Vnode, read_whole
from repro.vv import Ordering


@dataclass
class DirReconResult:
    """What one directory reconciliation pass did."""

    inserts_applied: int = 0
    tombstones_recorded: int = 0
    deletes_applied: int = 0
    tombstones_purged_by_inference: int = 0
    #: same-(name, fh) duplicate entries tombstoned by the merge
    duplicates_resolved: int = 0
    #: live-name collisions present after the merge (repaired at read time)
    collisions_repaired: int = 0
    #: the two replicas had concurrently diverged (auto-repaired)
    was_concurrent: bool = False
    unreachable: bool = False
    #: handles of live subdirectory/graft-point entries after the merge
    child_directories: list[FicusFileHandle] = field(default_factory=list)
    #: live file/symlink entries after the merge (full records, so
    #: callers can apply name-based storage policies)
    child_files: list = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(
            self.inserts_applied
            or self.tombstones_recorded
            or self.deletes_applied
            or self.duplicates_resolved
        )


def reconcile_directory(
    physical: FicusPhysicalLayer,
    store: ReplicaStore,
    dir_fh: FicusFileHandle,
    remote_dir: Vnode,
    all_replicas: frozenset[int] = frozenset(),
) -> DirReconResult:
    """One-way reconcile: fold the remote replica's activity into ours.

    Run symmetrically from the other side (or around a ring) to converge
    every replica.  ``all_replicas`` (the volume's full replica-id set,
    when known) lets the merge skip re-learning tombstones that are
    already fully acknowledged everywhere — i.e. ones we may have
    garbage-collected.
    """
    result = DirReconResult()
    dir_fh = dir_fh.logical

    try:
        remote_entries = decode_directory(read_whole(remote_dir))
        # an empty-list batch carries just the directory's own aux record
        remote_aux = remote_dir.getattrs_batch([]).dir_aux
    except (HostUnreachable, FileNotFound, StaleFileHandle):
        # StaleFileHandle: the remote rebooted and client caches were
        # scrubbed by the failure itself; the next periodic run succeeds
        result.unreachable = True
        return result

    local_vnode = PhysicalDirVnode(physical, store, dir_fh)
    local_aux = store.read_dir_aux(dir_fh)
    if local_aux.vv.compare(remote_aux.vv) is Ordering.CONCURRENT:
        result.was_concurrent = True

    local_by_eid = {entry.eid: entry for entry in store.read_entries(dir_fh)}

    for remote_entry in remote_entries:
        known = local_by_eid.get(remote_entry.eid)
        if known is None:
            if remote_entry.live:
                local_vnode.apply_insert(
                    eid=remote_entry.eid,
                    name=remote_entry.name,
                    fh=remote_entry.fh,
                    etype=remote_entry.etype,
                    data=remote_entry.data,
                    from_recon=True,
                )
                result.inserts_applied += 1
            else:
                if all_replicas and remote_entry.acks >= all_replicas:
                    # fully acknowledged everywhere: either we collected it
                    # already or we never saw the insert; no stale insert
                    # can exist, so there is nothing to defend against
                    continue
                local_vnode.apply_tombstone(remote_entry)
                result.tombstones_recorded += 1
        elif known.live and not remote_entry.live:
            # the delete wins; apply_tombstone also merges the remote's
            # deletion acknowledgements for tombstone garbage collection
            local_vnode.apply_tombstone(remote_entry)
            result.deletes_applied += 1
        elif not known.live and not remote_entry.live:
            if not (remote_entry.acks <= known.acks and remote_entry.acks2 <= known.acks2):
                local_vnode.apply_tombstone(remote_entry)  # ack merge only
        # both-live: nothing to transfer

    # Concurrent renames of one file to the same name in different
    # partitions arrive here as two live entries with identical
    # (name, fh) under distinct entry ids — the same user-level operation
    # performed twice.  Unlike a collision between *different* files
    # (which read-time repair must preserve, since both files exist),
    # the duplicate pair names one object and would otherwise survive
    # forever as a spurious ``name#<eid>`` alias.  Resolve it the way
    # read-time repair picks a winner: the lowest entry id keeps the
    # name, the rest are tombstoned.  Every replica applies the same
    # rule, so the resolution converges without extra messages, and the
    # tombstones propagate it to replicas that reconcile elsewhere.
    by_name_fh: dict[tuple, list] = {}
    for entry in store.read_entries(dir_fh):
        if entry.live:
            by_name_fh.setdefault((entry.name, entry.fh.logical), []).append(entry)
    for group in by_name_fh.values():
        if len(group) < 2:
            continue
        group.sort(key=lambda e: e.eid)
        for duplicate in group[1:]:
            local_vnode.apply_remove(duplicate.eid, from_recon=True)
            result.duplicates_resolved += 1

    # Tombstone-collection inference: if OUR tombstone carries a full
    # phase-1 acknowledgement set but the remote replica has no record of
    # the entry at all, the remote must have purged it (it acknowledged
    # the delete, so "never saw it" is impossible).  A purge there implies
    # phase 2 completed globally, so we may purge too.
    if all_replicas:
        remote_eids = {entry.eid for entry in remote_entries}
        locals_now = store.read_entries(dir_fh)
        kept = [
            entry
            for entry in locals_now
            if entry.live
            or entry.acks < all_replicas
            or entry.eid in remote_eids
        ]
        if len(kept) != len(locals_now):
            result.tombstones_purged_by_inference += len(locals_now) - len(kept)
            store.write_entries(dir_fh, kept)

    # Converged up to the remote's history: merge the version vectors so a
    # third party can tell this replica now includes the remote's updates.
    local_aux = store.read_dir_aux(dir_fh)
    local_aux.vv = local_aux.vv.merge(remote_aux.vv)
    store.write_dir_aux(dir_fh, local_aux)
    # Re-anchor the incremental recon-digest folds from the actual stored
    # state: hard links through another naming directory can leave them
    # stale, which only delays pruning but would delay it indefinitely if
    # never repaired.  Reconciliation visits every diverged directory, so
    # this is the natural repair point.
    store.refresh_dir_digests(dir_fh)

    merged = store.read_entries(dir_fh)
    result.collisions_repaired = count_name_collisions(merged)
    for entry in merged:
        if not entry.live:
            continue
        if entry.etype in (EntryType.DIRECTORY, EntryType.GRAFT_POINT):
            result.child_directories.append(entry.fh)
        elif entry.etype in (EntryType.FILE, EntryType.SYMLINK):
            result.child_files.append(entry)
    return result
