"""Reconciliation: file propagation, directory merge, subtree protocol."""

from repro.recon.conflicts import ConflictKind, ConflictLog, ConflictReport
from repro.recon.directory import DirReconResult, reconcile_directory
from repro.recon.gc import GcResult, collect_directory, collect_volume_replica
from repro.recon.propagate import PullOutcome, PullResult, pull_file, push_notify_pull
from repro.recon.protocol import SubtreeReconResult, reconcile_subtree
from repro.recon.resolve import resolve_file_conflict

__all__ = [
    "ConflictKind",
    "ConflictLog",
    "ConflictReport",
    "DirReconResult",
    "GcResult",
    "collect_directory",
    "collect_volume_replica",
    "PullOutcome",
    "PullResult",
    "SubtreeReconResult",
    "pull_file",
    "push_notify_pull",
    "reconcile_directory",
    "reconcile_subtree",
    "resolve_file_conflict",
]
