"""Regular-file update propagation (paper Section 3.2).

"For regular files, update propagation is simply a matter of atomically
replacing the contents of the local replica with those of a newer version
remote replica.  Ficus contains a single-file atomic commit service to
support file update propagation."

The pull compares version vectors first:

* remote EQUAL / DOMINATED  -> nothing to do (we are as new or newer)
* remote DOMINATES          -> pull through a shadow + atomic commit
* CONCURRENT                -> a conflict: report, never merge silently

When both sides store the file, the pull is a *block delta* (rsync-style):
fetch the remote's block signatures, pull only the blocks whose content
hashes differ, splice them over the local copy in the shadow file, and
commit atomically exactly as the whole-file path does.  The whole-file
copy remains as the fallback — remote predates the delta operations, the
remote changed out-of-band between the attribute fetch and the digest
fetch, or the delta would be no smaller than the file itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FileNotFound, HostUnreachable, NotSupported, StaleFileHandle
from repro.physical import FicusPhysicalLayer, ReplicaStore
from repro.physical.wire import content_digest, op_byfh, split_blocks
from repro.util import FicusFileHandle
from repro.vnode.interface import Vnode, read_whole
from repro.vv import Ordering, VersionVector


class PullOutcome(enum.Enum):
    UP_TO_DATE = "up-to-date"  # local dominates or equals remote
    PULLED = "pulled"  # remote version installed locally
    CONFLICT = "conflict"  # concurrent updates detected
    REMOTE_MISSING = "remote-missing"  # remote replica does not store the file
    UNREACHABLE = "unreachable"  # partition/crash interrupted the pull
    LOCAL_DEAD = "local-dead"  # no live local entry names the file anymore


@dataclass
class PullResult:
    outcome: PullOutcome
    local_vv: VersionVector
    remote_vv: VersionVector
    bytes_copied: int = 0
    #: bytes the block-delta path did NOT copy (file size minus delta)
    bytes_saved: int = 0
    #: the remote aux record already fetched for the vv comparison; a
    #: CONFLICT result carries it so the resolver subsystem can read the
    #: remote's policy tag and merge ancestor without a second RPC
    remote_aux: object | None = None


def pull_file(
    store: ReplicaStore,
    parent_fh: FicusFileHandle,
    fh: FicusFileHandle,
    remote_dir: Vnode,
    health=None,
    origin: str = "",
) -> PullResult:
    """Bring the local replica of one file up to the remote version.

    ``remote_dir`` is the remote physical directory vnode holding the
    file (possibly an NFS client vnode).  Crash-safe: contents land in a
    shadow first and replace the original atomically.  ``health``
    (optional) is the pulling host's HealthPlane: a fetched block that
    fails digest verification fires its ``pull_digest_mismatch`` anomaly
    before the pull falls back to the whole-file copy, and an installed
    version is appended to its provenance ledger with ``origin`` (the
    host pulled from) as the sync-origin annotation.
    """
    parent_fh = parent_fh.logical
    fh = fh.logical

    # local state: the file may have an entry here but no storage yet
    # (the entry arrived by directory reconciliation).
    local_stored = store.has_file(parent_fh, fh)
    local_vv = (
        store.read_file_aux(parent_fh, fh).vv if local_stored else VersionVector()
    )
    if not local_stored:
        # A delete can land between a new-version note being queued and
        # serviced.  Materializing storage for a tombstoned (or unknown)
        # entry would leak it forever — the GC only runs on the live→dead
        # transition — so refuse unless a live entry names the file.
        live_here = any(
            e.live and e.fh.logical == fh for e in store.read_entries(parent_fh)
        )
        if not live_here:
            return PullResult(PullOutcome.LOCAL_DEAD, local_vv, VersionVector())

    try:
        remote_aux = remote_dir.getattrs_batch([fh]).child(fh)
    except FileNotFound:
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, VersionVector())
    except (HostUnreachable, StaleFileHandle):
        return PullResult(PullOutcome.UNREACHABLE, local_vv, VersionVector())
    if remote_aux is None:
        # the batch answers for the whole directory in one call; a missing
        # child record means the remote replica does not store the file
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, VersionVector())

    remote_vv = remote_aux.vv
    order = local_vv.compare(remote_vv)
    if order in (Ordering.EQUAL, Ordering.DOMINATES):
        return PullResult(PullOutcome.UP_TO_DATE, local_vv, remote_vv)
    if order is Ordering.CONCURRENT:
        return PullResult(PullOutcome.CONFLICT, local_vv, remote_vv, remote_aux=remote_aux)

    # remote strictly dominates: propagate through shadow + atomic commit.
    # With a local copy to diff against, try the block-delta path first.
    if local_stored:
        delta = _delta_pull(store, parent_fh, fh, remote_dir, local_vv, remote_vv, health, origin)
        if delta is not None:
            if delta.outcome is PullOutcome.PULLED:
                _adopt_policy(store, parent_fh, fh, remote_aux.merge_policy)
            return delta

    try:
        contents = read_whole(remote_dir.lookup(op_byfh(fh)))
    except (HostUnreachable, StaleFileHandle):
        return PullResult(PullOutcome.UNREACHABLE, local_vv, remote_vv)
    except FileNotFound:
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, remote_vv)

    if not local_stored:
        store.create_file_storage(
            parent_fh, fh, remote_aux.etype, merge_policy=remote_aux.merge_policy
        )
    shadow = store.shadow_vnode(parent_fh, fh, create=True)
    shadow.truncate(0)
    if contents:
        shadow.write(0, contents)
    store.commit_shadow(parent_fh, fh, remote_vv)
    _adopt_policy(store, parent_fh, fh, remote_aux.merge_policy)
    _record_pull(health, fh, local_vv, remote_vv, origin)
    return PullResult(PullOutcome.PULLED, remote_vv, remote_vv, bytes_copied=len(contents))


def _record_pull(health, fh, local_vv, remote_vv, origin: str) -> None:
    """Ledger an installed version: node (fh, remote_vv), parent = the
    local version the install superseded, origin = the host pulled from."""
    if health is not None:
        health.provenance.record(
            "pull",
            fh.to_hex(),
            remote_vv.encode(),
            parents=(local_vv.encode(),),
            origin=origin,
        )


def _adopt_policy(
    store: ReplicaStore, parent_fh: FicusFileHandle, fh: FicusFileHandle, tag: str
) -> None:
    """Make the local policy tag follow an installed dominating version.

    A policy change bumps the file's version vector, so a strictly
    dominating remote has by definition seen every local tag change —
    its tag state is the newer one and replaces ours wholesale.
    """
    aux = store.read_file_aux(parent_fh, fh)
    if aux.merge_policy != tag:
        aux.merge_policy = tag
        store.write_file_aux(parent_fh, fh, aux)


def _delta_pull(
    store: ReplicaStore,
    parent_fh: FicusFileHandle,
    fh: FicusFileHandle,
    remote_dir: Vnode,
    local_vv: VersionVector,
    remote_vv: VersionVector,
    health=None,
    origin: str = "",
) -> PullResult | None:
    """Try to install the remote version by copying only changed blocks.

    Returns ``None`` to fall back to the whole-file copy (remote predates
    the delta operations, the remote replica changed out-of-band so the
    signatures no longer describe ``remote_vv``, the delta would not be
    smaller than the file, or a fetched block failed verification), or a
    final :class:`PullResult` when the delta path settled the pull itself.
    """
    try:
        sig = remote_dir.block_digests(fh)
    except NotSupported:
        return None  # remote predates the delta operations
    except (HostUnreachable, StaleFileHandle):
        return PullResult(PullOutcome.UNREACHABLE, local_vv, remote_vv)
    except FileNotFound:
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, remote_vv)
    if sig.vv != remote_vv:
        # out-of-band change (e.g. another reconciler updated the remote
        # between our attribute fetch and this call): the signatures no
        # longer describe the version we decided to install
        return None

    local_blocks = split_blocks(store.file_vnode(parent_fh, fh).read_all(), sig.block_size)
    local_digests = [content_digest(block) for block in local_blocks]
    changed = {
        index
        for index, digest in enumerate(sig.digests)
        if index >= len(local_digests) or local_digests[index] != digest
    }
    if changed and len(changed) * sig.block_size >= sig.size:
        return None  # the delta is no smaller than the file itself

    fetched: dict[int, bytes] = {}
    if changed:
        try:
            fetched = remote_dir.read_blocks(fh, sorted(changed))
        except (NotSupported, FileNotFound):
            return None
        except (HostUnreachable, StaleFileHandle):
            return PullResult(PullOutcome.UNREACHABLE, local_vv, remote_vv)

    pieces: list[bytes] = []
    for index, digest in enumerate(sig.digests):
        if index in changed:
            block = fetched.get(index)
            if block is None or content_digest(block) != digest:
                # the remote moved on mid-pull, or the payload was
                # corrupted in flight; replay as a whole file
                if health is not None:
                    health.anomaly(
                        "pull_digest_mismatch",
                        fh=fh.to_hex(),
                        block=index,
                        expected=digest,
                    )
                return None
            pieces.append(block)
        else:
            pieces.append(local_blocks[index])
    contents = b"".join(pieces)[: sig.size]
    if len(contents) != sig.size:
        return None

    shadow = store.shadow_vnode(parent_fh, fh, create=True)
    shadow.truncate(0)
    if contents:
        shadow.write(0, contents)
    store.commit_shadow(parent_fh, fh, remote_vv)
    _record_pull(health, fh, local_vv, remote_vv, origin)
    delta_bytes = sum(len(block) for block in fetched.values())
    return PullResult(
        PullOutcome.PULLED,
        remote_vv,
        remote_vv,
        bytes_copied=delta_bytes,
        bytes_saved=max(0, sig.size - delta_bytes),
    )


def push_notify_pull(
    physical: FicusPhysicalLayer,
    note,
    remote_dir: Vnode,
) -> PullResult:
    """Service one new-version cache entry (what the daemon does)."""
    store = physical.store_for(note.key.volrep)
    result = pull_file(
        store,
        note.key.parent_fh,
        note.key.fh,
        remote_dir,
        health=physical.health,
        origin=note.src_addr,
    )
    if result.outcome in (PullOutcome.UP_TO_DATE, PullOutcome.PULLED):
        physical.clear_new_version(note.key)
    return result
