"""Regular-file update propagation (paper Section 3.2).

"For regular files, update propagation is simply a matter of atomically
replacing the contents of the local replica with those of a newer version
remote replica.  Ficus contains a single-file atomic commit service to
support file update propagation."

The pull compares version vectors first:

* remote EQUAL / DOMINATED  -> nothing to do (we are as new or newer)
* remote DOMINATES          -> pull through a shadow + atomic commit
* CONCURRENT                -> a conflict: report, never merge silently
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FileNotFound, HostUnreachable, StaleFileHandle
from repro.physical import FicusPhysicalLayer, ReplicaStore
from repro.physical.wire import op_byfh
from repro.util import FicusFileHandle
from repro.vnode.interface import Vnode, read_whole
from repro.vv import Ordering, VersionVector


class PullOutcome(enum.Enum):
    UP_TO_DATE = "up-to-date"  # local dominates or equals remote
    PULLED = "pulled"  # remote version installed locally
    CONFLICT = "conflict"  # concurrent updates detected
    REMOTE_MISSING = "remote-missing"  # remote replica does not store the file
    UNREACHABLE = "unreachable"  # partition/crash interrupted the pull


@dataclass
class PullResult:
    outcome: PullOutcome
    local_vv: VersionVector
    remote_vv: VersionVector
    bytes_copied: int = 0


def pull_file(
    store: ReplicaStore,
    parent_fh: FicusFileHandle,
    fh: FicusFileHandle,
    remote_dir: Vnode,
) -> PullResult:
    """Bring the local replica of one file up to the remote version.

    ``remote_dir`` is the remote physical directory vnode holding the
    file (possibly an NFS client vnode).  Crash-safe: contents land in a
    shadow first and replace the original atomically.
    """
    parent_fh = parent_fh.logical
    fh = fh.logical

    # local state: the file may have an entry here but no storage yet
    # (the entry arrived by directory reconciliation).
    local_stored = store.has_file(parent_fh, fh)
    local_vv = (
        store.read_file_aux(parent_fh, fh).vv if local_stored else VersionVector()
    )

    try:
        remote_aux = remote_dir.getattrs_batch([fh]).child(fh)
    except FileNotFound:
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, VersionVector())
    except (HostUnreachable, StaleFileHandle):
        return PullResult(PullOutcome.UNREACHABLE, local_vv, VersionVector())
    if remote_aux is None:
        # the batch answers for the whole directory in one call; a missing
        # child record means the remote replica does not store the file
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, VersionVector())

    remote_vv = remote_aux.vv
    order = local_vv.compare(remote_vv)
    if order in (Ordering.EQUAL, Ordering.DOMINATES):
        return PullResult(PullOutcome.UP_TO_DATE, local_vv, remote_vv)
    if order is Ordering.CONCURRENT:
        return PullResult(PullOutcome.CONFLICT, local_vv, remote_vv)

    # remote strictly dominates: propagate through shadow + atomic commit
    try:
        contents = read_whole(remote_dir.lookup(op_byfh(fh)))
    except (HostUnreachable, StaleFileHandle):
        return PullResult(PullOutcome.UNREACHABLE, local_vv, remote_vv)
    except FileNotFound:
        return PullResult(PullOutcome.REMOTE_MISSING, local_vv, remote_vv)

    if not local_stored:
        store.create_file_storage(parent_fh, fh, remote_aux.etype)
    shadow = store.shadow_vnode(parent_fh, fh, create=True)
    shadow.truncate(0)
    if contents:
        shadow.write(0, contents)
    store.commit_shadow(parent_fh, fh, remote_vv)
    return PullResult(PullOutcome.PULLED, remote_vv, remote_vv, bytes_copied=len(contents))


def push_notify_pull(
    physical: FicusPhysicalLayer,
    note,
    remote_dir: Vnode,
) -> PullResult:
    """Service one new-version cache entry (what the daemon does)."""
    store = physical.store_for(note.key.volrep)
    result = pull_file(store, note.key.parent_fh, note.key.fh, remote_dir)
    if result.outcome in (PullOutcome.UP_TO_DATE, PullOutcome.PULLED):
        physical.clear_new_version(note.key)
    return result
