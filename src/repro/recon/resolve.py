"""Owner-driven conflict resolution for regular files.

The paper reports file conflicts to the owner and leaves resolution to
them.  This module provides the primitive the owner (or a resolver tool)
uses: install chosen contents with a version vector that *dominates* every
conflicting version, so the resolution propagates everywhere and the
conflict cannot re-surface.
"""

from __future__ import annotations

from repro.physical import ReplicaStore
from repro.recon.conflicts import ConflictLog
from repro.util import FicusFileHandle
from repro.vv import VersionVector


def resolve_file_conflict(
    store: ReplicaStore,
    parent_fh: FicusFileHandle,
    fh: FicusFileHandle,
    chosen_contents: bytes,
    observed_vvs: list[VersionVector],
    conflict_log: ConflictLog | None = None,
    health=None,
) -> VersionVector:
    """Install ``chosen_contents`` as the post-conflict version.

    The new version vector is the merge of every observed conflicting
    vector, bumped at this replica: it strictly dominates all of them, so
    normal update propagation carries the resolution to every replica.
    ``health`` (optional, the resolving host's HealthPlane) ledgers the
    resolution as a merge-kind provenance node whose parents are every
    observed conflicting version.
    """
    parent_fh = parent_fh.logical
    fh = fh.logical
    local_vv = store.read_file_aux(parent_fh, fh).vv
    merged = local_vv
    for vv in observed_vvs:
        merged = merged.merge(vv)
    resolved_vv = merged.bump(store.replica_id)

    shadow = store.shadow_vnode(parent_fh, fh, create=True)
    shadow.truncate(0)
    if chosen_contents:
        shadow.write(0, chosen_contents)
    store.commit_shadow(parent_fh, fh, resolved_vv)

    if conflict_log is not None:
        conflict_log.mark_resolved(fh, resolved_vv)
    if health is not None:
        parents = {local_vv.encode(), *(vv.encode() for vv in observed_vvs)}
        health.provenance.record(
            "resolve",
            fh.to_hex(),
            resolved_vv.encode(),
            parents=tuple(sorted(parents)),
            detail="owner",
        )
    return resolved_vv
