"""The full Ficus reconciliation protocol (paper Section 3.3).

"The directory reconciliation algorithm used for update propagation and
the basic file update propagation service are both incorporated into the
general Ficus file system reconciliation protocol.  This protocol is
executed periodically to traverse an entire subgraph (not just a single
node), and reconcile the local replica against a remote replica."

:func:`reconcile_subtree` walks the directory DAG from a root handle,
reconciling each directory and pulling each regular file, accumulating
conflict reports along the way.  It tolerates mid-run partitions: an
unreachable remote simply truncates the traversal (the next periodic run
finishes the job).

The walk is *incremental* (Merkle-style anti-entropy): before descending
into a directory it compares the remote's subtree recon digest (one
``sync_probe`` RPC, or the per-child digest the parent's probe already
supplied) against its own, and skips converged subtrees entirely.  A
fully converged volume replica therefore reconciles in O(1) RPCs instead
of two per directory.  Against a remote that predates ``sync_probe`` the
walk degrades to the exhaustive traversal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import FileNotFound, HostUnreachable, NotSupported, StaleFileHandle
from repro.physical import FicusPhysicalLayer
from repro.physical.policy import StoragePolicy
from repro.physical.wire import op_dir
from repro.recon.conflicts import ConflictKind, ConflictLog, ConflictReport
from repro.recon.directory import DirReconResult, reconcile_directory
from repro.recon.propagate import PullOutcome, pull_file
from repro.resolvers import ResolveOutcome, ResolverRegistry, auto_resolve_conflict
from repro.util import FicusFileHandle, VolumeReplicaId
from repro.vnode.interface import Vnode


@dataclass
class SubtreeReconResult:
    """Aggregate outcome of one subtree reconciliation run."""

    directories_reconciled: int = 0
    directories_unreachable: int = 0
    inserts_applied: int = 0
    tombstones_recorded: int = 0
    deletes_applied: int = 0
    tombstones_purged_by_inference: int = 0
    collisions_repaired: int = 0
    concurrent_directories: int = 0
    files_checked: int = 0
    files_pulled: int = 0
    bytes_copied: int = 0
    bytes_saved: int = 0
    file_conflicts: int = 0
    conflicts_auto_resolved: int = 0
    resolver_fallbacks: int = 0
    files_declined_by_policy: int = 0
    subtrees_pruned: int = 0
    probe_rpcs: int = 0
    aborted_by_partition: bool = False

    def fold_dir(self, res: DirReconResult) -> None:
        self.directories_reconciled += 1
        self.inserts_applied += res.inserts_applied
        self.tombstones_recorded += res.tombstones_recorded
        self.deletes_applied += res.deletes_applied
        self.tombstones_purged_by_inference += res.tombstones_purged_by_inference
        self.collisions_repaired += res.collisions_repaired
        if res.was_concurrent:
            self.concurrent_directories += 1


def reconcile_subtree(
    physical: FicusPhysicalLayer,
    volrep: VolumeReplicaId,
    remote_volume_root: Vnode,
    remote_host: str,
    conflict_log: ConflictLog | None = None,
    root_fh: FicusFileHandle | None = None,
    all_replicas: frozenset[int] = frozenset(),
    policy: StoragePolicy | None = None,
    on_directory_changed: Callable[[FicusFileHandle], None] | None = None,
    resolvers: ResolverRegistry | None = None,
) -> SubtreeReconResult:
    """Reconcile the local volume replica against one remote replica.

    ``remote_volume_root`` is the remote replica's root directory vnode
    (physical, possibly via NFS).  The walk covers every directory
    reachable from ``root_fh`` (default: the volume root), minus any
    subtree whose remote recon digest matches ours (nothing below it can
    differ).  ``on_directory_changed`` is invoked once per directory this
    run changed — entries merged or file contents installed — so the
    caller can route the install through the update-notification path.

    ``resolvers`` (optional) enables automatic conflict resolution: a
    concurrent-update conflict on a resolver-covered file is merged and
    committed on the spot instead of being reported; the manual conflict
    log only receives conflicts no resolver handles.
    """
    store = physical.store_for(volrep)
    result = SubtreeReconResult()
    start = (root_fh or store.root_handle()).logical

    seen: set[FicusFileHandle] = set()
    #: (directory, remote subtree digest if the parent's probe supplied one)
    queue: deque[tuple[FicusFileHandle, str | None]] = deque([(start, None)])
    probe_supported = True
    while queue:
        dir_fh, remote_hint = queue.popleft()
        if dir_fh in seen:
            continue  # the namespace is a DAG; visit each directory once
        seen.add(dir_fh)

        local_digest: str | None = None
        if probe_supported:
            try:
                local_digest = store.subtree_digest(dir_fh)
            except FileNotFound:
                local_digest = None  # not stored locally yet; walk it fully
        if local_digest is not None and remote_hint == local_digest:
            result.subtrees_pruned += 1
            # digest equality proves every file below is common with this
            # peer: a wholesale sync point for merge-ancestor retention
            store.note_subtree_synced(dir_fh)
            continue  # converged below here — zero RPCs spent

        probe = None
        if probe_supported and local_digest is not None:
            try:
                probe = remote_volume_root.sync_probe(dir_fh)
                result.probe_rpcs += 1
            except NotSupported:
                probe_supported = False  # legacy remote: exhaustive walk
            except FileNotFound:
                continue  # remote replica does not store this directory
            except (HostUnreachable, StaleFileHandle):
                result.aborted_by_partition = True
                result.directories_unreachable += 1
                continue
            if probe is not None and probe.digest == local_digest:
                result.subtrees_pruned += 1
                store.note_subtree_synced(dir_fh)
                continue

        try:
            remote_dir = remote_volume_root.lookup(op_dir(dir_fh))
        except FileNotFound:
            continue  # remote replica does not store this directory
        except (HostUnreachable, StaleFileHandle):
            result.aborted_by_partition = True
            result.directories_unreachable += 1
            continue

        dir_result = reconcile_directory(
            physical, store, dir_fh, remote_dir, all_replicas=all_replicas
        )
        if dir_result.unreachable:
            result.aborted_by_partition = True
            result.directories_unreachable += 1
            continue
        result.fold_dir(dir_result)
        directory_changed = dir_result.changed

        for file_entry in dir_result.child_files:
            file_fh = file_entry.fh
            if (
                policy is not None
                and not store.has_file(dir_fh, file_fh)
                and not policy.wants(file_entry)
            ):
                # selective replication: this replica declines the
                # contents; the entry stays entry-only here
                result.files_declined_by_policy += 1
                continue
            result.files_checked += 1
            pull = pull_file(
                store, dir_fh, file_fh, remote_dir, health=physical.health, origin=remote_host
            )
            if pull.outcome is PullOutcome.PULLED:
                result.files_pulled += 1
                result.bytes_copied += pull.bytes_copied
                result.bytes_saved += pull.bytes_saved
                directory_changed = True
                if conflict_log is not None:
                    # a strictly dominating version arrived: conflicts it
                    # supersedes (both recorded vvs dominated) are settled
                    conflict_log.mark_resolved(file_fh, pull.remote_vv)
            elif pull.outcome is PullOutcome.UP_TO_DATE:
                if conflict_log is not None and pull.local_vv.strictly_dominates(pull.remote_vv):
                    conflict_log.mark_resolved(file_fh, pull.local_vv)
                if pull.local_vv == pull.remote_vv and store.has_file(dir_fh, file_fh):
                    # both replicas demonstrably hold these contents: a
                    # sync point — retain them as the merge ancestor
                    store.note_file_synced(dir_fh, file_fh)
            elif pull.outcome is PullOutcome.CONFLICT:
                resolved = ResolveOutcome.NOT_COVERED
                if resolvers is not None:
                    resolved = auto_resolve_conflict(
                        store,
                        dir_fh,
                        file_fh,
                        file_entry.name,
                        remote_dir,
                        pull,
                        resolvers,
                        conflict_log=conflict_log,
                        health=physical.health,
                    )
                if resolved is ResolveOutcome.RESOLVED:
                    result.conflicts_auto_resolved += 1
                    directory_changed = True
                    continue
                if resolved is ResolveOutcome.FALLBACK:
                    result.resolver_fallbacks += 1
                result.file_conflicts += 1
                if conflict_log is not None:
                    conflict_log.report(
                        ConflictReport(
                            kind=ConflictKind.FILE_UPDATE,
                            volume=volrep.volume,
                            parent_fh=dir_fh,
                            fh=file_fh,
                            name=file_entry.name,
                            local_vv=pull.local_vv,
                            remote_vv=pull.remote_vv,
                            remote_host=remote_host,
                            detected_at=physical.clock.now(),
                        )
                    )
            elif pull.outcome is PullOutcome.UNREACHABLE:
                result.aborted_by_partition = True

        if directory_changed and on_directory_changed is not None:
            on_directory_changed(dir_fh)

        for child_fh in dir_result.child_directories:
            queue.append(
                (child_fh, probe.children.get(child_fh.logical) if probe is not None else None)
            )

    return result

