"""The full Ficus reconciliation protocol (paper Section 3.3).

"The directory reconciliation algorithm used for update propagation and
the basic file update propagation service are both incorporated into the
general Ficus file system reconciliation protocol.  This protocol is
executed periodically to traverse an entire subgraph (not just a single
node), and reconcile the local replica against a remote replica."

:func:`reconcile_subtree` walks the directory DAG from a root handle,
reconciling each directory and pulling each regular file, accumulating
conflict reports along the way.  It tolerates mid-run partitions: an
unreachable remote simply truncates the traversal (the next periodic run
finishes the job).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FileNotFound, HostUnreachable, StaleFileHandle
from repro.physical import FicusPhysicalLayer
from repro.physical.policy import StoragePolicy
from repro.physical.wire import op_dir
from repro.recon.conflicts import ConflictKind, ConflictLog, ConflictReport
from repro.recon.directory import DirReconResult, reconcile_directory
from repro.recon.propagate import PullOutcome, pull_file
from repro.util import FicusFileHandle, VolumeReplicaId
from repro.vnode.interface import Vnode


@dataclass
class SubtreeReconResult:
    """Aggregate outcome of one subtree reconciliation run."""

    directories_reconciled: int = 0
    directories_unreachable: int = 0
    inserts_applied: int = 0
    tombstones_recorded: int = 0
    deletes_applied: int = 0
    tombstones_purged_by_inference: int = 0
    collisions_repaired: int = 0
    concurrent_directories: int = 0
    files_checked: int = 0
    files_pulled: int = 0
    bytes_copied: int = 0
    file_conflicts: int = 0
    files_declined_by_policy: int = 0
    aborted_by_partition: bool = False

    def fold_dir(self, res: DirReconResult) -> None:
        self.directories_reconciled += 1
        self.inserts_applied += res.inserts_applied
        self.tombstones_recorded += res.tombstones_recorded
        self.deletes_applied += res.deletes_applied
        self.tombstones_purged_by_inference += res.tombstones_purged_by_inference
        self.collisions_repaired += res.collisions_repaired
        if res.was_concurrent:
            self.concurrent_directories += 1


def reconcile_subtree(
    physical: FicusPhysicalLayer,
    volrep: VolumeReplicaId,
    remote_volume_root: Vnode,
    remote_host: str,
    conflict_log: ConflictLog | None = None,
    root_fh: FicusFileHandle | None = None,
    all_replicas: frozenset[int] = frozenset(),
    policy: StoragePolicy | None = None,
) -> SubtreeReconResult:
    """Reconcile the local volume replica against one remote replica.

    ``remote_volume_root`` is the remote replica's root directory vnode
    (physical, possibly via NFS).  The walk covers every directory
    reachable from ``root_fh`` (default: the volume root).
    """
    store = physical.store_for(volrep)
    result = SubtreeReconResult()
    start = (root_fh or store.root_handle()).logical

    seen: set[FicusFileHandle] = set()
    queue: list[FicusFileHandle] = [start]
    while queue:
        dir_fh = queue.pop(0)
        if dir_fh in seen:
            continue  # the namespace is a DAG; visit each directory once
        seen.add(dir_fh)

        try:
            remote_dir = remote_volume_root.lookup(op_dir(dir_fh))
        except FileNotFound:
            continue  # remote replica does not store this directory
        except (HostUnreachable, StaleFileHandle):
            result.aborted_by_partition = True
            result.directories_unreachable += 1
            continue

        dir_result = reconcile_directory(
            physical, store, dir_fh, remote_dir, all_replicas=all_replicas
        )
        if dir_result.unreachable:
            result.aborted_by_partition = True
            result.directories_unreachable += 1
            continue
        result.fold_dir(dir_result)

        for file_entry in dir_result.child_files:
            file_fh = file_entry.fh
            if (
                policy is not None
                and not store.has_file(dir_fh, file_fh)
                and not policy.wants(file_entry)
            ):
                # selective replication: this replica declines the
                # contents; the entry stays entry-only here
                result.files_declined_by_policy += 1
                continue
            result.files_checked += 1
            pull = pull_file(store, dir_fh, file_fh, remote_dir)
            if pull.outcome is PullOutcome.PULLED:
                result.files_pulled += 1
                result.bytes_copied += pull.bytes_copied
                if conflict_log is not None:
                    # a strictly dominating version arrived: any previously
                    # reported conflict on this file is now settled
                    conflict_log.mark_resolved(file_fh)
            elif pull.outcome is PullOutcome.UP_TO_DATE:
                if conflict_log is not None and pull.local_vv.strictly_dominates(pull.remote_vv):
                    conflict_log.mark_resolved(file_fh)
            elif pull.outcome is PullOutcome.CONFLICT:
                result.file_conflicts += 1
                if conflict_log is not None:
                    conflict_log.report(
                        ConflictReport(
                            kind=ConflictKind.FILE_UPDATE,
                            volume=volrep.volume,
                            parent_fh=dir_fh,
                            fh=file_fh,
                            name=file_entry.name,
                            local_vv=pull.local_vv,
                            remote_vv=pull.remote_vv,
                            remote_host=remote_host,
                            detected_at=physical.clock.now(),
                        )
                    )
            elif pull.outcome is PullOutcome.UNREACHABLE:
                result.aborted_by_partition = True

        queue.extend(dir_result.child_directories)

    return result

