"""Conflict reporting and resolution.

"Conflicting updates to directories are detected and automatically
repaired; conflicting updates to ordinary files are detected and reported
to the owner" (paper abstract).  The conflict log is the "reported to the
owner" half; directory repair happens inside the reconciliation algorithm
and is merely *counted* here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util import FicusFileHandle, VolumeId
from repro.vv import VersionVector


class ConflictKind(enum.Enum):
    #: Concurrent updates to one regular file's replicas.
    FILE_UPDATE = "file-update"
    #: Two live entries claimed the same name (repaired automatically).
    NAME_COLLISION = "name-collision"


@dataclass
class ConflictReport:
    """One detected conflict, addressed to the file's owner."""

    kind: ConflictKind
    volume: VolumeId
    parent_fh: FicusFileHandle
    fh: FicusFileHandle
    name: str
    local_vv: VersionVector
    remote_vv: VersionVector
    remote_host: str
    detected_at: float
    resolved: bool = False


class ConflictLog:
    """Per-host accumulator of conflict reports (deduplicated)."""

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._reports: list[ConflictReport] = []
        self.telemetry = telemetry or NULL_TELEMETRY
        #: this host's HealthPlane, wired by the cluster (None when disabled)
        self.health = None

    def report(self, conflict: ConflictReport) -> bool:
        """Add a report unless an unresolved equivalent is already logged.

        Returns True when the report is new.
        """
        for existing in self._reports:
            if (
                not existing.resolved
                and existing.kind == conflict.kind
                and existing.fh == conflict.fh
                and existing.parent_fh == conflict.parent_fh
                and existing.local_vv == conflict.local_vv
                and existing.remote_vv == conflict.remote_vv
            ):
                return False
        self._reports.append(conflict)
        if self.health is not None:
            # a conflict is an anomaly worth a flight-recorder snapshot:
            # the operations that led to it are still in the op ring
            self.health.anomaly(
                "conflict_detected",
                conflict_kind=conflict.kind.value,
                name=conflict.name,
                fh=conflict.fh.logical.to_hex(),
                remote_host=conflict.remote_host,
            )
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("recon.conflicts_reported").inc()
            self.telemetry.events.emit(
                "conflict.detected",
                conflict_kind=conflict.kind.value,
                name=conflict.name,
                fh=conflict.fh.logical.to_hex(),
                remote_host=conflict.remote_host,
            )
        return True

    def unresolved(self) -> list[ConflictReport]:
        return [r for r in self._reports if not r.resolved]

    def all_reports(self) -> list[ConflictReport]:
        return list(self._reports)

    def mark_resolved(self, fh: FicusFileHandle, superseding_vv=None) -> int:
        """Mark unresolved reports about ``fh`` resolved.

        With ``superseding_vv`` (the version vector of the newly installed
        contents) only reports whose recorded conflicting vvs are *both*
        strictly dominated are marked: a version that merely replaces our
        side of one conflict episode does not settle a concurrent third
        version, and that episode must stay open until a true superseding
        resolution lands.  Without a vv every report is marked (an
        operator override).
        """
        logical = fh.logical
        count = 0
        for report in self._reports:
            if report.resolved or report.fh != logical:
                continue
            if superseding_vv is not None and not (
                superseding_vv.strictly_dominates(report.local_vv)
                and superseding_vv.strictly_dominates(report.remote_vv)
            ):
                continue
            report.resolved = True
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._reports)
