"""Two-phase tombstone garbage collection.

Tombstones keep deletions winning against stale inserts, but a tombstone
is only needed until *every* replica of the volume has seen the delete.
Each tombstone accumulates a deletion-acknowledgement set (``acks``) as
reconciliation spreads it; once the set covers every replica, the record
is garbage on every replica simultaneously and can be purged locally with
no further coordination — the classic two-phase scheme the paper defers
to Guy's dissertation [8].

Safety argument for the purge rule: ``acks ⊇ all replicas`` means every
replica has recorded the tombstone, so no replica anywhere still carries
the entry live; nothing remains for the tombstone to win against.  A
reconciliation partner that still *has* the (fully-acknowledged)
tombstone must therefore not re-teach it to a replica that already purged
it — :func:`repro.physical.vnodes.PhysicalDirVnode.apply_tombstone` is
only invoked for tombstones that are not yet fully acknowledged at the
teaching side, guaranteed by running collection before teaching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical import FicusPhysicalLayer, ReplicaStore
from repro.util import FicusFileHandle


@dataclass
class GcResult:
    """Outcome of one collection pass over a volume replica."""

    directories_scanned: int = 0
    tombstones_seen: int = 0
    tombstones_purged: int = 0


def collect_directory(
    store: ReplicaStore,
    dir_fh: FicusFileHandle,
    all_replicas: frozenset[int],
) -> tuple[int, int]:
    """Advance tombstones through the two phases; purge completed ones.

    Phase transition: when this replica observes that every replica has
    acknowledged the deletion (``acks`` full), it adds itself to the
    phase-2 set.  Purge: only when ``acks2`` is full — i.e. every replica
    is known to have observed phase-1 completion, so nobody still needs
    this record to fill in their acknowledgement sets.

    Returns (tombstones seen, tombstones purged).
    """
    if not all_replicas:
        entries = store.read_entries(dir_fh)
        return (sum(1 for e in entries if not e.live), 0)
    entries = store.read_entries(dir_fh)
    keep = []
    seen = 0
    purged = 0
    dirty = False
    me = store.replica_id
    for entry in entries:
        if entry.live:
            keep.append(entry)
            continue
        seen += 1
        if entry.acks >= all_replicas and me not in entry.acks2:
            entry = entry.with_acks(entry.acks, entry.acks2 | {me})
            dirty = True
        if entry.acks2 >= all_replicas:
            purged += 1
            dirty = True
        else:
            keep.append(entry)
    if dirty:
        store.write_entries(dir_fh, keep)
    return seen, purged


def collect_volume_replica(
    physical: FicusPhysicalLayer,
    store: ReplicaStore,
    all_replicas: frozenset[int],
) -> GcResult:
    """Run tombstone collection over every directory of a volume replica."""
    result = GcResult()
    for dir_fh in store.all_directory_handles():
        seen, purged = collect_directory(store, dir_fh, all_replicas)
        result.directories_scanned += 1
        result.tombstones_seen += seen
        result.tombstones_purged += purged
    return result
