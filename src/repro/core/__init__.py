"""Public Ficus API: the path-based facade applications program against."""

from repro.core.filesystem import FicusFile, FicusFileSystem, StatResult

__all__ = ["FicusFile", "FicusFileSystem", "StatResult"]
