"""Public Ficus API: the path-based facade applications program against."""

from repro.core.filesystem import CheckedRead, FicusFile, FicusFileSystem, StatResult

__all__ = ["CheckedRead", "FicusFile", "FicusFileSystem", "StatResult"]
