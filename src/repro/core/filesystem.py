"""The public Ficus API: a path-based facade over the logical layer.

This is what applications (and the examples/) program against.  It plays
the role of the Unix system-call family in Figure 1: paths in, bytes out,
with open/close sessions and advisory locking handled for the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FileNotFound, InvalidArgument, IsADirectory, NotADirectory
from repro.logical import FicusLogicalLayer, LogicalDirVnode, LogicalFileVnode
from repro.ufs.inode import FileAttributes, FileType
from repro.vnode.interface import ROOT_CTX, OpContext, Vnode


def _split(path: str) -> list[str]:
    parts = [p for p in path.split("/") if p]
    if any(p in (".", "..") for p in parts):
        raise InvalidArgument("paths with . or .. are not supported")
    return parts


@dataclass
class StatResult:
    """Friendly stat output."""

    ftype: FileType
    size: int
    nlink: int
    uid: int
    perm: int
    mtime: float

    @classmethod
    def from_attrs(cls, attrs: FileAttributes) -> "StatResult":
        return cls(
            ftype=attrs.ftype,
            size=attrs.size,
            nlink=attrs.nlink,
            uid=attrs.uid,
            perm=attrs.perm,
            mtime=attrs.mtime,
        )

    @property
    def is_dir(self) -> bool:
        return self.ftype == FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.ftype == FileType.REGULAR


@dataclass
class CheckedRead:
    """Result of :meth:`FicusFileSystem.read_file_checked`."""

    data: bytes
    #: the read may not reflect every replica (partition or suspected
    #: divergence at read time); reconciliation will settle it later
    divergence_suspected: bool


class FicusFile:
    """An open Ficus file: one update session, closed via context manager."""

    def __init__(self, fs: "FicusFileSystem", vnode: LogicalFileVnode, mode: str, ctx: OpContext):
        self._fs = fs
        self._vnode = vnode
        self._mode = mode
        self._ctx = ctx
        self._offset = 0
        self._closed = False
        # every open handle is its own lock owner, so two writers on one
        # host conflict even through the same facade
        self._owner = f"{fs.client_id}#{fs._next_handle_id()}"
        writable = any(m in mode for m in "wa+")
        self._writable = writable
        if writable:
            fs.logical.locks.acquire_exclusive(vnode.fh, self._owner)
        else:
            fs.logical.locks.acquire_shared(vnode.fh, self._owner)
        try:
            vnode.open(ctx)
            if "w" in mode:
                vnode.truncate(0, ctx)
            if "a" in mode:
                self._offset = vnode.getattr(ctx).size
        except Exception:
            # never leak the advisory lock if the open itself fails
            if writable:
                fs.logical.locks.release_exclusive(vnode.fh, self._owner)
            else:
                fs.logical.locks.release_shared(vnode.fh, self._owner)
            raise

    # -- file-like interface --

    def read(self, size: int | None = None) -> bytes:
        self._check_open()
        if size is not None:
            data = self._vnode.read(self._offset, max(0, size), self._ctx)
            self._offset += len(data)
            return data
        # read to EOF by chunking rather than trusting getattr().size:
        # across an NFS hop the attribute cache may serve a stale size
        # (paper Section 2.2), and a chunked read cannot be fooled by it
        pieces = []
        chunk = 1 << 20
        while True:
            data = self._vnode.read(self._offset, chunk, self._ctx)
            if not data:
                break
            pieces.append(data)
            self._offset += len(data)
            if len(data) < chunk:
                break
        return b"".join(pieces)

    def write(self, data: bytes) -> int:
        self._check_open()
        if not self._writable:
            raise InvalidArgument("file not opened for writing")
        written = self._vnode.write(self._offset, data, self._ctx)
        self._offset += written
        return written

    def seek(self, offset: int) -> None:
        self._check_open()
        if offset < 0:
            raise InvalidArgument("negative seek")
        self._offset = offset

    def tell(self) -> int:
        return self._offset

    def truncate(self, size: int) -> None:
        self._check_open()
        if not self._writable:
            raise InvalidArgument("file not opened for writing")
        self._vnode.truncate(size, self._ctx)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._vnode.close(self._ctx)
        if self._writable:
            self._fs.logical.locks.release_exclusive(self._vnode.fh, self._owner)
        else:
            self._fs.logical.locks.release_shared(self._vnode.fh, self._owner)

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidArgument("I/O on closed file")

    def __enter__(self) -> "FicusFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FicusFileSystem:
    """Path-based access to one host's view of the Ficus name space."""

    def __init__(self, logical: FicusLogicalLayer, ctx: OpContext = ROOT_CTX, client_id: str | None = None):
        self.logical = logical
        self.ctx = ctx
        self.client_id = client_id or f"client@{logical.host_addr}"
        self._handle_serial = 0
        # stable per Telemetry hub — bound once to shorten the per-op path
        self._tracer = logical.telemetry.tracer

    def _next_handle_id(self) -> int:
        self._handle_serial += 1
        return self._handle_serial

    #: symlink expansion limit (classic Unix MAXSYMLINKS)
    MAX_SYMLINKS = 8

    # -- resolution ---------------------------------------------------------

    def resolve(self, path: str, follow: bool = True) -> Vnode:
        """Resolve a path to a logical vnode (crossing graft points).

        Symbolic links in intermediate components are always followed;
        the final component follows only when ``follow`` is True (the
        lstat/stat distinction).  Expansion is capped at
        :attr:`MAX_SYMLINKS` to break cycles (ELOOP).
        """
        return self._resolve_parts(_split(path), follow=follow, budget=self.MAX_SYMLINKS)

    def _resolve_parts(self, parts: list[str], follow: bool, budget: int) -> Vnode:
        from repro.logical.vnodes import LogicalFileVnode
        from repro.physical import EntryType
        from repro.ufs import FileType

        node: Vnode = self.logical.root()
        for index, part in enumerate(parts):
            node = node.lookup(part, self.ctx)
            last = index == len(parts) - 1
            is_symlink = (
                isinstance(node, LogicalFileVnode) and node.etype == EntryType.SYMLINK
            )
            if is_symlink and (follow or not last):
                if budget <= 0:
                    raise InvalidArgument("too many levels of symbolic links")
                target = node.readlink(self.ctx)
                remainder = parts[index + 1 :]
                target_parts = _split(target)
                if not target.startswith("/"):
                    # relative link: resolve from the link's directory
                    target_parts = parts[:index] + target_parts
                return self._resolve_parts(
                    target_parts + remainder, follow=follow, budget=budget - 1
                )
        return node

    def _resolve_dir(self, path: str) -> LogicalDirVnode:
        node = self.resolve(path)
        if not isinstance(node, LogicalDirVnode):
            raise NotADirectory(f"{path!r} is not a directory")
        return node

    def _resolve_parent(self, path: str) -> tuple[LogicalDirVnode, str]:
        parts = _split(path)
        if not parts:
            raise InvalidArgument("path names the root")
        if len(parts) == 1:
            node: Vnode = self.logical.root()
        else:
            node = self._resolve_parts(parts[:-1], follow=True, budget=self.MAX_SYMLINKS)
        if not isinstance(node, LogicalDirVnode):
            raise NotADirectory(f"parent of {path!r} is not a directory")
        return node, parts[-1]

    # -- file access -----------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> FicusFile:
        """Open a file; modes ``r``, ``w``, ``a``, ``r+`` as usual.

        ``w``/``a`` create the file if missing.  The open/close pair
        delimits one update session (one version-vector bump however many
        writes happen inside).
        """
        if not any(m in mode for m in "rwa"):
            raise InvalidArgument(f"bad mode {mode!r}")
        tracer = self._tracer
        if not tracer.enabled:
            return self._open(path, mode)
        with tracer.span(
            "fs.open", layer="fs", host=self.logical.host_addr, path=path, mode=mode
        ):
            return self._open(path, mode)

    def _open(self, path: str, mode: str) -> FicusFile:
        try:
            node = self.resolve(path, follow=True)
        except FileNotFound:
            if "r" in mode and "+" not in mode:
                raise
            parent, name = self._resolve_parent(path)
            try:
                existing = parent.lookup(name, self.ctx)
            except FileNotFound:
                existing = None
            if existing is not None:
                # the name exists but following it failed: a dangling
                # symlink.  (Unix would create the target; we keep the
                # simpler rule and refuse.)
                raise FileNotFound(f"{path!r} is a dangling symbolic link") from None
            node = parent.create(name, ctx=self.ctx)
        if isinstance(node, LogicalDirVnode):
            raise IsADirectory(f"{path!r} is a directory")
        assert isinstance(node, LogicalFileVnode)
        return FicusFile(self, node, mode, self.ctx)

    def read_file(self, path: str) -> bytes:
        tracer = self._tracer
        if not tracer.enabled:
            with self.open(path, "r") as f:
                return f.read()
        with tracer.span("fs.read_file", layer="fs", host=self.logical.host_addr, path=path):
            with self.open(path, "r") as f:
                return f.read()

    def read_file_checked(self, path: str) -> "CheckedRead":
        """Read a file and report whether its volume may be diverged.

        One-copy availability keeps reads working through a partition, at
        the price of possibly serving stale data (paper Section 2.4).
        ``divergence_suspected`` is True when the replica selection for
        this read could not see every replica, or when this host's health
        plane suspects the volume has diverged — the caller can then
        decide whether the answer is good enough.
        """
        node = self.resolve(path, follow=True)
        if isinstance(node, LogicalDirVnode):
            raise IsADirectory(f"{path!r} is a directory")
        data = self.read_file(path)
        suspected = bool(self.logical.last_read_divergence_suspected)
        health = self.logical.health
        if health is not None and isinstance(node, LogicalFileVnode):
            suspected = suspected or health.divergence_suspected(node.volume)
        return CheckedRead(data=data, divergence_suspected=suspected)

    def write_file(self, path: str, data: bytes) -> None:
        # the whole open -> write -> close(update notify) session becomes
        # one trace tree rooted here
        tracer = self._tracer
        if not tracer.enabled:
            with self.open(path, "w") as f:
                f.write(data)
            return
        with tracer.span("fs.write_file", layer="fs", host=self.logical.host_addr, path=path):
            with self.open(path, "w") as f:
                f.write(data)

    def append_file(self, path: str, data: bytes) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            with self.open(path, "a") as f:
                f.write(data)
            return
        with tracer.span("fs.append_file", layer="fs", host=self.logical.host_addr, path=path):
            with self.open(path, "a") as f:
                f.write(data)

    # -- namespace ---------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        parent.mkdir(name, ctx=self.ctx)

    def makedirs(self, path: str) -> None:
        """mkdir -p."""
        node: Vnode = self.logical.root()
        for part in _split(path):
            try:
                node = node.lookup(part, self.ctx)
            except FileNotFound:
                node = node.mkdir(part, ctx=self.ctx)

    def rmdir(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        parent.rmdir(name, self.ctx)

    def unlink(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        parent.remove(name, self.ctx)

    def rename(self, src: str, dst: str) -> None:
        src_parent, src_name = self._resolve_parent(src)
        dst_parent, dst_name = self._resolve_parent(dst)
        src_parent.rename(src_name, dst_parent, dst_name, self.ctx)

    def link(self, existing: str, new: str) -> None:
        target = self.resolve(existing)
        if not isinstance(target, LogicalFileVnode):
            raise IsADirectory(f"{existing!r} is not a regular file")
        parent, name = self._resolve_parent(new)
        parent.link(target, name, self.ctx)

    def symlink(self, target: str, path: str) -> None:
        parent, name = self._resolve_parent(path)
        parent.symlink(name, target, self.ctx)

    def readlink(self, path: str) -> str:
        return self.resolve(path, follow=False).readlink(self.ctx)

    def lstat(self, path: str) -> StatResult:
        """Like stat but does not follow a final symlink."""
        return StatResult.from_attrs(self.resolve(path, follow=False).getattr(self.ctx))

    # -- inspection ---------------------------------------------------------------

    def listdir(self, path: str = "/") -> list[str]:
        return [e.name for e in self._resolve_dir(path).readdir(self.ctx)]

    def stat(self, path: str) -> StatResult:
        return StatResult.from_attrs(self.resolve(path).getattr(self.ctx))

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except FileNotFound:
            return False

    # -- merge policy (automatic conflict resolution) ------------------------------

    def create_file(self, path: str, data: bytes = b"", merge_policy: str = "") -> None:
        """Create a file, optionally declaring its conflict-resolver tag.

        The tag rides the replica's auxiliary attributes, so every host
        that later detects a concurrent-update conflict on this file
        applies the same automatic resolver.
        """
        parent, name = self._resolve_parent(path)
        node = parent.create(name, ctx=self.ctx, merge_policy=merge_policy)
        if data:
            assert isinstance(node, LogicalFileVnode)
            with FicusFile(self, node, "w", self.ctx) as f:
                f.write(data)

    def set_merge_policy(self, path: str, tag: str) -> None:
        """Declare (or change) an existing file's conflict-resolver tag.

        Applied through exactly one replica — the policy change bumps the
        file's version vector there, and reconciliation propagates the
        tag like any other update.  (Applying it to several replicas at
        once would mint concurrent versions and manufacture a conflict.)
        """
        from repro.physical.wire import op_setpolicy

        node = self.resolve(path)
        if not isinstance(node, LogicalFileVnode):
            raise InvalidArgument(f"{path!r} is not a regular file")
        view = self.logical.select_update_replica(
            node.volume, node.parent_fh, node.fh, ctx=self.ctx
        )
        view.dir_vnode.lookup(op_setpolicy(node.fh, tag), self.ctx)
        self.logical.notify_update(node.volume, view.location, node.parent_fh, node.fh)

    def merge_policy(self, path: str) -> str:
        """The file's declared resolver tag (``""`` when none)."""
        node = self.resolve(path)
        if not isinstance(node, LogicalFileVnode):
            raise InvalidArgument(f"{path!r} is not a regular file")
        view = self.logical.select_update_replica(
            node.volume, node.parent_fh, node.fh, ctx=self.ctx
        )
        aux = view.dir_vnode.getattrs_batch([node.fh], self.ctx).child(node.fh)
        return aux.merge_policy if aux is not None else ""

    # -- conflicts (the "reported to the owner" interface) -----------------------

    def conflicts(self, conflict_log) -> list:
        """Unresolved conflict reports relevant to this host's view."""
        return conflict_log.unresolved()

    def conflict_versions(self, report) -> dict[str, bytes]:
        """Fetch every reachable replica's version of a conflicted file,
        keyed by host — what an owner inspects before deciding."""
        versions: dict[str, bytes] = {}
        for view in self.logical.file_replicas(
            report.volume, report.parent_fh, report.fh
        ):
            from repro.physical.wire import op_byfh
            from repro.vnode.interface import read_whole

            child = view.dir_vnode.lookup(op_byfh(report.fh))
            versions[view.location.host] = read_whole(child)
        return versions

    def resolve_conflict(self, report, chosen: bytes, conflict_log=None) -> None:
        """Install ``chosen`` as the post-conflict version.

        The resolution dominates every reachable replica's version, so
        ordinary propagation carries it everywhere.  Requires a reachable
        replica that stores the file.
        """
        from repro.recon import resolve_file_conflict

        replicas = self.logical.file_replicas(report.volume, report.parent_fh, report.fh)
        if not replicas:
            from repro.errors import AllReplicasUnavailable

            raise AllReplicasUnavailable("no reachable replica stores the conflicted file")
        observed = [r.vv for r in replicas] + [report.local_vv, report.remote_vv]
        # the resolve primitive needs direct store access, so pick a
        # replica this host's physical layer owns when possible
        local_physical = self.logical.fabric.local_physical
        store = None
        if local_physical is not None:
            for replica in replicas:
                if local_physical.hosts_volume_replica(replica.location.volrep):
                    store = local_physical.store_for(replica.location.volrep)
                    break
        if store is None:
            raise InvalidArgument(
                "conflict resolution currently requires a locally hosted replica"
            )
        resolve_file_conflict(
            store,
            report.parent_fh,
            report.fh,
            chosen,
            observed,
            conflict_log,
            health=local_physical.health,
        )

    def walk_tree(self, path: str = "/") -> list[str]:
        """Every path under ``path`` (depth-first, directories included)."""
        out: list[str] = []

        def recurse(prefix: str, node: Vnode) -> None:
            if not isinstance(node, LogicalDirVnode):
                return
            for entry in node.readdir(self.ctx):
                child_path = f"{prefix.rstrip('/')}/{entry.name}"
                out.append(child_path)
                if entry.ftype == FileType.DIRECTORY:
                    recurse(child_path, node.lookup(entry.name, self.ctx))

        recurse(path if path.startswith("/") else "/" + path, self.resolve(path))
        return out
