"""Trace spans: one operation seen end-to-end across the vnode stack.

The paper motivates stackable layers partly as the vehicle for
"performance monitoring" (Section 1); a trace makes that concrete by
recording, per layer crossing, a *span* — a named interval with a parent —
so a single ``open -> write -> notify -> pull`` becomes one tree whose
nodes live in the logical, NFS, and physical layers on several hosts.

Context propagates two ways:

* **Within a host** the simulator is synchronous, so an active-span stack
  captures nesting implicitly: a physical-layer span started while an
  NFS-server span is open becomes its child.
* **Across the simulated NFS hop** (and across the update-notification
  datagram) nothing is implicit: the client serializes a
  :class:`TraceContext` into a protocol field and the receiving side
  parents its span on the deserialized context.  This mirrors how real
  distributed tracing must thread context through RPC metadata.

Span ids are minted from a counter, never from randomness, and timestamps
come from whatever clock the tracer is bound to (the simulator binds the
shared :class:`~repro.util.VirtualClock`), so a replayed experiment yields
a byte-identical trace.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

#: Wire keys used when a TraceContext rides inside an RPC call (within the
#: operation context of repro.nfs.protocol.CTX_FIELD) or a datagram payload.
_WIRE_TRACE = "trace_id"
_WIRE_SPAN = "span_id"


@dataclass(frozen=True)
class TraceContext:
    """The propagatable identity of a span: (trace, span) id pair."""

    trace_id: int
    span_id: int

    def to_wire(self) -> dict[str, str]:
        """Serialize for a protocol field (strings only, like real wires)."""
        return {_WIRE_TRACE: f"{self.trace_id:x}", _WIRE_SPAN: f"{self.span_id:x}"}

    @classmethod
    def from_wire(cls, payload: object) -> "TraceContext | None":
        """Parse a wire form; None for anything malformed (never raises —
        a bad trace field must not break the carrying RPC)."""
        if not isinstance(payload, dict):
            return None
        try:
            return cls(int(payload[_WIRE_TRACE], 16), int(payload[_WIRE_SPAN], 16))
        except (KeyError, TypeError, ValueError):
            return None


class Span:
    """One timed, named interval within a trace tree."""

    __slots__ = (
        "name",
        "layer",
        "host",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "tags",
    )

    def __init__(
        self,
        name: str,
        layer: str,
        host: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        start: float,
        tags: dict[str, object] | None = None,
    ):
        self.name = name
        self.layer = layer
        self.host = host
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.status = "ok"
        self.tags = tags or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def set_tag(self, key: str, value: object) -> None:
        self.tags[key] = value

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "layer": self.layer,
            "host": self.host,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, layer={self.layer!r}, host={self.host!r}, "
            f"trace={self.trace_id:x}, span={self.span_id:x}, "
            f"parent={'-' if self.parent_id is None else f'{self.parent_id:x}'})"
        )


class _NullSpan:
    """The disabled fast path: a shared, stateless, do-nothing span.

    ``Tracer.span`` on a disabled tracer returns this singleton, so the
    instrumented code pays one method call and one ``with`` — no
    allocation, no clock read, no bookkeeping.
    """

    __slots__ = ()

    #: Always None: disabled tracing has no context to propagate.
    context = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_tag(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager tracking one live span on the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    @property
    def context(self) -> TraceContext:
        return self.span.context

    def set_tag(self, key: str, value: object) -> None:
        self.span.tags[key] = value

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is not None:
            self.span.status = "error"
            self.span.tags.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Mints spans, tracks the active stack, retains finished spans.

    ``max_spans`` bounds retention: the oldest finished spans are evicted
    (counted in :attr:`dropped`) so a long simulation cannot grow without
    bound.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
        max_spans: int = 100_000,
    ):
        self.enabled = enabled
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._stack: list[Span] = []
        self.finished: deque[Span] = deque(maxlen=max_spans)
        self.dropped = 0
        self._next_span_id = 1
        self._next_trace_id = 1

    # -- span lifecycle ----------------------------------------------------

    def span(
        self,
        name: str,
        layer: str = "",
        host: str = "",
        parent: TraceContext | None = None,
        **tags: object,
    ) -> "_ActiveSpan | _NullSpan":
        """Start a span; use as ``with tracer.span(...) as sp:``.

        Parentage: an explicit ``parent`` context (from a protocol field)
        wins; otherwise the innermost active span; otherwise a new trace
        root is started.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self._stack:
            top = self._stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        span = Span(
            name,
            layer,
            host,
            trace_id,
            self._next_span_id,
            parent_id,
            self._clock(),
            tags or None,
        )
        self._next_span_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        # pop the span wherever it sits; mismatched exits (an exception
        # unwound through several spans) must not corrupt the stack
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                break
        if len(self.finished) == self.finished.maxlen:
            self.dropped += 1
        self.finished.append(span)

    # -- introspection ------------------------------------------------------

    def current_context(self) -> TraceContext | None:
        """The context to propagate from here (None when disabled/idle)."""
        if not self.enabled or not self._stack:
            return None
        return self._stack[-1].context

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def spans(self, trace_id: int | None = None) -> list[Span]:
        if trace_id is None:
            return list(self.finished)
        return [s for s in self.finished if s.trace_id == trace_id]

    def trace_ids(self) -> list[int]:
        """Distinct trace ids among finished spans, in first-seen order."""
        seen: dict[int, None] = {}
        for span in self.finished:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def children_of(self, span: Span) -> list[Span]:
        return [
            s
            for s in self.finished
            if s.trace_id == span.trace_id and s.parent_id == span.span_id
        ]

    def roots(self, trace_id: int) -> list[Span]:
        return [s for s in self.finished if s.trace_id == trace_id and s.parent_id is None]

    def reset(self) -> None:
        self._stack.clear()
        self.finished.clear()
        self.dropped = 0
