"""The consistency observability plane: health gauges and a flight recorder.

One-copy availability means replicas *will* silently diverge during
partitions (paper Section 2.4); reconciliation eventually repairs them,
but between the partition and the repair an operator has no live answer
to "how stale is this replica right now, and is anything wrong?"  This
module maintains that answer per host:

* **Divergence suspicion** — keyed by ``(volume, peer host)``.  Raised
  the moment an update notification cannot reach a replica-storing host
  (the updating side *knows* that peer missed the write) and when a
  reconciliation attempt against a peer aborts; cleared when a
  reconciliation round with that peer completes.  A completed round
  turns unknown divergence into known state: either the replicas agree
  or a conflict is on record in the conflict log.
* **Staleness ticks** — per peer, recon-daemon ticks since the last
  completed round with that peer.  Grows under partition, resets to
  zero on the first successful round after heal.
* **Notes pending** — the new-version cache depth: updates heard about
  but not yet pulled.

All state lives in plain Python (the plane works with telemetry
disabled); when the deployment's :class:`~repro.telemetry.Telemetry`
hub is enabled the same numbers mirror into gauges named
``health.divergence_suspected.<host>``, ``health.notes_pending.<host>``
and ``health.staleness_ticks.<host>.<peer>``.

The :class:`FlightRecorder` is the always-on black box: a bounded ring
of recent vnode operations (with their trace ids) that snapshots itself
— ring, health state, metrics, last recon outcomes — whenever an
anomaly fires (conflict detected, ambiguous non-idempotent timeout,
pull digest mismatch, fsck violation, chaos-oracle failure), turning
"seed 23 diverged" into a replayable evidence bundle.
"""

from __future__ import annotations

import json
import os
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.provenance import ProvenanceLedger

#: ring capacity of the per-host flight recorder
FLIGHT_RING_CAPACITY = 256
#: anomaly snapshots retained in memory per host
MAX_RETAINED_DUMPS = 8
#: recon outcomes retained for dumps and the facade
MAX_RECON_OUTCOMES = 8


@dataclass
class HostHealth:
    """Structured result of :meth:`repro.sim.FicusHost.health`."""

    host: str
    up: bool = True
    #: the peer-selection strategy this host's daemons run
    topology: str = "full_mesh"
    #: peers one reconciliation tick considers under that strategy
    fanout: int = 0
    #: new-version cache depth: updates heard about but not yet pulled
    notes_pending: int = 0
    #: peer -> recon ticks since the last completed round with it
    staleness_ticks: dict[str, int] = field(default_factory=dict)
    #: peer -> virtual seconds since the last completed round with it —
    #: the wall-clock staleness SLO signal ("no replica serves data older
    #: than T seconds after heal")
    staleness_seconds: dict[str, float] = field(default_factory=dict)
    #: volume (hex) -> peers suspected of holding diverged state
    suspected: dict[str, list[str]] = field(default_factory=dict)
    #: peers the daemons currently route around (flapping)
    degraded_peers: list[str] = field(default_factory=list)
    #: anomaly kind -> times fired since boot
    anomalies: dict[str, int] = field(default_factory=dict)
    #: most recent reconciliation outcomes, oldest first
    last_recon: list[dict] = field(default_factory=list)
    #: conflicts this host merged automatically since boot
    resolver_auto_resolved: int = 0
    #: conflicts a resolver covered but had to hand to the owner
    resolver_fallback_manual: int = 0
    #: most recent automatic resolutions, oldest first
    last_resolutions: list[dict] = field(default_factory=list)

    @property
    def divergence_suspected(self) -> bool:
        return bool(self.suspected)

    def suspected_volumes(self) -> list[str]:
        return sorted(self.suspected)

    @property
    def max_staleness(self) -> int:
        return max(self.staleness_ticks.values(), default=0)

    @property
    def max_staleness_seconds(self) -> float:
        return max(self.staleness_seconds.values(), default=0.0)

    def to_dict(self) -> dict:
        return {
            "host": self.host,
            "up": self.up,
            "topology": self.topology,
            "fanout": self.fanout,
            "notes_pending": self.notes_pending,
            "staleness_ticks": dict(self.staleness_ticks),
            "staleness_seconds": dict(self.staleness_seconds),
            "suspected": {v: list(p) for v, p in self.suspected.items()},
            "degraded_peers": list(self.degraded_peers),
            "anomalies": dict(self.anomalies),
            "last_recon": list(self.last_recon),
            "resolver_auto_resolved": self.resolver_auto_resolved,
            "resolver_fallback_manual": self.resolver_fallback_manual,
            "last_resolutions": list(self.last_resolutions),
        }


class FlightRecorder:
    """Bounded ring of recent operations plus anomaly snapshots.

    ``record`` must stay cheap — it runs on every vnode operation — so a
    ring entry is one small tuple ``(at, op, target, trace)``.  When an
    anomaly fires the whole ring is frozen into a snapshot dict together
    with whatever ``context`` supplies (health state, metrics, recon
    outcomes); snapshots are retained in memory and, when ``dump_dir``
    is set, written as JSONL files an offline ``ficus_top`` can render.
    """

    def __init__(
        self,
        host: str,
        capacity: int = FLIGHT_RING_CAPACITY,
        clock: Callable[[], float] | None = None,
        context: Callable[[], dict] | None = None,
    ):
        self.host = host
        self.capacity = capacity
        self._clock = clock
        self._context = context
        self.ring: deque[tuple[float, str, str, str | None]] = deque(maxlen=capacity)
        self.dumps: deque[dict] = deque(maxlen=MAX_RETAINED_DUMPS)
        #: when set, every anomaly also writes a JSONL file here
        self.dump_dir: str | None = None
        self.dump_paths: list[str] = []
        self._seq = 0

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def record(self, op: str, target: str = "", trace: str | None = None) -> None:
        self.ring.append((self.now(), op, target, trace))

    def anomaly(self, kind: str, detail: dict | None = None) -> dict:
        """Freeze the ring into a snapshot; returns (and retains) it."""
        self._seq += 1
        snapshot = {
            "host": self.host,
            "seq": self._seq,
            "kind": kind,
            "at": self.now(),
            "detail": dict(detail or {}),
            "ops": [list(entry) for entry in self.ring],
        }
        if self._context is not None:
            snapshot.update(self._context())
        self.dumps.append(snapshot)
        if self.dump_dir is not None:
            path = os.path.join(
                self.dump_dir, f"ficus_flight_{self.host}_{self._seq}.jsonl"
            )
            self.dump_paths.append(self.write_dump(snapshot, path))
        return snapshot

    def write_dump(self, snapshot: dict, path: str) -> str:
        """Write one snapshot as a JSONL evidence bundle; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            for line in snapshot_to_jsonl(snapshot):
                fp.write(line + "\n")
        return path


def snapshot_to_jsonl(snapshot: dict) -> list[str]:
    """One JSON object per line: anomaly, ops, health, recon, metrics."""
    lines = [
        json.dumps(
            {
                "type": "anomaly",
                "host": snapshot.get("host"),
                "seq": snapshot.get("seq"),
                "kind": snapshot.get("kind"),
                "at": snapshot.get("at"),
                "detail": snapshot.get("detail", {}),
            }
        )
    ]
    for at, op, target, trace in snapshot.get("ops", []):
        lines.append(
            json.dumps({"type": "op", "at": at, "op": op, "target": target, "trace": trace})
        )
    if "health" in snapshot:
        lines.append(json.dumps({"type": "health", **snapshot["health"]}))
    for outcome in snapshot.get("last_recon", []):
        lines.append(json.dumps({"type": "recon", **outcome}))
    for event in snapshot.get("prov", []):
        lines.append(json.dumps({"type": "prov", **event}))
    if snapshot.get("metrics"):
        lines.append(json.dumps({"type": "metrics", "values": snapshot["metrics"]}))
    return lines


def load_dump(path: str) -> dict:
    """Rebuild a snapshot dict from a JSONL flight-recorder dump."""
    snapshot: dict = {"ops": [], "last_recon": [], "health": {}, "metrics": {}, "prov": []}
    with open(path, encoding="utf-8") as fp:
        for raw in fp:
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            kind = record.pop("type", None)
            if kind == "anomaly":
                snapshot.update(record)
            elif kind == "op":
                snapshot["ops"].append(
                    [record.get("at"), record.get("op"), record.get("target"), record.get("trace")]
                )
            elif kind == "health":
                snapshot["health"] = record
            elif kind == "recon":
                snapshot["last_recon"].append(record)
            elif kind == "prov":
                snapshot["prov"].append(record)
            elif kind == "metrics":
                snapshot["metrics"] = record.get("values", {})
    return snapshot


class HealthPlane:
    """Per-host consistency health: suspicion, staleness, anomalies.

    Constructed unconditionally by :class:`~repro.sim.FicusHost` (the
    state is plain Python and the hot-path hooks are attribute checks),
    and consulted by the logical layer, the daemons, the conflict log,
    the NFS client, and ``pull_file``.  ``FicusHost.health()`` renders
    it as a :class:`HostHealth`.
    """

    def __init__(
        self,
        host: str,
        clock: Callable[[], float] | None = None,
        telemetry: Telemetry | None = None,
        ring_capacity: int = FLIGHT_RING_CAPACITY,
    ):
        self.host = host
        self._clock = clock
        self.telemetry = telemetry or NULL_TELEMETRY
        #: the peer-selection strategy the host's daemons run (stamped by
        #: the cluster builder so offline dumps name it)
        self.topology = "full_mesh"
        #: (volume, peer host) -> why divergence is suspected
        self._suspected: dict[tuple[object, str], str] = {}
        #: peer host -> recon ticks since the last completed round
        self._staleness: dict[str, int] = {}
        #: peer host -> virtual time of the last completed round (or the
        #: moment we first started tracking the peer): the wall-clock
        #: staleness SLO is ``now - this``
        self._fresh_since: dict[str, float] = {}
        self.notes_pending = 0
        #: the always-on per-host version-provenance ledger (see
        #: :mod:`repro.telemetry.provenance`); like the flight recorder it
        #: survives crashes — the plane plays the black box
        self.provenance = ProvenanceLedger(host, clock=clock)
        self.last_recon: deque[dict] = deque(maxlen=MAX_RECON_OUTCOMES)
        self.anomaly_counts: dict[str, int] = {}
        self.resolver_auto_resolved = 0
        self.resolver_fallback_manual = 0
        self.last_resolutions: deque[dict] = deque(maxlen=MAX_RECON_OUTCOMES)
        self.recorder = FlightRecorder(
            host, capacity=ring_capacity, clock=clock, context=self._dump_context
        )

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- the op ring -------------------------------------------------------

    def record_op(self, op: str, target: str = "", ctx=None) -> None:
        """Append one vnode operation to the flight ring (hot path)."""
        trace = None
        if ctx is not None and ctx.trace is not None:
            tc = ctx.trace
            trace = f"{tc.trace_id:x}:{tc.span_id:x}"
        self.recorder.record(op, target, trace)

    # -- divergence suspicion ---------------------------------------------

    def suspect(self, volume, peer: str, reason: str) -> None:
        key = (volume, peer)
        if key in self._suspected:
            return
        self._suspected[key] = reason
        self._mirror_suspicion()
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "health.divergence_suspected",
                host=self.host,
                volume=volume.to_hex(),
                peer=peer,
                reason=reason,
            )

    def clear_suspicion(self, volume, peer: str) -> None:
        if self._suspected.pop((volume, peer), None) is not None:
            self._mirror_suspicion()

    def note_missed_notification(self, volume, peer: str) -> None:
        """An update notification could not reach ``peer``: it missed a write."""
        self.suspect(volume, peer, "missed-notification")

    def divergence_suspected(self, volume=None) -> bool:
        if volume is None:
            return bool(self._suspected)
        return any(key[0] == volume for key in self._suspected)

    def suspected_by_volume(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for volume, peer in self._suspected:
            out.setdefault(volume.to_hex(), []).append(peer)
        return {volume: sorted(peers) for volume, peers in out.items()}

    # -- recon / propagation hooks ----------------------------------------

    def recon_tick(self, volume, peer_hosts: Iterable[str]) -> None:
        """One recon-daemon tick considered these peers: staleness grows."""
        for peer in peer_hosts:
            self._staleness[peer] = self._staleness.get(peer, 0) + 1
            # a peer becomes SLO-tracked the first time a round considers
            # it; until a round completes, its staleness clock runs from
            # this moment
            self._fresh_since.setdefault(peer, self.now())
        self._mirror_staleness()

    def recon_result(self, volume, peer: str, ok: bool, conflicts: int = 0) -> None:
        """A reconciliation round with ``peer`` finished (or aborted)."""
        self.last_recon.append(
            {
                "at": self.now(),
                "volume": volume.to_hex(),
                "peer": peer,
                "ok": bool(ok),
                "conflicts": conflicts,
            }
        )
        if ok:
            # the round completed: divergence with this peer is no longer
            # *suspected* — either the replicas now agree or a conflict is
            # on record in the conflict log (and fired an anomaly)
            self._staleness[peer] = 0
            self._fresh_since[peer] = self.now()
            self.clear_suspicion(volume, peer)
            self._mirror_staleness()
        else:
            self.suspect(volume, peer, "recon-aborted")

    def staleness_seconds(self) -> dict[str, float]:
        """Per peer: virtual seconds since the last completed round.

        Zero for a peer whose round just completed; grows while partitions
        (or a broken daemon) keep rounds from finishing — the signal the
        wall-clock staleness SLO gates on.
        """
        now = self.now()
        return {
            peer: max(0.0, now - self._fresh_since.get(peer, now))
            for peer in self._staleness
        }

    def set_notes_pending(self, count: int) -> None:
        self.notes_pending = count
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(f"health.notes_pending.{self.host}").set(count)

    # -- automatic conflict resolution ------------------------------------

    def resolution_applied(
        self, name: str, fh: str, tag: str, local_vv, remote_vv, resolved_vv
    ) -> None:
        """A resolver merged a conflict and the result was committed."""
        self.resolver_auto_resolved += 1
        entry = {
            "at": self.now(),
            "name": name,
            "fh": fh,
            "tag": tag,
            "local_vv": local_vv.encode(),
            "remote_vv": remote_vv.encode(),
            "resolved_vv": resolved_vv.encode(),
        }
        self.last_resolutions.append(entry)
        # a resolver merge mints a version whose parents are exactly the
        # two concurrent inputs — the >= 2-parent merge node of the DAG
        self.provenance.record(
            "merge",
            fh,
            resolved_vv.encode(),
            parents=(local_vv.encode(), remote_vv.encode()),
            detail=f"{name}[{tag}]",
        )
        # the op timeline keeps both input vvs so a dump shows exactly
        # which version pair the merge consumed
        self.recorder.record(
            "conflict_auto_resolved",
            f"{name}[{tag}] {local_vv.encode() or '0'} x {remote_vv.encode() or '0'}",
        )
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("resolver.auto_resolved").inc()
            self.telemetry.events.emit(
                "resolver.auto_resolved", host=self.host, **entry
            )

    def resolution_fallback(
        self, name: str, fh: str, tag: str, reason: str, local_vv, remote_vv
    ) -> None:
        """A covered conflict could not be merged; it goes to the owner."""
        self.resolver_fallback_manual += 1
        self.recorder.record("conflict_resolver_fallback", f"{name}[{tag}] {reason}")
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("resolver.fallback_manual").inc()
            self.telemetry.events.emit(
                "resolver.fallback_manual",
                host=self.host,
                name=name,
                fh=fh,
                tag=tag,
                reason=reason,
                local_vv=local_vv.encode(),
                remote_vv=remote_vv.encode(),
            )

    # -- anomalies ---------------------------------------------------------

    def anomaly(self, kind: str, **detail) -> dict:
        """An anomaly fired: count it and freeze a flight-recorder snapshot."""
        self.anomaly_counts[kind] = self.anomaly_counts.get(kind, 0) + 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("health.anomalies").inc()
            self.telemetry.metrics.counter(f"health.anomaly.{kind}").inc()
            self.telemetry.events.emit("health.anomaly", host=self.host, anomaly_kind=kind)
        return self.recorder.anomaly(kind, detail)

    # -- rendering ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "host": self.host,
            "topology": self.topology,
            "notes_pending": self.notes_pending,
            "staleness_ticks": dict(self._staleness),
            "staleness_seconds": self.staleness_seconds(),
            "suspected": self.suspected_by_volume(),
            "anomalies": dict(self.anomaly_counts),
            "resolver_auto_resolved": self.resolver_auto_resolved,
            "resolver_fallback_manual": self.resolver_fallback_manual,
            "last_resolutions": list(self.last_resolutions),
        }

    def host_health(
        self,
        up: bool = True,
        notes_pending: int | None = None,
        degraded_peers: Iterable[str] = (),
        topology: str | None = None,
        fanout: int = 0,
    ) -> HostHealth:
        if notes_pending is not None:
            self.set_notes_pending(notes_pending)
        return HostHealth(
            host=self.host,
            up=up,
            topology=topology if topology is not None else self.topology,
            fanout=fanout,
            notes_pending=self.notes_pending,
            staleness_ticks=dict(self._staleness),
            staleness_seconds=self.staleness_seconds(),
            suspected=self.suspected_by_volume(),
            degraded_peers=sorted(degraded_peers),
            anomalies=dict(self.anomaly_counts),
            last_recon=list(self.last_recon),
            resolver_auto_resolved=self.resolver_auto_resolved,
            resolver_fallback_manual=self.resolver_fallback_manual,
            last_resolutions=list(self.last_resolutions),
        )

    def _dump_context(self) -> dict:
        metrics = self.telemetry.metrics.snapshot() if self.telemetry.enabled else {}
        return {
            "health": self.state_dict(),
            "last_recon": list(self.last_recon),
            "metrics": metrics,
            # the provenance ring rides along in every anomaly dump, so an
            # offline ficus_prov can rebuild the version DAG of an incident
            "prov": self.provenance.snapshot(),
        }

    def _mirror_suspicion(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                f"health.divergence_suspected.{self.host}"
            ).set(len(self._suspected))

    def _mirror_staleness(self) -> None:
        if self.telemetry.enabled:
            for peer, ticks in self._staleness.items():
                self.telemetry.metrics.gauge(
                    f"health.staleness_ticks.{self.host}.{peer}"
                ).set(ticks)
