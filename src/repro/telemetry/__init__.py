"""Cross-layer telemetry: trace spans, metrics registry, structured events.

One :class:`Telemetry` hub serves a whole deployment; every layer holds a
reference (defaulting to the shared disabled :data:`NULL_TELEMETRY`) and
instruments itself through it.  Enable by constructing the system with an
enabled hub::

    from repro.sim import FicusSystem
    from repro.telemetry import Telemetry

    system = FicusSystem(["west", "east"], telemetry=Telemetry())
    ...
    print(export.summary(system.telemetry))

Timestamps come from whichever clock the hub is bound to; the simulator
binds its :class:`~repro.util.VirtualClock`, so traces replay
deterministically.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.telemetry.events import EventLog, TelemetryEvent
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import NULL_SPAN, Span, TraceContext, Tracer


class Telemetry:
    """The per-deployment hub bundling tracer, metrics, and event log."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        max_spans: int = 100_000,
        event_capacity: int = 1024,
    ):
        self.enabled = enabled
        clock_fn = clock or time.perf_counter
        self.tracer = Tracer(clock=clock_fn, enabled=enabled, max_spans=max_spans)
        self.metrics = MetricsRegistry(enabled=enabled)
        self.events = EventLog(capacity=event_capacity, clock=clock_fn, enabled=enabled)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Drive all timestamps from ``clock`` (e.g. a VirtualClock's now)."""
        if not self.enabled:
            return  # keep the shared disabled hub inert
        self.tracer._clock = clock
        self.events._clock = clock

    def reset(self) -> None:
        """Drop recorded data; registered instrument *names* survive."""
        self.tracer.reset()
        self.events.clear()
        for name in self.metrics.names():
            instrument = self.metrics.get(name)
            if isinstance(instrument, Histogram):
                instrument.bucket_counts = [0] * (len(instrument.buckets) + 1)
                instrument.count = 0
                instrument.total = 0.0
            elif instrument is not None:
                instrument.value = 0

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, spans={len(self.tracer.finished)})"


#: Shared default for components built without a hub.  Permanently
#: disabled: every instrument it hands out is a no-op, so uninstrumented
#: deployments pay (nearly) nothing.  Never enable it — construct a fresh
#: Telemetry instead.
NULL_TELEMETRY = Telemetry(enabled=False)

# provenance depends only on repro.vv; health builds on it and on
# Telemetry/NULL_TELEMETRY defined above, so both import last
from repro.telemetry.provenance import (  # noqa: E402
    MINT_KINDS,
    PROVENANCE_RING_CAPACITY,
    ProvEvent,
    ProvenanceLedger,
    VersionDAG,
    VersionNode,
    compose_system_dag,
)
from repro.telemetry.health import (  # noqa: E402
    FLIGHT_RING_CAPACITY,
    FlightRecorder,
    HealthPlane,
    HostHealth,
    load_dump,
    snapshot_to_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "FLIGHT_RING_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "HealthPlane",
    "Histogram",
    "HostHealth",
    "MINT_KINDS",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "PROVENANCE_RING_CAPACITY",
    "ProvEvent",
    "ProvenanceLedger",
    "Span",
    "VersionDAG",
    "VersionNode",
    "compose_system_dag",
    "Telemetry",
    "TelemetryEvent",
    "TraceContext",
    "Tracer",
    "load_dump",
    "snapshot_to_jsonl",
]
