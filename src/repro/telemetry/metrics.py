"""A central metrics registry: counters, gauges, fixed-bucket histograms.

Before this module every component kept a private stats dataclass
(``NetworkStats``, ``PropagationStats``, ``OpProfile``...) and exporting a
measurement meant hand-copying fields.  The registry gives them one naming
scheme and one snapshot, which is what ``benchmarks/report_all.py``
serializes into ``BENCH_telemetry.json``.

A registry constructed with ``enabled=False`` hands out shared no-op
instruments and never stores an entry, so a disabled system provably
allocates nothing (tests assert ``len(registry) == 0``).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import InvalidArgument

#: Default histogram buckets: log-spaced latency bounds in seconds, wide
#: enough for both virtual-clock RPC latencies and wall-clock profiles.
DEFAULT_BUCKETS = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down (queue depths, cache sizes)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram: observation counts per upper bound.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the final
    slot counts overflows.  Bounds are fixed at creation, so merging and
    exporting never re-bins.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total")
    kind = "histogram"

    def __init__(self, name: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise InvalidArgument(f"histogram buckets must be ascending, got {buckets!r}")
        self.name = name
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise InvalidArgument(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            if running >= rank:
                return bound
        return self.buckets[-1]

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Get-or-create home for every instrument in one deployment."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, expected_kind: str):
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != expected_kind:
                raise InvalidArgument(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {expected_kind}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(name, lambda: Histogram(name, buckets), "histogram")

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Every instrument, serialized — the export format."""
        return {name: inst.to_dict() for name, inst in sorted(self._instruments.items())}

    def reset(self) -> None:
        self._instruments.clear()
