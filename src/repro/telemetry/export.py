"""Exporters: JSON-lines, Chrome trace format, and a text summary.

The Chrome trace output loads directly into ``chrome://tracing`` or
Perfetto: each host becomes a process row, each trace tree a thread row,
and each span a complete ("X") event, so a cross-host
``open -> write -> notify -> pull`` renders as one aligned timeline.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.trace import Span

#: Virtual-clock seconds -> Chrome trace microseconds.
_US = 1_000_000.0


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in finish order."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in spans)


def events_to_jsonl(events: Iterable[TelemetryEvent]) -> str:
    return "\n".join(json.dumps(event.to_dict(), sort_keys=True, default=str) for event in events)


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, object]:
    """Chrome trace format (JSON object flavour with ``traceEvents``).

    pid = host (one process row per host), tid = trace id (one thread row
    per trace tree), ts/dur in microseconds.
    """
    spans = list(spans)
    pids: dict[str, int] = {}
    trace_events: list[dict[str, object]] = []
    for span in spans:
        host = span.host or "-"
        if host not in pids:
            pids[host] = len(pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[host],
                    "tid": 0,
                    "args": {"name": host},
                }
            )
    for span in spans:
        args: dict[str, object] = {
            "span_id": f"{span.span_id:x}",
            "parent_id": None if span.parent_id is None else f"{span.parent_id:x}",
            "status": span.status,
        }
        for key, value in span.tags.items():
            args[str(key)] = value if isinstance(value, (int, float, bool)) else str(value)
        trace_events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.layer or "span",
                "pid": pids[span.host or "-"],
                "tid": span.trace_id,
                "ts": span.start * _US,
                "dur": max(span.duration * _US, 0.0),
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    return json.dumps(to_chrome_trace(spans), sort_keys=True)


def write_chrome_trace(path: str, spans: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(chrome_trace_json(spans))


def summary(telemetry) -> str:
    """Human-readable digest of one Telemetry hub (spans/metrics/events)."""
    tracer = telemetry.tracer
    spans = list(tracer.finished)
    lines = ["== telemetry summary =="]
    lines.append(
        f"spans: {len(spans)} finished across {len(tracer.trace_ids())} traces"
        + (f" ({tracer.dropped} dropped)" if tracer.dropped else "")
    )
    by_layer_host: dict[tuple[str, str], int] = {}
    for span in spans:
        key = (span.layer or "-", span.host or "-")
        by_layer_host[key] = by_layer_host.get(key, 0) + 1
    for (layer, host), count in sorted(by_layer_host.items()):
        lines.append(f"  {layer:<14} @ {host:<12} {count:>6} spans")
    if len(telemetry.metrics):
        lines.append(f"metrics: {len(telemetry.metrics)} instruments")
        for name, data in telemetry.metrics.snapshot().items():
            if data["kind"] == "histogram":
                lines.append(
                    f"  {name:<40} n={data['count']:>7} mean={data['mean']:.6g}"
                )
            else:
                lines.append(f"  {name:<40} {data['value']}")
    if telemetry.events.counts:
        lines.append("events:")
        for kind in sorted(telemetry.events.counts):
            lines.append(f"  {kind:<40} {telemetry.events.counts[kind]:>7}")
    return "\n".join(lines)
