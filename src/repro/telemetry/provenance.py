"""The provenance plane: per-host version ledgers and the cross-replica DAG.

The flight recorder answers "what did this host just do"; this module
answers the paper's harder operational question — *which replica's update
produced this version, and what conflicted with it?*  Every event that
mints or installs a file version (a write bumping the version vector, a
resolver merge, a manual resolution, a propagation pull) appends one
bounded-ring entry to the host's :class:`ProvenanceLedger`.  The ledgers
of several hosts compose on demand into a :class:`VersionDAG`:

* **nodes** are minted versions, keyed by ``(fh, version vector)`` —
  the version vector *is* the identity of a version, so two hosts that
  committed the same resolver merge contribute the same node;
* **edges** are causal parents — the vv the write replaced, the two
  inputs of a merge, the local vv a pull superseded (with the sync
  origin host annotated on the pull event).

Invariants the test suite holds the plane to:

* every live ``(fh, vv)`` pair in a store has a ledger node (while the
  minting event is within ring retention);
* merge/resolve nodes have >= 2 distinct parents;
* the DAG is a pure function of the event *set* — composing the same
  ledgers in any order yields the same graph.

Directory version vectors are deliberately excluded: directories converge
by entry-set algebra (insert/delete replay), not by version lineage, so
their vvs carry no per-version provenance.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.vv import VersionVector

#: ring capacity of the per-host provenance ledger
PROVENANCE_RING_CAPACITY = 1024

#: event kinds that mint a version (as opposed to installing an existing one)
MINT_KINDS = frozenset({"create", "write", "merge", "resolve"})


@dataclass(frozen=True)
class ProvEvent:
    """One provenance ledger entry: a version minted or installed."""

    at: float
    host: str
    #: "create" | "write" | "merge" | "resolve" | "pull"
    kind: str
    #: logical file handle, hex
    fh: str
    #: encoded version vector AFTER the event ("" = the genesis version)
    vv: str
    #: encoded parent version vectors (prior vv; merge inputs)
    parents: tuple[str, ...] = ()
    #: sync origin host for pulls ("" otherwise)
    origin: str = ""
    #: free-form annotation: op name, resolver tag, ...
    detail: str = ""
    #: "trace_id:span_id" of the originating operation, when traced
    trace: str = ""

    def to_dict(self) -> dict:
        out = {
            "at": self.at,
            "host": self.host,
            "kind": self.kind,
            "fh": self.fh,
            "vv": self.vv,
            "parents": list(self.parents),
        }
        if self.origin:
            out["origin"] = self.origin
        if self.detail:
            out["detail"] = self.detail
        if self.trace:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, rec: dict) -> "ProvEvent":
        return cls(
            at=float(rec.get("at", 0.0)),
            host=rec.get("host", ""),
            kind=rec.get("kind", ""),
            fh=rec.get("fh", ""),
            vv=rec.get("vv", ""),
            parents=tuple(rec.get("parents", ())),
            origin=rec.get("origin", ""),
            detail=rec.get("detail", ""),
            trace=rec.get("trace", ""),
        )


class ProvenanceLedger:
    """Always-on bounded ring of version events for one host.

    ``record`` runs on the version-vector hot path (every write bump), so
    an entry is one plain-tuple deque append: the file handle, version
    vector, and parents may arrive as the raw **immutable** objects and
    are hex/string-encoded lazily when a query materializes
    :class:`ProvEvent`\\ s.  ``enabled`` exists for the overhead
    benchmark's A/B — production never turns it off.
    """

    def __init__(
        self,
        host: str,
        capacity: int = PROVENANCE_RING_CAPACITY,
        clock: Callable[[], float] | None = None,
    ):
        self.host = host
        self.capacity = capacity
        self._clock = clock
        self.enabled = True
        #: raw (at, kind, fh, vv, parents, origin, detail, trace) tuples;
        #: fh/vv/parents are encoded strings OR the immutable originals
        self.ring: deque[tuple] = deque(maxlen=capacity)
        #: events evicted from the ring since boot (coverage accounting)
        self.evicted = 0

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def record(
        self,
        kind: str,
        fh,
        vv,
        parents: tuple = (),
        origin: str = "",
        detail: str = "",
        trace: str = "",
    ) -> None:
        """Ledger one version event.

        ``fh`` is a hex string or an id object with ``to_hex``; ``vv``
        and each parent are encoded strings or ``VersionVector``\\ s.
        Raw objects are preferred on hot paths — they defer the string
        work to query time.
        """
        if not self.enabled:
            return
        if len(self.ring) == self.capacity:
            self.evicted += 1
        self.ring.append((self.now(), kind, fh, vv, parents, origin, detail, trace))

    @staticmethod
    def _hex(fh) -> str:
        return fh if isinstance(fh, str) else fh.to_hex()

    @staticmethod
    def _enc(vv) -> str:
        return vv if isinstance(vv, str) else vv.encode()

    def _materialize(self, raw: tuple) -> ProvEvent:
        at, kind, fh, vv, parents, origin, detail, trace = raw
        return ProvEvent(
            at=at,
            host=self.host,
            kind=kind,
            fh=self._hex(fh),
            vv=self._enc(vv),
            parents=tuple(self._enc(p) for p in parents),
            origin=origin,
            detail=detail,
            trace=trace,
        )

    def events(self, fh: str | None = None) -> list[ProvEvent]:
        out = [self._materialize(raw) for raw in self.ring]
        if fh is not None:
            out = [event for event in out if event.fh == fh]
        return out

    def snapshot(self) -> list[dict]:
        """The ring as plain dicts (for flight dumps and fingerprints)."""
        return [event.to_dict() for event in self.events()]


@dataclass
class VersionNode:
    """One minted version in the composed DAG."""

    fh: str
    vv: str
    #: encoded parent vvs (union over all events naming this version)
    parents: set[str] = field(default_factory=set)
    #: hosts that minted or installed this version
    hosts: set[str] = field(default_factory=set)
    #: every ledger event that named this version
    events: list[ProvEvent] = field(default_factory=list)

    @property
    def kinds(self) -> set[str]:
        return {event.kind for event in self.events}

    @property
    def is_merge(self) -> bool:
        return bool(self.kinds & {"merge", "resolve"})

    def minted_by(self) -> list[tuple[str, float, str]]:
        """(host, at, kind) for events that *minted* this version."""
        return [
            (event.host, event.at, event.kind)
            for event in self.events
            if event.kind in MINT_KINDS
        ]

    def to_dict(self) -> dict:
        return {
            "fh": self.fh,
            "vv": self.vv,
            "parents": sorted(self.parents),
            "hosts": sorted(self.hosts),
            "kinds": sorted(self.kinds),
            "events": [event.to_dict() for event in self.events],
        }


def _vv_glb(a: VersionVector, b: VersionVector) -> VersionVector:
    """Pointwise minimum — the greatest lower bound of two histories."""
    return VersionVector({rid: min(a[rid], b[rid]) for rid in a if rid in b})


class VersionDAG:
    """The cross-replica version DAG composed from per-host ledgers.

    Purely derived state: feed it any iterable of events (live ledgers,
    flight-dump ``prov`` records, a mix of both) and query.  Composition
    is order-independent — nodes are keyed by ``(fh, vv)`` and events
    accumulate into them.
    """

    def __init__(self):
        self.nodes: dict[tuple[str, str], VersionNode] = {}

    # -- composition -------------------------------------------------------

    def add_event(self, event: ProvEvent) -> None:
        node = self.nodes.get((event.fh, event.vv))
        if node is None:
            node = VersionNode(fh=event.fh, vv=event.vv)
            self.nodes[(event.fh, event.vv)] = node
        node.parents.update(p for p in event.parents if p != event.vv)
        node.hosts.add(event.host)
        node.events.append(event)
        # parents are versions too, even if their minting event was never
        # seen (evicted ring, foreign host not dumped): materialize stubs
        # so lineage walks terminate at a real node
        for parent in event.parents:
            if parent != event.vv and (event.fh, parent) not in self.nodes:
                self.nodes[(event.fh, parent)] = VersionNode(fh=event.fh, vv=parent)

    def add_events(self, events: Iterable[ProvEvent]) -> "VersionDAG":
        for event in events:
            self.add_event(event)
        return self

    @classmethod
    def compose(cls, ledgers: Iterable[ProvenanceLedger]) -> "VersionDAG":
        dag = cls()
        for ledger in ledgers:
            dag.add_events(ledger.events())
        return dag

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "VersionDAG":
        """Build from plain dicts (flight-dump ``prov`` lines)."""
        return cls().add_events(ProvEvent.from_dict(rec) for rec in records)

    # -- basic queries -----------------------------------------------------

    def file_handles(self) -> list[str]:
        return sorted({fh for fh, _ in self.nodes})

    def nodes_for(self, fh: str) -> list[VersionNode]:
        """All versions of one file, oldest history first.

        The sort key (total update count, encoded vv) is a linear
        extension of the vv partial order, so parents always precede
        children.
        """
        nodes = [node for (node_fh, _), node in self.nodes.items() if node_fh == fh]
        return sorted(
            nodes, key=lambda n: (VersionVector.decode(n.vv).total_updates, n.vv)
        )

    def node(self, fh: str, vv: str) -> VersionNode | None:
        return self.nodes.get((fh, vv))

    def heads(self, fh: str) -> list[VersionNode]:
        """Versions of ``fh`` that no other version descends from."""
        parents: set[str] = set()
        nodes = self.nodes_for(fh)
        for node in nodes:
            parents.update(node.parents)
        return [node for node in nodes if node.vv not in parents]

    # -- the three operator queries ---------------------------------------

    def lineage(self, fh: str) -> list[VersionNode]:
        """The full version history of one file, oldest first."""
        return self.nodes_for(fh)

    def who_wrote(self, fh: str, vv: str) -> list[tuple[str, float, str]]:
        """(host, at, kind) of the events that minted version ``vv``."""
        node = self.nodes.get((fh, vv))
        return node.minted_by() if node is not None else []

    def feeds_of_conflict(self, fh: str) -> dict[str, list[ProvEvent]]:
        """The exact cross-host write set feeding each conflict branch.

        The branches are the concurrent heads of ``fh`` — or, when the
        conflict was already auto-resolved (a single merge head), the
        merge node's parents.  For each branch B the feed set is every
        minting event ``e`` with ``e.vv <= B`` and *not* ``e.vv <= glb``
        (the branches' greatest lower bound): the writes that distinguish
        the branch from the last common ancestor.  Returns
        ``{branch vv: [events]}``; empty when the file has no conflict.
        """
        heads = self.heads(fh)
        branches: list[str] = []
        if len(heads) >= 2:
            branches = [head.vv for head in heads]
        elif len(heads) == 1 and heads[0].is_merge and len(heads[0].parents) >= 2:
            branches = sorted(heads[0].parents)
        if len(branches) < 2:
            return {}
        decoded = [VersionVector.decode(b) for b in branches]
        glb = decoded[0]
        for other in decoded[1:]:
            glb = _vv_glb(glb, other)
        feeds: dict[str, list[ProvEvent]] = {}
        mint_events = [
            event
            for node in self.nodes_for(fh)
            for event in node.events
            if event.kind in MINT_KINDS
        ]
        for branch, branch_vv in zip(branches, decoded):
            feeds[branch] = [
                event
                for event in mint_events
                if branch_vv.dominates(VersionVector.decode(event.vv))
                and not glb.dominates(VersionVector.decode(event.vv))
            ]
        return feeds

    # -- export ------------------------------------------------------------

    def to_jsonl(self, fh: str | None = None) -> list[str]:
        """One JSON object per node, lineage order."""
        handles = [fh] if fh is not None else self.file_handles()
        return [
            json.dumps(node.to_dict())
            for handle in handles
            for node in self.nodes_for(handle)
        ]

    def to_dot(self, fh: str | None = None) -> str:
        """Graphviz rendering: boxes are versions, edges point at parents."""
        handles = [fh] if fh is not None else self.file_handles()
        lines = ["digraph provenance {", "  rankdir=BT;", '  node [shape=box, fontsize=10];']
        for handle in handles:
            for node in self.nodes_for(handle):
                name = f'"{node.fh}@{node.vv or "genesis"}"'
                kinds = ",".join(sorted(node.kinds)) or "?"
                hosts = ",".join(sorted(node.hosts)) or "?"
                shape = ', style=filled, fillcolor="khaki"' if node.is_merge else ""
                lines.append(
                    f'  {name} [label="{node.vv or "genesis"}\\n{kinds} @ {hosts}"{shape}];'
                )
                for parent in sorted(node.parents):
                    lines.append(f'  {name} -> "{node.fh}@{parent or "genesis"}";')
        lines.append("}")
        return "\n".join(lines)


def compose_system_dag(system) -> VersionDAG:
    """The cluster-wide DAG of a live :class:`~repro.sim.FicusSystem`."""
    ledgers = []
    for name in sorted(system.hosts):
        plane = system.host(name).health_plane
        if plane is not None:
            ledgers.append(plane.provenance)
    return VersionDAG.compose(ledgers)
