"""Bounded structured event log: the semantically interesting moments.

Spans measure *how long*; events record *what happened*: an update
notification sent or lost, a pull outcome, a conflict detected, a graft
bound or pruned, a partition or heal.  These are exactly the occurrences
the paper's prose narrates (Sections 2.5, 3.2, 4.4) and that experiments
otherwise reconstruct from scattered stats fields.

The log is a ring: at ``capacity`` the oldest record is evicted and
counted, so per-kind totals stay exact even after eviction.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass
class TelemetryEvent:
    """One structured occurrence."""

    ts: float
    kind: str
    host: str
    fields: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"ts": self.ts, "kind": self.kind, "host": self.host}
        if self.fields:
            out.update(self.fields)
        return out


class EventLog:
    """Bounded, deterministic event recorder."""

    def __init__(
        self,
        capacity: int = 1024,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.capacity = capacity
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._records: deque[TelemetryEvent] = deque(maxlen=capacity)
        #: exact per-kind emission totals, unaffected by eviction
        self.counts: dict[str, int] = {}
        self.evicted = 0

    def emit(self, kind: str, host: str = "", **fields: object) -> None:
        if not self.enabled:
            return
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self._records) == self.capacity:
            self.evicted += 1
        self._records.append(TelemetryEvent(self._clock(), kind, host, fields))

    def records(self, kind: str | None = None) -> list[TelemetryEvent]:
        if kind is None:
            return list(self._records)
        return [e for e in self._records if e.kind == kind]

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> str:
        """Per-kind counts, eviction-aware, as a small text table."""
        lines = [f"{'event kind':<28} | {'count':>7}"]
        for kind in sorted(self.counts):
            lines.append(f"{kind:<28} | {self.counts[kind]:>7}")
        if self.evicted:
            lines.append(f"({self.evicted} old records evicted; counts are exact)")
        return "\n".join(lines)

    def clear(self) -> None:
        self._records.clear()
        self.counts.clear()
        self.evicted = 0
