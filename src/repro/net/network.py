"""Simulated internetwork: hosts, partitions, RPC, multicast datagrams.

A large-scale system "will never be fully operational at any given time"
(paper Section 1) — partial operation is the normal state.  This module
models exactly the communication properties Ficus depends on:

* **Partitions** — the host set can be split into disjoint groups; hosts in
  different groups (or downed hosts) cannot exchange messages.
* **Synchronous RPC** — what NFS runs over; raises
  :class:`~repro.errors.HostUnreachable` when the peer cannot be contacted.
* **Asynchronous multicast datagrams** — best-effort, unacknowledged; used
  by the logical layer for update notification ("an asynchronous multicast
  datagram is sent to all available replicas", Section 2.5).  Recipients
  that are unreachable simply miss the datagram; reconciliation exists
  precisely because notification is lossy.

All delivery is deterministic so experiments replay exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import HostUnreachable, InvalidArgument
from repro.util import VirtualClock

RpcHandler = Callable[..., object]
DatagramHandler = Callable[[str, object], None]


@dataclass
class NetworkStats:
    """Traffic accounting for benchmarks."""

    rpcs_sent: int = 0
    rpcs_failed: int = 0
    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_lost: int = 0

    def snapshot(self) -> "NetworkStats":
        return NetworkStats(
            self.rpcs_sent,
            self.rpcs_failed,
            self.datagrams_sent,
            self.datagrams_delivered,
            self.datagrams_lost,
        )


@dataclass
class _HostState:
    up: bool = True
    rpc_services: dict[str, RpcHandler] = field(default_factory=dict)
    datagram_handlers: list[DatagramHandler] = field(default_factory=list)


class Network:
    """The simulated internetwork connecting Ficus hosts."""

    def __init__(self, clock: VirtualClock | None = None, rpc_latency: float = 0.001):
        self.clock = clock or VirtualClock()
        self.rpc_latency = rpc_latency
        self.stats = NetworkStats()
        self._hosts: dict[str, _HostState] = {}
        #: Current partition: list of disjoint host groups.  Empty list
        #: means fully connected.
        self._groups: list[frozenset[str]] = []

    # -- host management --------------------------------------------------

    def add_host(self, addr: str) -> None:
        if addr in self._hosts:
            raise InvalidArgument(f"host {addr!r} already exists")
        self._hosts[addr] = _HostState()

    def has_host(self, addr: str) -> bool:
        return addr in self._hosts

    @property
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def _host(self, addr: str) -> _HostState:
        try:
            return self._hosts[addr]
        except KeyError:
            raise InvalidArgument(f"unknown host {addr!r}") from None

    def set_host_up(self, addr: str, up: bool) -> None:
        """Crash (``up=False``) or restart a host."""
        self._host(addr).up = up

    def host_is_up(self, addr: str) -> bool:
        return self._host(addr).up

    # -- partitions ----------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network into disjoint groups of hosts.

        Hosts not named in any group are isolated (a singleton group each).
        """
        seen: set[str] = set()
        frozen: list[frozenset[str]] = []
        for group in groups:
            fz = frozenset(group)
            for host in fz:
                self._host(host)  # validate
                if host in seen:
                    raise InvalidArgument(f"host {host!r} in two partition groups")
                seen.add(host)
            frozen.append(fz)
        self._groups = frozen

    def heal(self) -> None:
        """Remove all partitions: everyone can talk again."""
        self._groups = []

    @property
    def partitioned(self) -> bool:
        return bool(self._groups)

    def _group_of(self, addr: str) -> frozenset[str]:
        for group in self._groups:
            if addr in group:
                return group
        return frozenset([addr])

    def reachable(self, src: str, dst: str) -> bool:
        """Can ``src`` currently exchange messages with ``dst``?"""
        if not self._host(src).up or not self._host(dst).up:
            return False
        if src == dst:
            return True
        if not self._groups:
            return True
        return dst in self._group_of(src)

    def reachable_set(self, src: str, candidates: Iterable[str]) -> list[str]:
        """The subset of ``candidates`` reachable from ``src``, in order."""
        return [dst for dst in candidates if self.reachable(src, dst)]

    # -- RPC (what NFS runs over) -----------------------------------------------

    def register_rpc(self, addr: str, service: str, handler: RpcHandler) -> None:
        """Export ``service`` at ``addr``; calls dispatch to ``handler``."""
        self._host(addr).rpc_services[service] = handler

    def rpc(self, src: str, dst: str, service: str, *args: object, **kwargs: object) -> object:
        """Synchronous call; raises HostUnreachable across a partition."""
        self.stats.rpcs_sent += 1
        if not self.reachable(src, dst):
            self.stats.rpcs_failed += 1
            raise HostUnreachable(f"{src} -> {dst}: unreachable")
        handler = self._host(dst).rpc_services.get(service)
        if handler is None:
            self.stats.rpcs_failed += 1
            raise HostUnreachable(f"{dst} exports no service {service!r}")
        self.clock.advance(self.rpc_latency)
        return handler(*args, **kwargs)

    # -- multicast datagrams (update notification) ---------------------------------

    def register_datagram_handler(self, addr: str, handler: DatagramHandler) -> None:
        """Subscribe ``addr`` to incoming datagrams."""
        self._host(addr).datagram_handlers.append(handler)

    def multicast(self, src: str, dsts: Iterable[str], payload: object) -> int:
        """Best-effort datagram to each destination; returns deliveries.

        Unreachable destinations miss the datagram silently — exactly the
        failure mode Ficus's periodic reconciliation cleans up after.
        """
        delivered = 0
        for dst in dsts:
            self.stats.datagrams_sent += 1
            if not self.reachable(src, dst):
                self.stats.datagrams_lost += 1
                continue
            for handler in self._host(dst).datagram_handlers:
                handler(src, payload)
            self.stats.datagrams_delivered += 1
            delivered += 1
        return delivered
