"""Simulated internetwork: hosts, partitions, RPC, multicast datagrams.

A large-scale system "will never be fully operational at any given time"
(paper Section 1) — partial operation is the normal state.  This module
models exactly the communication properties Ficus depends on:

* **Partitions** — the host set can be split into disjoint groups; hosts in
  different groups (or downed hosts) cannot exchange messages.
* **Synchronous RPC** — what NFS runs over; raises
  :class:`~repro.errors.HostUnreachable` when the peer cannot be contacted.
* **Asynchronous multicast datagrams** — best-effort, unacknowledged; used
  by the logical layer for update notification ("an asynchronous multicast
  datagram is sent to all available replicas", Section 2.5).  Recipients
  that are unreachable simply miss the datagram; reconciliation exists
  precisely because notification is lossy.

All delivery is deterministic so experiments replay exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import HostUnreachable, InvalidArgument
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry, Telemetry
from repro.util import VirtualClock

RpcHandler = Callable[..., object]
DatagramHandler = Callable[[str, object], None]


@dataclass
class PeerStats:
    """Per (src, dst) RPC accounting: latency and byte volumes."""

    rpcs: int = 0
    failures: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    latency_seconds: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_seconds / self.rpcs if self.rpcs else 0.0


def _payload_bytes(values: Iterable[object]) -> int:
    """Approximate wire volume: the bytes-valued arguments only (handles
    and small scalars are noise next to read/write payloads)."""
    return sum(len(v) for v in values if isinstance(v, (bytes, bytearray)))


@dataclass
class NetworkStats:
    """Traffic accounting for benchmarks.

    The five aggregate counters remain plain ints (cheap, always on);
    per-peer detail lands in :attr:`per_peer`, and when the network is
    built with telemetry the same updates mirror into the central
    :class:`~repro.telemetry.MetricsRegistry` under ``net.*`` names.
    """

    rpcs_sent: int = 0
    rpcs_failed: int = 0
    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_lost: int = 0
    per_peer: dict[tuple[str, str], PeerStats] = field(default_factory=dict, repr=False)
    _registry: MetricsRegistry | None = field(default=None, repr=False)

    def register(self, registry: MetricsRegistry) -> None:
        """Mirror all subsequent updates into ``registry``."""
        self._registry = registry

    def peer(self, src: str, dst: str) -> PeerStats:
        stats = self.per_peer.get((src, dst))
        if stats is None:
            stats = self.per_peer[(src, dst)] = PeerStats()
        return stats

    def record_rpc(
        self,
        src: str,
        dst: str,
        *,
        ok: bool,
        latency: float = 0.0,
        bytes_out: int = 0,
        bytes_in: int = 0,
    ) -> None:
        self.rpcs_sent += 1
        peer = self.peer(src, dst)
        peer.rpcs += 1
        peer.bytes_sent += bytes_out
        peer.bytes_received += bytes_in
        peer.latency_seconds += latency
        if not ok:
            self.rpcs_failed += 1
            peer.failures += 1
        registry = self._registry
        if registry is not None:
            registry.counter("net.rpcs_sent").inc()
            if not ok:
                registry.counter("net.rpcs_failed").inc()
            if bytes_out:
                registry.counter("net.rpc_bytes_sent").inc(bytes_out)
            if bytes_in:
                registry.counter("net.rpc_bytes_received").inc(bytes_in)
            registry.histogram("net.rpc_latency_seconds").observe(latency)

    def record_datagram(self, delivered: bool) -> None:
        self.datagrams_sent += 1
        if delivered:
            self.datagrams_delivered += 1
        else:
            self.datagrams_lost += 1
        registry = self._registry
        if registry is not None:
            registry.counter("net.datagrams_sent").inc()
            registry.counter(
                "net.datagrams_delivered" if delivered else "net.datagrams_lost"
            ).inc()

    def snapshot(self) -> "NetworkStats":
        return NetworkStats(
            self.rpcs_sent,
            self.rpcs_failed,
            self.datagrams_sent,
            self.datagrams_delivered,
            self.datagrams_lost,
        )


@dataclass
class _HostState:
    up: bool = True
    rpc_services: dict[str, RpcHandler] = field(default_factory=dict)
    datagram_handlers: list[DatagramHandler] = field(default_factory=list)


class Network:
    """The simulated internetwork connecting Ficus hosts."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        rpc_latency: float = 0.001,
        telemetry: Telemetry | None = None,
    ):
        self.clock = clock or VirtualClock()
        self.rpc_latency = rpc_latency
        self.telemetry = telemetry or NULL_TELEMETRY
        self.stats = NetworkStats()
        if self.telemetry.enabled:
            self.stats.register(self.telemetry.metrics)
        self._hosts: dict[str, _HostState] = {}
        #: Current partition: list of disjoint host groups.  Empty list
        #: means fully connected.
        self._groups: list[frozenset[str]] = []

    # -- host management --------------------------------------------------

    def add_host(self, addr: str) -> None:
        if addr in self._hosts:
            raise InvalidArgument(f"host {addr!r} already exists")
        self._hosts[addr] = _HostState()

    def has_host(self, addr: str) -> bool:
        return addr in self._hosts

    @property
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def _host(self, addr: str) -> _HostState:
        try:
            return self._hosts[addr]
        except KeyError:
            raise InvalidArgument(f"unknown host {addr!r}") from None

    def set_host_up(self, addr: str, up: bool) -> None:
        """Crash (``up=False``) or restart a host."""
        self._host(addr).up = up

    def host_is_up(self, addr: str) -> bool:
        return self._host(addr).up

    # -- partitions ----------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network into disjoint groups of hosts.

        Hosts not named in any group are isolated (a singleton group each).
        """
        seen: set[str] = set()
        frozen: list[frozenset[str]] = []
        for group in groups:
            fz = frozenset(group)
            for host in fz:
                self._host(host)  # validate
                if host in seen:
                    raise InvalidArgument(f"host {host!r} in two partition groups")
                seen.add(host)
            frozen.append(fz)
        self._groups = frozen
        self.telemetry.events.emit(
            "net.partition", groups=[sorted(g) for g in frozen]
        )

    def heal(self) -> None:
        """Remove all partitions: everyone can talk again."""
        if self._groups:
            self.telemetry.events.emit("net.heal")
        self._groups = []

    @property
    def partitioned(self) -> bool:
        return bool(self._groups)

    def _group_of(self, addr: str) -> frozenset[str]:
        for group in self._groups:
            if addr in group:
                return group
        return frozenset([addr])

    def reachable(self, src: str, dst: str) -> bool:
        """Can ``src`` currently exchange messages with ``dst``?"""
        if not self._host(src).up or not self._host(dst).up:
            return False
        if src == dst:
            return True
        if not self._groups:
            return True
        return dst in self._group_of(src)

    def reachable_set(self, src: str, candidates: Iterable[str]) -> list[str]:
        """The subset of ``candidates`` reachable from ``src``, in order."""
        return [dst for dst in candidates if self.reachable(src, dst)]

    # -- RPC (what NFS runs over) -----------------------------------------------

    def register_rpc(self, addr: str, service: str, handler: RpcHandler) -> None:
        """Export ``service`` at ``addr``; calls dispatch to ``handler``."""
        self._host(addr).rpc_services[service] = handler

    def rpc(self, src: str, dst: str, service: str, *args: object, **kwargs: object) -> object:
        """Synchronous call; raises HostUnreachable across a partition."""
        bytes_out = _payload_bytes(args)
        if not self.reachable(src, dst):
            self.stats.record_rpc(src, dst, ok=False, bytes_out=bytes_out)
            raise HostUnreachable(f"{src} -> {dst}: unreachable")
        handler = self._host(dst).rpc_services.get(service)
        if handler is None:
            self.stats.record_rpc(src, dst, ok=False, bytes_out=bytes_out)
            raise HostUnreachable(f"{dst} exports no service {service!r}")
        self.clock.advance(self.rpc_latency)
        # application errors surfacing through the handler are still a
        # delivered RPC at the transport level — count them as sent
        try:
            result = handler(*args, **kwargs)
        except Exception:
            self.stats.record_rpc(
                src, dst, ok=True, latency=self.rpc_latency, bytes_out=bytes_out
            )
            raise
        self.stats.record_rpc(
            src,
            dst,
            ok=True,
            latency=self.rpc_latency,
            bytes_out=bytes_out,
            bytes_in=len(result) if isinstance(result, (bytes, bytearray)) else 0,
        )
        return result

    # -- multicast datagrams (update notification) ---------------------------------

    def register_datagram_handler(self, addr: str, handler: DatagramHandler) -> None:
        """Subscribe ``addr`` to incoming datagrams."""
        self._host(addr).datagram_handlers.append(handler)

    def multicast(self, src: str, dsts: Iterable[str], payload: object) -> int:
        """Best-effort datagram to each destination; returns deliveries.

        Unreachable destinations miss the datagram silently — exactly the
        failure mode Ficus's periodic reconciliation cleans up after.
        """
        delivered = 0
        for dst in dsts:
            if not self.reachable(src, dst):
                self.stats.record_datagram(delivered=False)
                self.telemetry.events.emit("notification.lost", host=src, dst=dst)
                continue
            for handler in self._host(dst).datagram_handlers:
                handler(src, payload)
            self.stats.record_datagram(delivered=True)
            delivered += 1
        return delivered
