"""Simulated internetwork: hosts, partitions, RPC, multicast datagrams.

A large-scale system "will never be fully operational at any given time"
(paper Section 1) — partial operation is the normal state.  This module
models exactly the communication properties Ficus depends on:

* **Partitions** — the host set can be split into disjoint groups; hosts in
  different groups (or downed hosts) cannot exchange messages.
* **Synchronous RPC** — what NFS runs over; raises
  :class:`~repro.errors.HostUnreachable` when the peer cannot be contacted.
* **Asynchronous multicast datagrams** — best-effort, unacknowledged; used
  by the logical layer for update notification ("an asynchronous multicast
  datagram is sent to all available replicas", Section 2.5).  Recipients
  that are unreachable simply miss the datagram; reconciliation exists
  precisely because notification is lossy.

All delivery is deterministic so experiments replay exactly — including
injected faults: the :class:`FaultPlane` draws every fault decision from a
seeded PRNG in call order, so a run with the same seed and the same
workload injects byte-identical fault schedules.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import HostUnreachable, InvalidArgument, RpcTimeout, ServiceUnavailable
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry, Telemetry
from repro.util import VirtualClock

RpcHandler = Callable[..., object]
DatagramHandler = Callable[[str, object], None]


@dataclass
class PeerStats:
    """Per (src, dst) RPC accounting: latency and byte volumes."""

    rpcs: int = 0
    failures: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    latency_seconds: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_seconds / self.rpcs if self.rpcs else 0.0


def _payload_bytes(values: Iterable[object]) -> int:
    """Approximate wire volume: the bytes-valued arguments only (handles
    and small scalars are noise next to read/write payloads)."""
    return sum(len(v) for v in values if isinstance(v, (bytes, bytearray)))


@dataclass
class NetworkStats:
    """Traffic accounting for benchmarks.

    The five aggregate counters remain plain ints (cheap, always on);
    per-peer detail lands in :attr:`per_peer`, and when the network is
    built with telemetry the same updates mirror into the central
    :class:`~repro.telemetry.MetricsRegistry` under ``net.*`` names.
    """

    rpcs_sent: int = 0
    rpcs_failed: int = 0
    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_lost: int = 0
    per_peer: dict[tuple[str, str], PeerStats] = field(default_factory=dict, repr=False)
    _registry: MetricsRegistry | None = field(default=None, repr=False)

    def register(self, registry: MetricsRegistry) -> None:
        """Mirror all subsequent updates into ``registry``."""
        self._registry = registry

    def peer(self, src: str, dst: str) -> PeerStats:
        stats = self.per_peer.get((src, dst))
        if stats is None:
            stats = self.per_peer[(src, dst)] = PeerStats()
        return stats

    def record_rpc(
        self,
        src: str,
        dst: str,
        *,
        ok: bool,
        latency: float = 0.0,
        bytes_out: int = 0,
        bytes_in: int = 0,
    ) -> None:
        self.rpcs_sent += 1
        peer = self.peer(src, dst)
        peer.rpcs += 1
        peer.bytes_sent += bytes_out
        peer.bytes_received += bytes_in
        peer.latency_seconds += latency
        if not ok:
            self.rpcs_failed += 1
            peer.failures += 1
        registry = self._registry
        if registry is not None:
            registry.counter("net.rpcs_sent").inc()
            if not ok:
                registry.counter("net.rpcs_failed").inc()
            if bytes_out:
                registry.counter("net.rpc_bytes_sent").inc(bytes_out)
            if bytes_in:
                registry.counter("net.rpc_bytes_received").inc(bytes_in)
            registry.histogram("net.rpc_latency_seconds").observe(latency)

    def record_datagram(self, delivered: bool) -> None:
        self.datagrams_sent += 1
        if delivered:
            self.datagrams_delivered += 1
        else:
            self.datagrams_lost += 1
        registry = self._registry
        if registry is not None:
            registry.counter("net.datagrams_sent").inc()
            registry.counter(
                "net.datagrams_delivered" if delivered else "net.datagrams_lost"
            ).inc()

    def rpcs_by_host(self) -> dict[str, int]:
        """Total RPCs issued per source host, folded from the per-peer
        detail — the per-host load signal the scale-out benchmarks gate."""
        out: dict[str, int] = {}
        for (src, _dst), peer in self.per_peer.items():
            out[src] = out.get(src, 0) + peer.rpcs
        return out

    def bytes_by_host(self) -> dict[str, int]:
        """Total RPC payload bytes moved per source host (both directions)."""
        out: dict[str, int] = {}
        for (src, _dst), peer in self.per_peer.items():
            out[src] = out.get(src, 0) + peer.bytes_sent + peer.bytes_received
        return out

    def snapshot(self) -> "NetworkStats":
        return NetworkStats(
            self.rpcs_sent,
            self.rpcs_failed,
            self.datagrams_sent,
            self.datagrams_delivered,
            self.datagrams_lost,
        )


@dataclass(frozen=True)
class LinkFaults:
    """Per-link fault probabilities, each in ``[0, 1]``.

    Datagram faults model a lossy unacknowledged transport; the RPC faults
    model the two transient failures a synchronous caller cannot tell
    apart: the request never arrived (``rpc_timeout``) and the server
    executed but the reply was lost (``reply_lost``).  The distinction is
    what makes blind retry of non-idempotent operations unsafe.
    """

    #: datagram silently lost
    drop: float = 0.0
    #: datagram delivered twice
    duplicate: float = 0.0
    #: datagram delayed behind the next one on the same link
    reorder: float = 0.0
    #: RPC fails before the server sees the request
    rpc_timeout: float = 0.0
    #: server executes the request, the reply never returns
    reply_lost: float = 0.0
    #: a block payload in a ``read_blocks`` reply is flipped in flight
    #: (checksum-detected by the delta pull's digest verification)
    corrupt_block: float = 0.0

    @property
    def any_datagram(self) -> bool:
        return bool(self.drop or self.duplicate or self.reorder)

    @property
    def any_rpc(self) -> bool:
        return bool(self.rpc_timeout or self.reply_lost)


#: verdicts :meth:`FaultPlane.rpc_verdict` can hand back
RPC_OK = "ok"
RPC_TIMEOUT = "timeout"
RPC_REPLY_LOST = "reply_lost"

#: verdicts :meth:`FaultPlane.datagram_verdict` can hand back
DG_DELIVER = "deliver"
DG_DROP = "drop"
DG_DUPLICATE = "duplicate"
DG_REORDER = "reorder"


class FaultPlane:
    """Deterministic, seeded fault injection for the simulated network.

    Two driving modes compose:

    * **Probabilistic** — per-link (or default) :class:`LinkFaults`
      probabilities, sampled from one seeded PRNG in call order, so a
      fixed seed plus a fixed workload replays the exact fault schedule.
    * **Scripted** — :meth:`schedule_rpc` queues explicit per-call
      verdicts for one link (e.g. ``["timeout", "ok", "reply_lost"]``),
      consumed before any probability draw.  This is how tests pin a
      single fault at an exact protocol step.

    The plane is attached to every :class:`Network` but starts inert:
    with no faults configured, ``rpc``/``multicast`` behave (and count)
    exactly as they would without it.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._default = LinkFaults()
        self._links: dict[tuple[str, str], LinkFaults] = {}
        self._rpc_scripts: dict[tuple[str, str], deque[str]] = {}
        self._block_scripts: dict[tuple[str, str], int] = {}
        self.enabled = True
        #: faults injected so far, by kind
        self.injected: dict[str, int] = {}
        self._registry: MetricsRegistry | None = None

    def register(self, registry: MetricsRegistry) -> None:
        """Mirror injected-fault counts into ``registry`` (``net.faults_*``)."""
        self._registry = registry

    # -- configuration ----------------------------------------------------

    def reseed(self, seed: int) -> None:
        """Restart the PRNG; the next run replays exactly from here."""
        self.seed = seed
        self._rng = random.Random(seed)

    def set_default(self, faults: LinkFaults) -> None:
        """Fault profile for every link without a specific override."""
        self._default = faults

    def set_link(self, src: str, dst: str, faults: LinkFaults, symmetric: bool = True) -> None:
        """Fault profile for one link (both directions when ``symmetric``)."""
        self._links[(src, dst)] = faults
        if symmetric:
            self._links[(dst, src)] = faults

    def schedule_rpc(self, src: str, dst: str, verdicts: Iterable[str]) -> None:
        """Script the next RPCs ``src -> dst``: one verdict consumed per call.

        Verdicts are ``"ok"``, ``"timeout"``, or ``"reply_lost"``; when the
        script runs dry the link falls back to its probabilities.
        """
        queue = self._rpc_scripts.setdefault((src, dst), deque())
        for verdict in verdicts:
            if verdict not in (RPC_OK, RPC_TIMEOUT, RPC_REPLY_LOST):
                raise InvalidArgument(f"unknown RPC fault verdict {verdict!r}")
            queue.append(verdict)

    def schedule_block_corruption(self, src: str, dst: str, blocks: int = 1) -> None:
        """Corrupt the next ``blocks`` block payloads pulled ``src -> dst``.

        ``src``/``dst`` follow the RPC direction (the puller is ``src``),
        matching :meth:`schedule_rpc`.  Corruption flips one byte of the
        payload, so the delta pull's digest verification must catch it.
        """
        self._block_scripts[(src, dst)] = self._block_scripts.get((src, dst), 0) + blocks

    def clear(self) -> None:
        """Drop all configured faults and scripts (the PRNG keeps its state)."""
        self._default = LinkFaults()
        self._links.clear()
        self._rpc_scripts.clear()
        self._block_scripts.clear()

    @property
    def active(self) -> bool:
        """Cheap guard for the network's hot paths."""
        return self.enabled and bool(
            self._links
            or self._rpc_scripts
            or self._block_scripts
            or self._default != LinkFaults()
        )

    # -- verdicts ---------------------------------------------------------

    def _faults_for(self, src: str, dst: str) -> LinkFaults:
        return self._links.get((src, dst), self._default)

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        registry = self._registry
        if registry is not None:
            registry.counter("net.faults_injected").inc()
            registry.counter(f"net.faults.{kind}").inc()

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def rpc_verdict(self, src: str, dst: str) -> str:
        """Fate of one RPC on the link: scripted first, then probabilistic."""
        script = self._rpc_scripts.get((src, dst))
        if script:
            verdict = script.popleft()
            if verdict != RPC_OK:
                self._count(f"rpc_{verdict}" if verdict == RPC_TIMEOUT else verdict)
            return verdict
        faults = self._faults_for(src, dst)
        if not faults.any_rpc:
            return RPC_OK
        draw = self._rng.random()
        if draw < faults.rpc_timeout:
            self._count("rpc_timeout")
            return RPC_TIMEOUT
        if draw < faults.rpc_timeout + faults.reply_lost:
            self._count("reply_lost")
            return RPC_REPLY_LOST
        return RPC_OK

    def block_verdict(self, src: str, dst: str) -> bool:
        """Should the next block payload on this link be corrupted?"""
        remaining = self._block_scripts.get((src, dst), 0)
        if remaining > 0:
            if remaining == 1:
                del self._block_scripts[(src, dst)]
            else:
                self._block_scripts[(src, dst)] = remaining - 1
            self._count("block_corrupt")
            return True
        faults = self._faults_for(src, dst)
        if not faults.corrupt_block:
            return False
        if self._rng.random() < faults.corrupt_block:
            self._count("block_corrupt")
            return True
        return False

    def maybe_corrupt_block(self, src: str, dst: str, data: bytes) -> bytes:
        """Flip one byte of ``data`` when the link's verdict says so."""
        if not data or not self.block_verdict(src, dst):
            return data
        return bytes([data[0] ^ 0xFF]) + data[1:]

    def datagram_verdict(self, src: str, dst: str) -> str:
        """Fate of one datagram on the link."""
        faults = self._faults_for(src, dst)
        if not faults.any_datagram:
            return DG_DELIVER
        draw = self._rng.random()
        if draw < faults.drop:
            self._count("drop")
            return DG_DROP
        if draw < faults.drop + faults.duplicate:
            self._count("duplicate")
            return DG_DUPLICATE
        if draw < faults.drop + faults.duplicate + faults.reorder:
            self._count("reorder")
            return DG_REORDER
        return DG_DELIVER


@dataclass
class _HostState:
    up: bool = True
    rpc_services: dict[str, RpcHandler] = field(default_factory=dict)
    datagram_handlers: list[DatagramHandler] = field(default_factory=list)


class Network:
    """The simulated internetwork connecting Ficus hosts."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        rpc_latency: float = 0.001,
        telemetry: Telemetry | None = None,
        fault_plane: FaultPlane | None = None,
    ):
        self.clock = clock or VirtualClock()
        self.rpc_latency = rpc_latency
        self.telemetry = telemetry or NULL_TELEMETRY
        self.stats = NetworkStats()
        self.faults = fault_plane or FaultPlane()
        if self.telemetry.enabled:
            self.stats.register(self.telemetry.metrics)
            self.faults.register(self.telemetry.metrics)
        self._hosts: dict[str, _HostState] = {}
        #: reordered datagrams awaiting delivery, per destination host
        self._deferred_datagrams: dict[str, list[tuple[str, object]]] = {}
        #: Current partition: list of disjoint host groups.  Empty list
        #: means fully connected.
        self._groups: list[frozenset[str]] = []

    # -- host management --------------------------------------------------

    def add_host(self, addr: str) -> None:
        if addr in self._hosts:
            raise InvalidArgument(f"host {addr!r} already exists")
        self._hosts[addr] = _HostState()

    def has_host(self, addr: str) -> bool:
        return addr in self._hosts

    @property
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def _host(self, addr: str) -> _HostState:
        try:
            return self._hosts[addr]
        except KeyError:
            raise InvalidArgument(f"unknown host {addr!r}") from None

    def set_host_up(self, addr: str, up: bool) -> None:
        """Crash (``up=False``) or restart a host."""
        self._host(addr).up = up

    def host_is_up(self, addr: str) -> bool:
        return self._host(addr).up

    # -- partitions ----------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network into disjoint groups of hosts.

        Hosts not named in any group are isolated (a singleton group each).
        """
        seen: set[str] = set()
        frozen: list[frozenset[str]] = []
        for group in groups:
            fz = frozenset(group)
            for host in fz:
                self._host(host)  # validate
                if host in seen:
                    raise InvalidArgument(f"host {host!r} in two partition groups")
                seen.add(host)
            frozen.append(fz)
        self._groups = frozen
        self.telemetry.events.emit(
            "net.partition", groups=[sorted(g) for g in frozen]
        )

    def heal(self) -> None:
        """Remove all partitions: everyone can talk again."""
        if self._groups:
            self.telemetry.events.emit("net.heal")
        self._groups = []

    @property
    def partitioned(self) -> bool:
        return bool(self._groups)

    def _group_of(self, addr: str) -> frozenset[str]:
        for group in self._groups:
            if addr in group:
                return group
        return frozenset([addr])

    def reachable(self, src: str, dst: str) -> bool:
        """Can ``src`` currently exchange messages with ``dst``?"""
        if not self._host(src).up or not self._host(dst).up:
            return False
        if src == dst:
            return True
        if not self._groups:
            return True
        return dst in self._group_of(src)

    def reachable_set(self, src: str, candidates: Iterable[str]) -> list[str]:
        """The subset of ``candidates`` reachable from ``src``, in order."""
        return [dst for dst in candidates if self.reachable(src, dst)]

    # -- RPC (what NFS runs over) -----------------------------------------------

    def register_rpc(self, addr: str, service: str, handler: RpcHandler) -> None:
        """Export ``service`` at ``addr``; calls dispatch to ``handler``."""
        self._host(addr).rpc_services[service] = handler

    def rpc(self, src: str, dst: str, service: str, *args: object, **kwargs: object) -> object:
        """Synchronous call; raises HostUnreachable across a partition,
        ServiceUnavailable when the peer is up but exports no such
        service, and RpcTimeout for injected transient faults."""
        bytes_out = _payload_bytes(args)
        if not self.reachable(src, dst):
            self.stats.record_rpc(src, dst, ok=False, bytes_out=bytes_out)
            raise HostUnreachable(f"{src} -> {dst}: unreachable")
        handler = self._host(dst).rpc_services.get(service)
        if handler is None:
            # up and reachable, nothing exported: a configuration error,
            # not a partition — retrying would never succeed
            self.stats.record_rpc(src, dst, ok=False, bytes_out=bytes_out)
            raise ServiceUnavailable(f"{dst} exports no service {service!r}")
        verdict = self.faults.rpc_verdict(src, dst) if self.faults.active else RPC_OK
        if verdict == RPC_TIMEOUT:
            # the request is lost before the server sees it
            self.clock.advance(self.rpc_latency)
            self.stats.record_rpc(src, dst, ok=False, bytes_out=bytes_out)
            raise RpcTimeout(f"{src} -> {dst}: injected timeout for {service!r}")
        self.clock.advance(self.rpc_latency)
        # application errors surfacing through the handler are still a
        # delivered RPC at the transport level — count them as sent
        try:
            result = handler(*args, **kwargs)
        except Exception:
            self.stats.record_rpc(
                src, dst, ok=True, latency=self.rpc_latency, bytes_out=bytes_out
            )
            raise
        if verdict == RPC_REPLY_LOST:
            # the server executed, the reply vanished: the caller cannot
            # distinguish this from a lost request — exactly why blind
            # retry of non-idempotent operations is unsafe
            self.stats.record_rpc(
                src, dst, ok=False, latency=self.rpc_latency, bytes_out=bytes_out
            )
            raise RpcTimeout(f"{src} -> {dst}: injected reply loss for {service!r}")
        self.stats.record_rpc(
            src,
            dst,
            ok=True,
            latency=self.rpc_latency,
            bytes_out=bytes_out,
            bytes_in=len(result) if isinstance(result, (bytes, bytearray)) else 0,
        )
        return result

    # -- multicast datagrams (update notification) ---------------------------------

    def register_datagram_handler(self, addr: str, handler: DatagramHandler) -> None:
        """Subscribe ``addr`` to incoming datagrams."""
        self._host(addr).datagram_handlers.append(handler)

    def unregister_datagram_handler(self, addr: str, handler: DatagramHandler) -> None:
        """Drop one subscription (a host reboot tears down its old layers).

        Without this, every restart leaks the dead layers' handlers: each
        incoming notification then feeds the new stack AND every pre-crash
        stack, double-counting flight-recorder and ledger entries and
        growing dead new-version caches forever.  Unknown handlers are
        ignored (the registration died with volatile state).
        """
        handlers = self._host(addr).datagram_handlers
        try:
            handlers.remove(handler)
        except ValueError:
            pass

    def multicast(self, src: str, dsts: Iterable[str], payload: object) -> int:
        """Best-effort datagram to each destination; returns deliveries.

        Unreachable destinations miss the datagram silently — exactly the
        failure mode Ficus's periodic reconciliation cleans up after.  The
        fault plane can additionally drop, duplicate, or reorder delivery
        on a per-link basis.  A destination with no registered handlers
        counts as a loss: nothing received the notification.
        """
        delivered = 0
        faults_active = self.faults.active
        for dst in dsts:
            if not self.reachable(src, dst):
                self.stats.record_datagram(delivered=False)
                self.telemetry.events.emit("notification.lost", host=src, dst=dst)
                continue
            verdict = self.faults.datagram_verdict(src, dst) if faults_active else DG_DELIVER
            if verdict == DG_DROP:
                self.stats.record_datagram(delivered=False)
                self.telemetry.events.emit("notification.lost", host=src, dst=dst)
                continue
            if verdict == DG_REORDER:
                # held back until the next datagram to the same host (or an
                # explicit flush): a later datagram overtakes this one
                self._deferred_datagrams.setdefault(dst, []).append((src, payload))
                continue
            copies = 2 if verdict == DG_DUPLICATE else 1
            for _ in range(copies):
                if self._deliver_datagram(src, dst, payload):
                    delivered += 1
            # a reordered datagram surfaces behind the one that overtook it
            delivered += self._flush_deferred_to(dst)
        return delivered

    def _deliver_datagram(self, src: str, dst: str, payload: object) -> bool:
        """Hand one datagram to the destination's handlers; a host with no
        handlers registered counts as a loss, not a delivery."""
        handlers = self._host(dst).datagram_handlers
        if not handlers:
            self.stats.record_datagram(delivered=False)
            self.telemetry.events.emit("notification.lost", host=src, dst=dst)
            return False
        for handler in handlers:
            handler(src, payload)
        self.stats.record_datagram(delivered=True)
        return True

    def _flush_deferred_to(self, dst: str) -> int:
        pending = self._deferred_datagrams.pop(dst, None)
        if not pending:
            return 0
        delivered = 0
        for src, payload in pending:
            if self.reachable(src, dst) and self._deliver_datagram(src, dst, payload):
                delivered += 1
            elif not self.reachable(src, dst):
                self.stats.record_datagram(delivered=False)
        return delivered

    def flush_deferred_datagrams(self) -> int:
        """Deliver every reordered datagram still held back (quiescence)."""
        return sum(self._flush_deferred_to(dst) for dst in list(self._deferred_datagrams))
