"""Simulated network with partitions, RPC, multicast datagrams, and
deterministic seeded fault injection."""

from repro.net.network import FaultPlane, LinkFaults, Network, NetworkStats, PeerStats

__all__ = ["FaultPlane", "LinkFaults", "Network", "NetworkStats", "PeerStats"]
