"""Simulated network with partitions, RPC, and multicast datagrams."""

from repro.net.network import Network, NetworkStats, PeerStats

__all__ = ["Network", "NetworkStats", "PeerStats"]
