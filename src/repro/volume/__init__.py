"""Volumes, graft points, and autografting (paper Section 4)."""

from repro.volume.graft import (
    LOCATION_PREFIX,
    GraftState,
    GraftTable,
    Grafter,
    ReplicaLocation,
    location_entry_name,
    locations_from_entries,
)

__all__ = [
    "GraftState",
    "GraftTable",
    "Grafter",
    "LOCATION_PREFIX",
    "ReplicaLocation",
    "location_entry_name",
    "locations_from_entries",
]
