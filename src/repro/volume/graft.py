"""Volumes, graft points and autografting (paper Section 4).

The Ficus name space is a DAG of volumes.  A *graft point* is a special
replicated directory that says "volume V belongs here" and lists, as
ordinary directory entries, the ⟨volume replica, storage site⟩ pairs where
V's replicas live.  Because those location records are plain directory
entries, "implicit use of the Ficus directory reconciliation mechanism"
keeps them consistent — no special code.

Autografting (Section 4.4): when pathname translation hits a graft point,
the logical layer checks whether a suitable volume replica is already
grafted; if not it uses the graft point's location entries to find and
graft one.  Grafts are dynamic — "a graft that is no longer needed is
quietly pruned at a later time."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllReplicasUnavailable, InvalidArgument
from repro.net import Network
from repro.physical.wire import DirectoryEntry, EntryType
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util import VolumeId, VolumeReplicaId

#: Name prefix of a location entry inside a graft point.
LOCATION_PREFIX = "rep:"


@dataclass(frozen=True)
class ReplicaLocation:
    """One ⟨volume replica, storage site⟩ pair."""

    volrep: VolumeReplicaId
    host: str


def location_entry_name(replica_id: int) -> str:
    return f"{LOCATION_PREFIX}{replica_id}"


def locations_from_entries(
    volume: VolumeId, entries: list[DirectoryEntry]
) -> list[ReplicaLocation]:
    """Extract volume-replica locations from graft-point entries."""
    out = []
    for entry in entries:
        if not entry.live or entry.etype != EntryType.LOCATION:
            continue
        if not entry.name.startswith(LOCATION_PREFIX):
            continue
        try:
            replica_id = int(entry.name[len(LOCATION_PREFIX) :])
        except ValueError:
            continue
        out.append(ReplicaLocation(VolumeReplicaId(volume, replica_id), entry.data))
    return sorted(out, key=lambda loc: loc.volrep.replica_id)


@dataclass
class GraftState:
    """One grafted volume: which replica is bound, and usage for pruning."""

    volume: VolumeId
    bound: ReplicaLocation
    locations: list[ReplicaLocation]
    grafted_at: float
    last_used: float
    uses: int = 0

    def touch(self, now: float) -> None:
        self.last_used = now
        self.uses += 1


class GraftTable:
    """Per-host volume location knowledge.

    Bootstraps the root volume ("Ficus does not require a replicated
    volume location database" — only the root volume's locations need
    seeding; everything else is discovered through graft points).
    """

    def __init__(self) -> None:
        self._locations: dict[VolumeId, list[ReplicaLocation]] = {}

    def learn(self, volume: VolumeId, locations: list[ReplicaLocation]) -> None:
        """Record (or refresh) the replica locations of a volume."""
        if not locations:
            raise InvalidArgument(f"no locations given for {volume}")
        self._locations[volume] = sorted(locations, key=lambda loc: loc.volrep.replica_id)

    def locations(self, volume: VolumeId) -> list[ReplicaLocation]:
        return list(self._locations.get(volume, []))

    def knows(self, volume: VolumeId) -> bool:
        return volume in self._locations

    def volumes(self) -> list[VolumeId]:
        return sorted(self._locations)


class Grafter:
    """The autograft cache of one logical layer."""

    def __init__(
        self,
        network: Network,
        host_addr: str,
        prefer_local: bool = True,
        telemetry: Telemetry | None = None,
    ):
        self.network = network
        self.host_addr = host_addr
        self.prefer_local = prefer_local
        self.telemetry = telemetry or NULL_TELEMETRY
        self._grafts: dict[VolumeId, GraftState] = {}
        self.grafts_performed = 0
        self.grafts_pruned = 0

    def candidate_order(self, locations: list[ReplicaLocation]) -> list[ReplicaLocation]:
        """Deterministic preference order: local replicas first."""
        if not self.prefer_local:
            return list(locations)
        local = [loc for loc in locations if loc.host == self.host_addr]
        remote = [loc for loc in locations if loc.host != self.host_addr]
        return local + remote

    def current(self, volume: VolumeId) -> GraftState | None:
        return self._grafts.get(volume)

    def graft(self, volume: VolumeId, locations: list[ReplicaLocation]) -> GraftState:
        """Bind a reachable replica of ``volume``, reusing a live graft.

        An existing graft is kept while its bound replica stays reachable;
        otherwise the graft is re-bound (the paper's dynamic regrafting).
        """
        now = self.network.clock.now()
        state = self._grafts.get(volume)
        if state is not None:
            state.locations = list(locations) or state.locations
            if self.network.reachable(self.host_addr, state.bound.host):
                state.touch(now)
                return state
        for candidate in self.candidate_order(locations):
            if self.network.reachable(self.host_addr, candidate.host):
                state = GraftState(
                    volume=volume,
                    bound=candidate,
                    locations=list(locations),
                    grafted_at=now,
                    last_used=now,
                )
                state.touch(now)
                self._grafts[volume] = state
                self.grafts_performed += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("graft.performed").inc()
                    self.telemetry.events.emit(
                        "graft.bind",
                        host=self.host_addr,
                        volume=volume.to_hex(),
                        bound=candidate.host,
                    )
                return state
        raise AllReplicasUnavailable(f"no reachable replica of {volume}")

    def ungraft(self, volume: VolumeId) -> None:
        if self._grafts.pop(volume, None) is not None:
            self.grafts_pruned += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("graft.pruned").inc()
                self.telemetry.events.emit(
                    "graft.prune", host=self.host_addr, volume=volume.to_hex()
                )

    def prune(self, idle_timeout: float) -> int:
        """Quietly drop grafts unused for ``idle_timeout`` seconds."""
        now = self.network.clock.now()
        stale = [
            volume
            for volume, state in self._grafts.items()
            if now - state.last_used >= idle_timeout
        ]
        for volume in stale:
            del self._grafts[volume]
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("graft.pruned").inc()
                self.telemetry.events.emit(
                    "graft.prune", host=self.host_addr, volume=volume.to_hex()
                )
        self.grafts_pruned += len(stale)
        return len(stale)

    @property
    def active_grafts(self) -> int:
        return len(self._grafts)
