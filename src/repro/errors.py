"""Error hierarchy shared by every layer of the Ficus stack.

The vnode interface reports failures the way a Unix kernel does: a small set
of errno-like conditions.  Every layer (UFS, NFS, Ficus physical, Ficus
logical) raises from this hierarchy so that errors pass transparently through
layer boundaries, exactly as error codes pass through stacked vnode layers in
the paper's SunOS implementation.
"""

from __future__ import annotations


class FicusError(Exception):
    """Base class for every error raised by the repro package."""

    errno_name = "EIO"

    def __init__(self, message: str = ""):
        super().__init__(message or self.__class__.__doc__ or self.errno_name)


class FileNotFound(FicusError):
    """ENOENT: no such file or directory."""

    errno_name = "ENOENT"


class FileExists(FicusError):
    """EEXIST: file exists."""

    errno_name = "EEXIST"


class NotADirectory(FicusError):
    """ENOTDIR: a path component used as a directory is not one."""

    errno_name = "ENOTDIR"


class IsADirectory(FicusError):
    """EISDIR: the operation is not valid on a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FicusError):
    """ENOTEMPTY: directory not empty."""

    errno_name = "ENOTEMPTY"


class NoSpace(FicusError):
    """ENOSPC: no space left on device."""

    errno_name = "ENOSPC"


class NameTooLong(FicusError):
    """ENAMETOOLONG: file name component too long."""

    errno_name = "ENAMETOOLONG"


class InvalidArgument(FicusError):
    """EINVAL: invalid argument."""

    errno_name = "EINVAL"


class PermissionDenied(FicusError):
    """EACCES: permission denied."""

    errno_name = "EACCES"


class CrossDevice(FicusError):
    """EXDEV: cross-device (here: cross-volume) link or rename."""

    errno_name = "EXDEV"


class StaleFileHandle(FicusError):
    """ESTALE: the (NFS) file handle no longer names a live object."""

    errno_name = "ESTALE"


class IOError_(FicusError):
    """EIO: low-level input/output error (e.g. failed simulated disk)."""

    errno_name = "EIO"


class ReadOnly(FicusError):
    """EROFS: write attempted on a read-only file system."""

    errno_name = "EROFS"


class NotSupported(FicusError):
    """ENOTSUP: the layer does not implement this vnode operation."""

    errno_name = "ENOTSUP"


class HostUnreachable(FicusError):
    """EHOSTUNREACH: the remote host cannot be contacted (partition/crash)."""

    errno_name = "EHOSTUNREACH"


class RpcTimeout(HostUnreachable):
    """ETIMEDOUT: an RPC gave up after retransmissions."""

    errno_name = "ETIMEDOUT"


class ServiceUnavailable(FicusError):
    """ECONNREFUSED: the peer is up and reachable but exports no such service.

    Deliberately NOT a :class:`HostUnreachable`: a missing export is a
    configuration error that no amount of retrying or waiting out a
    partition will fix, so retry policies must not treat it as transient.
    """

    errno_name = "ECONNREFUSED"


class AllReplicasUnavailable(FicusError):
    """No replica of the logical file is currently accessible.

    Under one-copy availability this is the *only* condition that makes a
    Ficus operation fail for replication reasons.
    """

    errno_name = "ENOREPLICA"


class UpdateConflict(FicusError):
    """Concurrent unsynchronized updates were detected via version vectors.

    For regular files this is reported to the owner; it is never raised
    during normal operation, only surfaced by reconciliation.
    """

    errno_name = "ECONFLICT"


class QuorumNotAvailable(FicusError):
    """A baseline replica-control policy could not assemble its quorum."""

    errno_name = "ENOQUORUM"


class CrashInjected(FicusError):
    """Raised by failure-injection points to simulate a host crash."""

    errno_name = "ECRASH"
