"""NFS wire protocol types.

NFS "is essentially a host-to-host transport service with a vnode
interface" (paper Section 2.2) — but a *stateless* one.  The protocol
identifies files by opaque handles (fileid + generation) and defines no
open/close calls at all; those vnode operations simply vanish at the
client ("a layer intending to receive an open will never get it if NFS is
in between").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ufs.inode import FileAttributes

#: Vnode operations that the NFS protocol has no call for.  The client
#: accepts them and drops them on the floor — which is why the protocol
#: grew explicit ``session_open``/``session_close`` calls instead (the
#: original Ficus smuggled them through ``lookup``, paper Section 2.3).
DROPPED_OPERATIONS = ("open", "close")

#: Optional RPC keyword carrying the serialized operation context
#: (:meth:`repro.vnode.context.OpContext.to_wire`): credential, telemetry
#: trace parentage, replica hints, cache-control flags — one structured
#: field for everything a call carries besides its arguments.  The server
#: strips it before dispatching, so a context-sending client interoperates
#: with any server; when the server traces, its span is parented on the
#: context's trace — this is how one trace tree crosses the NFS hop.
CTX_FIELD = "_opctx"


@dataclass(frozen=True)
class NfsHandle:
    """Opaque stateless file handle: survives server reboot, detects reuse.

    ``generation`` guards against the classic stale-handle problem: if the
    object is deleted and its fileid reused, the old handle must fail with
    ESTALE rather than address the new object.
    """

    fileid: int
    generation: int


@dataclass(frozen=True)
class LookupReply:
    """lookup returns the child handle plus its attributes (as NFS does,
    to prime the client attribute cache in one round trip)."""

    handle: NfsHandle
    attrs: FileAttributes


@dataclass(frozen=True)
class ReaddirEntry:
    name: str
    fileid: int
    ftype: int
