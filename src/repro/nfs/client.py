"""The NFS client: a vnode layer whose storage is a remote NFS server.

Because the client presents the same vnode interface it consumes, "any
layer that uses a vnode interface can be unaware whether the immediately
adjacent functional layers are local, or perhaps remote and accessed via an
intervening NFS layer" (paper Section 2.2).

Two deliberate infidelities of real NFS are reproduced because the paper's
design reacts to them:

* **open/close are dropped.**  The protocol has no such calls; the client
  accepts them as no-ops and never forwards them.  The original Ficus
  smuggled open/close through ``lookup`` (Section 2.3, experiment E10);
  our protocol instead forwards the explicit ``session_open``/
  ``session_close`` vnode operations, which exist precisely because the
  classic calls cannot survive the hop.
* **Caching is not fully controllable.**  The client keeps an attribute
  cache and a directory-name-lookup cache with time-based expiry ("there is
  no user-level way to disable all caching"), so upper layers can observe
  bounded staleness exactly as Ficus had to tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RpcTimeout, StaleFileHandle
from repro.net import Network
from repro.nfs.protocol import CTX_FIELD, LookupReply, NfsHandle
from repro.physical.wire import AttrBatch, BlockDigests, SyncProbe
from repro.telemetry import NULL_SPAN, NULL_TELEMETRY, Telemetry
from repro.ufs.inode import FileAttributes, FileType
from repro.util import VirtualClock
from repro.vnode.interface import (
    ROOT_CTX,
    DirEntry,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)


@dataclass
class NfsClientConfig:
    """Client tunables (matching SunOS defaults in spirit)."""

    #: Attribute cache lifetime in (virtual) seconds; 0 disables.
    attr_cache_ttl: float = 3.0
    #: Name cache lifetime in (virtual) seconds; 0 disables.
    name_cache_ttl: float = 3.0
    #: RPC retransmissions before giving up with ETIMEDOUT.
    retries: int = 2
    #: First retransmission delay (virtual seconds); doubles per attempt.
    backoff_base: float = 0.05
    #: Ceiling on any single retransmission delay.
    backoff_max: float = 1.0


#: Operations whose replay after an ambiguous failure is NOT safe: the
#: server mints fresh entry/file ids per request, so a retransmission
#: after a lost *reply* would commit the operation twice (two live
#: entries, two files).  Everything else in the protocol is idempotent —
#: reads trivially, and the Ficus mutations by construction (inserts and
#: removes are keyed on entry ids carried in the request, writes carry
#: absolute offsets, session brackets and shadow commits re-apply
#: harmlessly).
NON_IDEMPOTENT_OPS = frozenset({"create", "mkdir", "symlink", "link"})


class NfsClientLayer(FileSystemLayer):
    """A vnode layer forwarding operations to a remote NFS server."""

    layer_name = "nfs-client"

    def __init__(
        self,
        network: Network,
        client_addr: str,
        server_addr: str,
        service: str = "nfs",
        config: NfsClientConfig | None = None,
        telemetry: Telemetry | None = None,
        health=None,
    ):
        super().__init__()
        self.network = network
        self.client_addr = client_addr
        self.server_addr = server_addr
        self.service = service
        self.config = config or NfsClientConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        # stable per Telemetry hub — bound once to shorten the per-RPC path
        self.tracer = self.telemetry.tracer
        #: the client host's HealthPlane; an ambiguous non-idempotent
        #: timeout (executed? reply lost?) fires its anomaly recorder
        self.health = health
        self._attr_cache: dict[NfsHandle, tuple[float, FileAttributes]] = {}
        self._name_cache: dict[tuple[NfsHandle, str], tuple[float, LookupReply]] = {}

    @property
    def clock(self) -> VirtualClock:
        return self.network.clock

    # -- RPC plumbing ------------------------------------------------------

    def call(self, op: str, *args: object, ctx: OpContext = ROOT_CTX) -> object:
        """Issue one NFS RPC with retransmission.

        The operation context travels as the single structured
        :data:`~repro.nfs.protocol.CTX_FIELD` keyword — credential, trace
        parentage, and hints in one field instead of per-purpose side
        channels.  With tracing enabled, the whole call (including
        retransmissions) is one ``nfs-client`` span whose context replaces
        ``ctx.trace`` on the wire, stitching client and server trees.
        """
        tracer = self.tracer
        if not tracer.enabled:
            wire = ctx.to_wire()
            if not wire:
                return self._call_with_retries(op, args, {}, NULL_SPAN)
            # like the wire form itself, the single-field kwargs dict is
            # immutable in practice (the transport spreads it; the server
            # pops from its own copy), so cache it on the context too
            kwargs: dict[str, object] | None = ctx.__dict__.get("_wire_kwargs")
            if kwargs is None:
                kwargs = {CTX_FIELD: wire}
                object.__setattr__(ctx, "_wire_kwargs", kwargs)
            return self._call_with_retries(op, args, kwargs, NULL_SPAN)
        with tracer.span(f"nfs.{op}", layer="nfs-client", host=self.client_addr) as span:
            span.set_tag("server", self.server_addr)
            kwargs = {CTX_FIELD: ctx.with_trace(span.context).to_wire()}
            return self._call_with_retries(op, args, kwargs, span)

    def _call_with_retries(
        self,
        op: str,
        args: tuple[object, ...],
        kwargs: dict[str, object],
        span,
    ) -> object:
        """Retransmit with bounded exponential backoff — idempotent ops only.

        Two failure shapes surface from the transport and they demand
        different treatment:

        * :class:`HostUnreachable` (not its RpcTimeout subclass) is raised
          by the reachability check *before* dispatch — the server
          definitively did not execute, so any operation may retransmit.
        * :class:`RpcTimeout` is ambiguous: the request may have been lost
          (not executed) or the reply lost (executed).  Only idempotent
          operations may retransmit; replaying an id-minting operation
          after a lost reply would commit it twice.

        ServiceUnavailable (peer up, nothing exported) is a configuration
        error and is never retried.
        """
        may_replay_ambiguous = op not in NON_IDEMPOTENT_OPS
        last_error: Exception | None = None
        for attempt in range(self.config.retries + 1):
            if attempt:
                # bounded exponential backoff between retransmissions
                self.clock.advance(
                    min(self.config.backoff_max, self.config.backoff_base * 2 ** (attempt - 1))
                )
                self.telemetry.metrics.counter("nfs.retries").inc()
                span.set_tag("retries", attempt)
            try:
                return self.network.rpc(
                    self.client_addr,
                    self.server_addr,
                    f"{self.service}.{op}",
                    *args,
                    **kwargs,
                )
            except RpcTimeout as exc:
                if not may_replay_ambiguous:
                    if self.health is not None:
                        # the most dangerous failure shape in the protocol:
                        # the server may or may not have minted fresh ids
                        self.health.anomaly(
                            "ambiguous_timeout", op=op, server=self.server_addr
                        )
                    raise  # the server may already have executed this
                last_error = exc
            except StaleFileHandle:
                raise
            except Exception as exc:
                # definitively-not-executed transport error: anything may
                # retransmit (exact class: RpcTimeout is handled above and
                # application errors must propagate)
                if exc.__class__.__name__ == "HostUnreachable":
                    last_error = exc
                    continue
                raise
        raise RpcTimeout(f"{op}: server {self.server_addr} unreachable") from last_error

    # -- caches ------------------------------------------------------------------

    def _cache_attrs(self, handle: NfsHandle, attrs: FileAttributes) -> None:
        if self.config.attr_cache_ttl > 0:
            self._attr_cache[handle] = (self.clock.now(), attrs)

    def _cached_attrs(self, handle: NfsHandle) -> FileAttributes | None:
        entry = self._attr_cache.get(handle)
        if entry is None:
            return None
        when, attrs = entry
        if self.clock.now() - when > self.config.attr_cache_ttl:
            del self._attr_cache[handle]
            return None
        return attrs

    def _cache_name(self, handle: NfsHandle, name: str, reply: LookupReply) -> None:
        if self.config.name_cache_ttl > 0:
            self._name_cache[(handle, name)] = (self.clock.now(), reply)

    def _cached_name(self, handle: NfsHandle, name: str) -> LookupReply | None:
        entry = self._name_cache.get((handle, name))
        if entry is None:
            return None
        when, reply = entry
        if self.clock.now() - when > self.config.name_cache_ttl:
            del self._name_cache[(handle, name)]
            return None
        return reply

    def invalidate_handle(self, handle: NfsHandle) -> None:
        self._attr_cache.pop(handle, None)
        stale = [key for key in self._name_cache if key[0] == handle]
        for key in stale:
            del self._name_cache[key]

    def note_stale(self, handle: NfsHandle) -> None:
        """The server said ESTALE: purge every cache trace of the handle.

        This covers both directions: attributes OF the handle, names
        looked up THROUGH it, and cached lookup replies that RESOLVED to
        it (e.g. a file whose inode was replaced by a shadow commit).
        """
        self.invalidate_handle(handle)
        resolved_to = [
            key for key, (_, reply) in self._name_cache.items() if reply.handle == handle
        ]
        for key in resolved_to:
            del self._name_cache[key]

    def call_h(
        self, handle: NfsHandle, op: str, *args: object, ctx: OpContext = ROOT_CTX
    ) -> object:
        """Issue an RPC whose first argument is ``handle``; on ESTALE the
        caches are scrubbed before the error propagates, so the caller's
        retry re-lookups instead of replaying the dead handle."""
        try:
            return self.call(op, handle, *args, ctx=ctx)
        except StaleFileHandle:
            self.note_stale(handle)
            raise

    def flush_caches(self) -> None:
        """Drop all cached state (there is deliberately no *partial* knob,
        mirroring the paper's complaint about SunOS NFS)."""
        self._attr_cache.clear()
        self._name_cache.clear()

    # -- layer interface ---------------------------------------------------------

    def root(self) -> "NfsClientVnode":
        reply = self.call("root")
        assert isinstance(reply, LookupReply)
        self._cache_attrs(reply.handle, reply.attrs)
        return NfsClientVnode(self, reply.handle)


class NfsClientVnode(Vnode):
    """A vnode addressing a remote object via an NFS handle."""

    def __init__(self, layer: NfsClientLayer, handle: NfsHandle):
        self.layer = layer
        self.handle = handle

    def _wrap(self, reply: LookupReply) -> "NfsClientVnode":
        self.layer._cache_attrs(reply.handle, reply.attrs)
        return NfsClientVnode(self.layer, reply.handle)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NfsClientVnode)
            and other.layer is self.layer
            and other.handle == self.handle
        )

    def __hash__(self) -> int:
        return hash((id(self.layer), self.handle))

    # -- dropped operations (the NFS semantic gap, paper Section 2.2) --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        """Accepted and DROPPED: the NFS protocol has no open call.

        "the vnode services open and close are not supported by the NFS
        definition, and so are ignored: a layer intending to receive an
        open will never get it if NFS is in between."
        """
        self.layer.counters.bump("open-dropped")

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        """Accepted and DROPPED, exactly like :meth:`open`."""
        self.layer.counters.bump("close-dropped")

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")
        self.layer.invalidate_handle(self.handle)

    # -- Ficus extensions: forwarded explicitly (unlike open/close) --

    def session_open(self, fh, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("session_open")
        self.layer.call_h(self.handle, "session_open", fh.to_hex(), ctx=ctx)

    def session_close(self, fh, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("session_close")
        return bool(self.layer.call_h(self.handle, "session_close", fh.to_hex(), ctx=ctx))

    def getattrs_batch(self, fhs=None, ctx: OpContext = ROOT_CTX) -> AttrBatch:
        self.layer.counters.bump("getattrs_batch")
        wire_fhs = None if fhs is None else [fh.to_hex() for fh in fhs]
        reply = self.layer.call_h(self.handle, "getattrs_batch", wire_fhs, ctx=ctx)
        return AttrBatch.from_wire(reply)

    def sync_probe(self, fh=None, ctx: OpContext = ROOT_CTX) -> SyncProbe:
        self.layer.counters.bump("sync_probe")
        wire_fh = None if fh is None else fh.to_hex()
        reply = self.layer.call_h(self.handle, "sync_probe", wire_fh, ctx=ctx)
        return SyncProbe.from_wire(reply)

    def block_digests(self, fh, ctx: OpContext = ROOT_CTX) -> BlockDigests:
        self.layer.counters.bump("block_digests")
        reply = self.layer.call_h(self.handle, "block_digests", fh.to_hex(), ctx=ctx)
        return BlockDigests.from_wire(reply)

    def read_blocks(self, fh, indices: list[int], ctx: OpContext = ROOT_CTX) -> dict[int, bytes]:
        self.layer.counters.bump("read_blocks")
        reply = self.layer.call_h(self.handle, "read_blocks", fh.to_hex(), list(indices), ctx=ctx)
        assert isinstance(reply, list)
        out = {int(index): data for index, data in reply}
        faults = self.layer.network.faults
        if faults.active:
            # block payloads can be corrupted in flight; the digest check
            # in the delta pull detects this and replays as a whole file
            out = {
                index: faults.maybe_corrupt_block(
                    self.layer.client_addr, self.layer.server_addr, data
                )
                for index, data in out.items()
            }
        return out

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        cached = self.layer._cached_attrs(self.handle)
        if cached is not None:
            return cached
        attrs = self.layer.call_h(self.handle, "getattr", ctx=ctx)
        assert isinstance(attrs, FileAttributes)
        self.layer._cache_attrs(self.handle, attrs)
        return attrs

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        fresh = self.layer.call_h(self.handle, "setattr", attrs, ctx=ctx)
        assert isinstance(fresh, FileAttributes)
        self.layer._cache_attrs(self.handle, fresh)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("access")
        attrs = self.getattr(ctx)
        if ctx.cred.uid == 0:
            return True
        shift = 6 if ctx.cred.uid == attrs.uid else 0
        return (attrs.perm >> shift) & mode == mode

    # -- data --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        self.layer.counters.bump("read")
        data = self.layer.call_h(self.handle, "read", offset, length, ctx=ctx)
        assert isinstance(data, bytes)
        return data

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.counters.bump("write")
        written = self.layer.call_h(self.handle, "write", offset, data, ctx=ctx)
        self.layer.invalidate_handle(self.handle)
        assert isinstance(written, int)
        return written

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("truncate")
        self.layer.call_h(self.handle, "truncate", size, ctx=ctx)
        self.layer.invalidate_handle(self.handle)

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("fsync")
        # NFS writes in this simulation are write-through already.

    # -- namespace --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        cached = self.layer._cached_name(self.handle, name)
        if cached is not None:
            return NfsClientVnode(self.layer, cached.handle)
        reply = self.layer.call_h(self.handle, "lookup", name, ctx=ctx)
        assert isinstance(reply, LookupReply)
        self.layer._cache_name(self.handle, name, reply)
        return self._wrap(reply)

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("create")
        reply = self.layer.call_h(self.handle, "create", name, perm, ctx=ctx)
        assert isinstance(reply, LookupReply)
        self.layer.invalidate_handle(self.handle)
        self.layer._cache_name(self.handle, name, reply)
        return self._wrap(reply)

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("remove")
        self.layer.call_h(self.handle, "remove", name, ctx=ctx)
        self.layer._name_cache.pop((self.handle, name), None)
        self.layer.invalidate_handle(self.handle)

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("link")
        if not isinstance(target, NfsClientVnode):
            raise StaleFileHandle("link target is not an NFS vnode")
        self.layer.call("link", self.handle, target.handle, name, ctx=ctx)
        self.layer.invalidate_handle(self.handle)
        self.layer.invalidate_handle(target.handle)

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        self.layer.counters.bump("rename")
        if not isinstance(dst_dir, NfsClientVnode):
            raise StaleFileHandle("rename destination is not an NFS vnode")
        self.layer.call("rename", self.handle, src_name, dst_dir.handle, dst_name, ctx=ctx)
        self.layer._name_cache.pop((self.handle, src_name), None)
        self.layer._name_cache.pop((dst_dir.handle, dst_name), None)
        self.layer.invalidate_handle(self.handle)
        self.layer.invalidate_handle(dst_dir.handle)

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("mkdir")
        reply = self.layer.call_h(self.handle, "mkdir", name, perm, ctx=ctx)
        assert isinstance(reply, LookupReply)
        self.layer.invalidate_handle(self.handle)
        return self._wrap(reply)

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("rmdir")
        self.layer.call_h(self.handle, "rmdir", name, ctx=ctx)
        self.layer._name_cache.pop((self.handle, name), None)
        self.layer.invalidate_handle(self.handle)

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        rows = self.layer.call_h(self.handle, "readdir", ctx=ctx)
        assert isinstance(rows, list)
        return [DirEntry(r.name, r.fileid, FileType(r.ftype)) for r in rows]

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("symlink")
        reply = self.layer.call_h(self.handle, "symlink", name, target, ctx=ctx)
        assert isinstance(reply, LookupReply)
        self.layer.invalidate_handle(self.handle)
        return self._wrap(reply)

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        self.layer.counters.bump("readlink")
        text = self.layer.call_h(self.handle, "readlink", ctx=ctx)
        assert isinstance(text, str)
        return text

    def __repr__(self) -> str:
        return f"NfsClientVnode({self.layer.server_addr}, fileid={self.handle.fileid})"
