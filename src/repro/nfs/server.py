"""The NFS server: exports any vnode layer over the simulated network.

The server is stateless in the NFS sense: it holds no per-client open
state, every call is self-contained, and file handles remain valid across
"reboots" of the server process (handles embed fileid + generation and are
re-validated on every call).

Ficus uses this to place its logical and physical layers on different
hosts: "The Ficus replication service layers are able to use NFS for
transparent access to remote layers, without having to build a transport
service" (paper Section 2.2).

Every RPC may carry one structured operation-context field
(:data:`~repro.nfs.protocol.CTX_FIELD`); the server rebuilds the
:class:`~repro.vnode.context.OpContext` — credential, trace parentage,
hints — and threads it into the exported layer's vnode operations.
"""

from __future__ import annotations

from repro.errors import StaleFileHandle
from repro.net import Network
from repro.nfs.protocol import CTX_FIELD, LookupReply, NfsHandle, ReaddirEntry
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.ufs.inode import FileAttributes
from repro.util import FicusFileHandle
from repro.vnode.interface import (
    ROOT_CTX,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)


class NfsServer:
    """Exports one vnode layer as an RPC service.

    The exported layer should provide ``vnode_for(fileid)`` so that handles
    can be re-materialized statelessly; a small handle table is kept purely
    as a cache and can be dropped at any time (see :meth:`reboot`).
    """

    def __init__(
        self,
        network: Network,
        addr: str,
        exported: FileSystemLayer,
        service: str = "nfs",
        telemetry: Telemetry | None = None,
    ):
        self.network = network
        self.addr = addr
        self.exported = exported
        self.service = service
        self.telemetry = telemetry or NULL_TELEMETRY
        self._vnode_cache: dict[int, Vnode] = {}
        for op in (
            "root",
            "getattr",
            "setattr",
            "lookup",
            "read",
            "write",
            "truncate",
            "create",
            "remove",
            "link",
            "rename",
            "mkdir",
            "rmdir",
            "readdir",
            "symlink",
            "readlink",
            "session_open",
            "session_close",
            "getattrs_batch",
            "sync_probe",
            "block_digests",
            "read_blocks",
        ):
            network.register_rpc(addr, f"{service}.{op}", self._make_handler(op))

    def _make_handler(self, op: str):
        """Wrap one RPC op: rebuild the operation context from the wire
        field, and when this server traces, parent a server-side span on
        the context's trace."""
        inner = getattr(self, f"_op_{op}")

        def handler(*args: object, **kwargs: object) -> object:
            wire = kwargs.pop(CTX_FIELD, None)
            ctx = ROOT_CTX if wire is None else OpContext.from_wire(wire)
            telemetry = self.telemetry
            if ctx.trace is None or not telemetry.enabled:
                return inner(*args, ctx=ctx)
            with telemetry.tracer.span(
                f"nfs.{op}",
                layer="nfs-server",
                host=self.addr,
                parent=ctx.trace,
            ):
                return inner(*args, ctx=ctx)

        return handler

    # -- handle management -----------------------------------------------

    def _handle_for(self, vnode: Vnode) -> NfsHandle:
        attrs = vnode.getattr()
        self._vnode_cache[attrs.fileid] = vnode
        return NfsHandle(fileid=attrs.fileid, generation=attrs.generation)

    def _resolve(self, handle: NfsHandle) -> Vnode:
        """Re-materialize a vnode from a handle; ESTALE when it is gone."""
        vnode = self._vnode_cache.get(handle.fileid)
        if vnode is None:
            rematerialize = getattr(self.exported, "vnode_for", None)
            if rematerialize is None:
                raise StaleFileHandle(f"no vnode for fileid {handle.fileid}")
            try:
                vnode = rematerialize(handle.fileid)
            except Exception as exc:
                raise StaleFileHandle(str(exc)) from exc
            self._vnode_cache[handle.fileid] = vnode
        attrs = vnode.getattr()
        if attrs.generation != handle.generation:
            self._vnode_cache.pop(handle.fileid, None)
            raise StaleFileHandle(
                f"fileid {handle.fileid}: generation {handle.generation} superseded by {attrs.generation}"
            )
        return vnode

    def reboot(self) -> None:
        """Simulate a server restart: the handle cache vanishes.

        Statelessness means clients must not notice (their handles are
        re-materialized via ``vnode_for`` on the next call).
        """
        self._vnode_cache.clear()

    # -- RPC operation handlers ----------------------------------------------

    def _op_root(self, ctx: OpContext = ROOT_CTX) -> LookupReply:
        vnode = self.exported.root()
        return LookupReply(self._handle_for(vnode), vnode.getattr(ctx))

    def _op_getattr(self, handle: NfsHandle, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        return self._resolve(handle).getattr(ctx)

    def _op_setattr(
        self, handle: NfsHandle, attrs: SetAttrs, ctx: OpContext = ROOT_CTX
    ) -> FileAttributes:
        vnode = self._resolve(handle)
        vnode.setattr(attrs, ctx)
        return vnode.getattr(ctx)

    def _op_lookup(self, handle: NfsHandle, name: str, ctx: OpContext = ROOT_CTX) -> LookupReply:
        child = self._resolve(handle).lookup(name, ctx)
        return LookupReply(self._handle_for(child), child.getattr(ctx))

    def _op_read(
        self, handle: NfsHandle, offset: int, length: int, ctx: OpContext = ROOT_CTX
    ) -> bytes:
        return self._resolve(handle).read(offset, length, ctx)

    def _op_write(
        self, handle: NfsHandle, offset: int, data: bytes, ctx: OpContext = ROOT_CTX
    ) -> int:
        return self._resolve(handle).write(offset, data, ctx)

    def _op_truncate(self, handle: NfsHandle, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self._resolve(handle).truncate(size, ctx)

    def _op_create(
        self, handle: NfsHandle, name: str, perm: int, ctx: OpContext = ROOT_CTX
    ) -> LookupReply:
        child = self._resolve(handle).create(name, perm, ctx)
        return LookupReply(self._handle_for(child), child.getattr(ctx))

    def _op_remove(self, handle: NfsHandle, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._resolve(handle).remove(name, ctx)

    def _op_link(
        self, dir_handle: NfsHandle, target: NfsHandle, name: str, ctx: OpContext = ROOT_CTX
    ) -> None:
        self._resolve(dir_handle).link(self._resolve(target), name, ctx)

    def _op_rename(
        self,
        src_dir: NfsHandle,
        src_name: str,
        dst_dir: NfsHandle,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        self._resolve(src_dir).rename(src_name, self._resolve(dst_dir), dst_name, ctx)

    def _op_mkdir(
        self, handle: NfsHandle, name: str, perm: int, ctx: OpContext = ROOT_CTX
    ) -> LookupReply:
        child = self._resolve(handle).mkdir(name, perm, ctx)
        return LookupReply(self._handle_for(child), child.getattr(ctx))

    def _op_rmdir(self, handle: NfsHandle, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._resolve(handle).rmdir(name, ctx)

    def _op_readdir(self, handle: NfsHandle, ctx: OpContext = ROOT_CTX) -> list[ReaddirEntry]:
        entries = self._resolve(handle).readdir(ctx)
        return [ReaddirEntry(e.name, e.fileid, int(e.ftype)) for e in entries]

    def _op_symlink(
        self, handle: NfsHandle, name: str, target: str, ctx: OpContext = ROOT_CTX
    ) -> LookupReply:
        child = self._resolve(handle).symlink(name, target, ctx)
        return LookupReply(self._handle_for(child), child.getattr(ctx))

    def _op_readlink(self, handle: NfsHandle, ctx: OpContext = ROOT_CTX) -> str:
        return self._resolve(handle).readlink(ctx)

    # -- Ficus extensions ------------------------------------------------------

    def _op_session_open(self, handle: NfsHandle, fh_hex: str, ctx: OpContext = ROOT_CTX) -> None:
        self._resolve(handle).session_open(FicusFileHandle.from_hex(fh_hex), ctx)

    def _op_session_close(self, handle: NfsHandle, fh_hex: str, ctx: OpContext = ROOT_CTX) -> bool:
        return bool(self._resolve(handle).session_close(FicusFileHandle.from_hex(fh_hex), ctx))

    def _op_getattrs_batch(
        self, handle: NfsHandle, fh_hexes: list[str] | None, ctx: OpContext = ROOT_CTX
    ) -> dict[str, object]:
        fhs = None if fh_hexes is None else [FicusFileHandle.from_hex(h) for h in fh_hexes]
        return self._resolve(handle).getattrs_batch(fhs, ctx).to_wire()

    def _op_sync_probe(
        self, handle: NfsHandle, fh_hex: str | None, ctx: OpContext = ROOT_CTX
    ) -> dict[str, object]:
        fh = None if fh_hex is None else FicusFileHandle.from_hex(fh_hex)
        return self._resolve(handle).sync_probe(fh, ctx).to_wire()

    def _op_block_digests(
        self, handle: NfsHandle, fh_hex: str, ctx: OpContext = ROOT_CTX
    ) -> dict[str, object]:
        return self._resolve(handle).block_digests(FicusFileHandle.from_hex(fh_hex), ctx).to_wire()

    def _op_read_blocks(
        self, handle: NfsHandle, fh_hex: str, indices: list[int], ctx: OpContext = ROOT_CTX
    ) -> list[list[object]]:
        blocks = self._resolve(handle).read_blocks(FicusFileHandle.from_hex(fh_hex), indices, ctx)
        return [[index, data] for index, data in sorted(blocks.items())]
