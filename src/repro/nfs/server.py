"""The NFS server: exports any vnode layer over the simulated network.

The server is stateless in the NFS sense: it holds no per-client open
state, every call is self-contained, and file handles remain valid across
"reboots" of the server process (handles embed fileid + generation and are
re-validated on every call).

Ficus uses this to place its logical and physical layers on different
hosts: "The Ficus replication service layers are able to use NFS for
transparent access to remote layers, without having to build a transport
service" (paper Section 2.2).
"""

from __future__ import annotations

from repro.errors import StaleFileHandle
from repro.net import Network
from repro.nfs.protocol import TRACE_FIELD, LookupReply, NfsHandle, ReaddirEntry
from repro.telemetry import NULL_TELEMETRY, Telemetry, TraceContext
from repro.ufs.inode import FileAttributes
from repro.vnode.interface import ROOT_CRED, Credential, FileSystemLayer, SetAttrs, Vnode


class NfsServer:
    """Exports one vnode layer as an RPC service.

    The exported layer should provide ``vnode_for(fileid)`` so that handles
    can be re-materialized statelessly; a small handle table is kept purely
    as a cache and can be dropped at any time (see :meth:`reboot`).
    """

    def __init__(
        self,
        network: Network,
        addr: str,
        exported: FileSystemLayer,
        service: str = "nfs",
        telemetry: Telemetry | None = None,
    ):
        self.network = network
        self.addr = addr
        self.exported = exported
        self.service = service
        self.telemetry = telemetry or NULL_TELEMETRY
        self._vnode_cache: dict[int, Vnode] = {}
        for op in (
            "root",
            "getattr",
            "setattr",
            "lookup",
            "read",
            "write",
            "truncate",
            "create",
            "remove",
            "link",
            "rename",
            "mkdir",
            "rmdir",
            "readdir",
            "symlink",
            "readlink",
        ):
            network.register_rpc(addr, f"{service}.{op}", self._make_handler(op))

    def _make_handler(self, op: str):
        """Wrap one RPC op: strip the trace protocol field, and when this
        server traces, parent a server-side span on the wire context."""
        inner = getattr(self, f"_op_{op}")

        def handler(*args: object, **kwargs: object) -> object:
            wire = kwargs.pop(TRACE_FIELD, None)
            telemetry = self.telemetry
            if wire is None or not telemetry.enabled:
                return inner(*args, **kwargs)
            with telemetry.tracer.span(
                f"nfs.{op}",
                layer="nfs-server",
                host=self.addr,
                parent=TraceContext.from_wire(wire),
            ):
                return inner(*args, **kwargs)

        return handler

    # -- handle management -----------------------------------------------

    def _handle_for(self, vnode: Vnode) -> NfsHandle:
        attrs = vnode.getattr()
        self._vnode_cache[attrs.fileid] = vnode
        return NfsHandle(fileid=attrs.fileid, generation=attrs.generation)

    def _resolve(self, handle: NfsHandle) -> Vnode:
        """Re-materialize a vnode from a handle; ESTALE when it is gone."""
        vnode = self._vnode_cache.get(handle.fileid)
        if vnode is None:
            rematerialize = getattr(self.exported, "vnode_for", None)
            if rematerialize is None:
                raise StaleFileHandle(f"no vnode for fileid {handle.fileid}")
            try:
                vnode = rematerialize(handle.fileid)
            except Exception as exc:
                raise StaleFileHandle(str(exc)) from exc
            self._vnode_cache[handle.fileid] = vnode
        attrs = vnode.getattr()
        if attrs.generation != handle.generation:
            self._vnode_cache.pop(handle.fileid, None)
            raise StaleFileHandle(
                f"fileid {handle.fileid}: generation {handle.generation} superseded by {attrs.generation}"
            )
        return vnode

    def reboot(self) -> None:
        """Simulate a server restart: the handle cache vanishes.

        Statelessness means clients must not notice (their handles are
        re-materialized via ``vnode_for`` on the next call).
        """
        self._vnode_cache.clear()

    # -- RPC operation handlers ----------------------------------------------

    def _op_root(self) -> LookupReply:
        vnode = self.exported.root()
        return LookupReply(self._handle_for(vnode), vnode.getattr())

    def _op_getattr(self, handle: NfsHandle) -> FileAttributes:
        return self._resolve(handle).getattr()

    def _op_setattr(self, handle: NfsHandle, attrs: SetAttrs) -> FileAttributes:
        vnode = self._resolve(handle)
        vnode.setattr(attrs)
        return vnode.getattr()

    def _op_lookup(self, handle: NfsHandle, name: str) -> LookupReply:
        child = self._resolve(handle).lookup(name, ROOT_CRED)
        return LookupReply(self._handle_for(child), child.getattr())

    def _op_read(self, handle: NfsHandle, offset: int, length: int) -> bytes:
        return self._resolve(handle).read(offset, length)

    def _op_write(self, handle: NfsHandle, offset: int, data: bytes) -> int:
        return self._resolve(handle).write(offset, data)

    def _op_truncate(self, handle: NfsHandle, size: int) -> None:
        self._resolve(handle).truncate(size)

    def _op_create(self, handle: NfsHandle, name: str, perm: int, uid: int = 0) -> LookupReply:
        child = self._resolve(handle).create(name, perm, Credential(uid=uid))
        return LookupReply(self._handle_for(child), child.getattr())

    def _op_remove(self, handle: NfsHandle, name: str) -> None:
        self._resolve(handle).remove(name)

    def _op_link(self, dir_handle: NfsHandle, target: NfsHandle, name: str) -> None:
        self._resolve(dir_handle).link(self._resolve(target), name)

    def _op_rename(
        self, src_dir: NfsHandle, src_name: str, dst_dir: NfsHandle, dst_name: str
    ) -> None:
        self._resolve(src_dir).rename(src_name, self._resolve(dst_dir), dst_name)

    def _op_mkdir(self, handle: NfsHandle, name: str, perm: int, uid: int = 0) -> LookupReply:
        child = self._resolve(handle).mkdir(name, perm, Credential(uid=uid))
        return LookupReply(self._handle_for(child), child.getattr())

    def _op_rmdir(self, handle: NfsHandle, name: str) -> None:
        self._resolve(handle).rmdir(name)

    def _op_readdir(self, handle: NfsHandle) -> list[ReaddirEntry]:
        entries = self._resolve(handle).readdir()
        return [ReaddirEntry(e.name, e.fileid, int(e.ftype)) for e in entries]

    def _op_symlink(self, handle: NfsHandle, name: str, target: str, uid: int = 0) -> LookupReply:
        child = self._resolve(handle).symlink(name, target, Credential(uid=uid))
        return LookupReply(self._handle_for(child), child.getattr())

    def _op_readlink(self, handle: NfsHandle) -> str:
        return self._resolve(handle).readlink()
