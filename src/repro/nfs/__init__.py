"""Stateless NFS transport: server exporting a vnode layer, client layer."""

from repro.nfs.client import NfsClientConfig, NfsClientLayer, NfsClientVnode
from repro.nfs.protocol import DROPPED_OPERATIONS, LookupReply, NfsHandle, ReaddirEntry
from repro.nfs.server import NfsServer

__all__ = [
    "DROPPED_OPERATIONS",
    "LookupReply",
    "NfsClientConfig",
    "NfsClientLayer",
    "NfsClientVnode",
    "NfsHandle",
    "NfsServer",
    "ReaddirEntry",
]
