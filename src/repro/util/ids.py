"""Ficus identifiers (paper Section 4.2).

A volume is uniquely named by the pair ``⟨allocator-id, volume-id⟩`` where the
allocator-id is a value issued to each Ficus host before installation (the
paper suggests an Internet address) and the volume-id is issued by that
allocator.  A volume *replica* adds a replica-id; a file replica is fully
specified by ``⟨allocator-id, volume-id, file-id, replica-id⟩``.

To let every volume replica assign file identifiers independently, a file-id
is the tuple ``⟨issuing-replica-id, unique-id⟩`` — prefixing with the issuing
replica's id guarantees global uniqueness with zero coordination.

The paper notes a current limit of 2^32 replicas of a given file and 2^32
logical layers; we enforce the same bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import InvalidArgument

#: Paper Section 3.1: "a current limit of 2^32 replicas of a given file,
#: and 2^32 logical layers".
MAX_ID = 2**32


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value < MAX_ID:
        raise InvalidArgument(f"{what} {value!r} outside [0, 2^32)")
    return value


@dataclass(frozen=True, order=True)
class VolumeId:
    """Globally unique volume name: ⟨allocator-id, volume-num⟩."""

    allocator_id: int
    volume_num: int

    def __post_init__(self) -> None:
        _check_u32(self.allocator_id, "allocator-id")
        _check_u32(self.volume_num, "volume-num")

    def to_hex(self) -> str:
        # Frozen value object: encode once, reuse on every store lookup.
        cached = self.__dict__.get("_hex")
        if cached is None:
            cached = f"{self.allocator_id:08x}.{self.volume_num:08x}"
            object.__setattr__(self, "_hex", cached)
        return cached

    @classmethod
    def from_hex(cls, text: str) -> "VolumeId":
        try:
            alloc, vol = text.split(".")
            return cls(int(alloc, 16), int(vol, 16))
        except ValueError as exc:
            raise InvalidArgument(f"bad volume id {text!r}") from exc

    def __str__(self) -> str:
        return f"vol<{self.allocator_id}:{self.volume_num}>"


@dataclass(frozen=True, order=True)
class FileId:
    """Volume-relative logical file name: ⟨issuing-replica-id, unique-id⟩."""

    issuing_replica: int
    unique: int

    def __post_init__(self) -> None:
        _check_u32(self.issuing_replica, "issuing-replica-id")
        _check_u32(self.unique, "unique-id")

    def to_hex(self) -> str:
        cached = self.__dict__.get("_hex")
        if cached is None:
            cached = f"{self.issuing_replica:08x}.{self.unique:08x}"
            object.__setattr__(self, "_hex", cached)
        return cached

    @classmethod
    def from_hex(cls, text: str) -> "FileId":
        try:
            issuer, unique = text.split(".")
            return cls(int(issuer, 16), int(unique, 16))
        except ValueError as exc:
            raise InvalidArgument(f"bad file id {text!r}") from exc

    def __str__(self) -> str:
        return f"file<{self.issuing_replica}:{self.unique}>"


@dataclass(frozen=True, order=True)
class VolumeReplicaId:
    """Globally unique volume replica: ⟨allocator, volume, replica⟩."""

    volume: VolumeId
    replica_id: int

    def __post_init__(self) -> None:
        _check_u32(self.replica_id, "replica-id")

    def to_hex(self) -> str:
        cached = self.__dict__.get("_hex")
        if cached is None:
            cached = f"{self.volume.to_hex()}.{self.replica_id:08x}"
            object.__setattr__(self, "_hex", cached)
        return cached

    @classmethod
    def from_hex(cls, text: str) -> "VolumeReplicaId":
        parts = text.rsplit(".", 1)
        if len(parts) != 2:
            raise InvalidArgument(f"bad volume replica id {text!r}")
        return cls(VolumeId.from_hex(parts[0]), int(parts[1], 16))

    def __str__(self) -> str:
        return f"{self.volume}r{self.replica_id}"


@dataclass(frozen=True, order=True)
class FicusFileHandle:
    """The handle the logical layer uses to talk to physical layers.

    The paper (Section 2.5): "The logical layer maps a client-supplied name
    into a Ficus file handle, which contains a set of fields that uniquely
    identify the file across all Ficus systems."  A handle that names a
    specific replica additionally carries the replica-id of the containing
    volume replica; a handle with ``replica_id=None`` names the logical file.
    """

    #: Reserved replica-id encoding "no specific replica" in the hex form.
    LOGICAL_SENTINEL = MAX_ID - 1

    volume: VolumeId
    file_id: FileId
    replica_id: int | None = None

    def __post_init__(self) -> None:
        if self.replica_id is not None:
            _check_u32(self.replica_id, "replica-id")
            if self.replica_id == self.LOGICAL_SENTINEL:
                raise InvalidArgument(
                    f"replica-id {self.LOGICAL_SENTINEL:#x} is reserved for logical handles"
                )

    @property
    def logical(self) -> "FicusFileHandle":
        """The replica-independent handle for the same logical file."""
        if self.replica_id is None:
            return self
        cached = self.__dict__.get("_logical")
        if cached is None:
            cached = FicusFileHandle(self.volume, self.file_id, None)
            object.__setattr__(self, "_logical", cached)
        return cached

    def at_replica(self, replica_id: int) -> "FicusFileHandle":
        """Bind this handle to a specific volume replica."""
        return FicusFileHandle(self.volume, self.file_id, replica_id)

    def to_hex(self) -> str:
        """Encode for use as a UFS pathname component (paper Section 2.6).

        "This second mapping is implemented by encoding the Ficus file
        handle into a hexadecimal string used by the UFS as a pathname."
        """
        cached = self.__dict__.get("_hex")
        if cached is None:
            rep = "ffffffff" if self.replica_id is None else f"{self.replica_id:08x}"
            cached = f"{self.volume.to_hex()}.{self.file_id.to_hex()}.{rep}"
            object.__setattr__(self, "_hex", cached)
        return cached

    @classmethod
    def from_hex(cls, text: str) -> "FicusFileHandle":
        parts = text.split(".")
        if len(parts) != 5:
            raise InvalidArgument(f"bad file handle {text!r}")
        volume = VolumeId(int(parts[0], 16), int(parts[1], 16))
        file_id = FileId(int(parts[2], 16), int(parts[3], 16))
        rep = None if parts[4] == "ffffffff" else int(parts[4], 16)
        return cls(volume, file_id, rep)

    def __str__(self) -> str:
        rep = "*" if self.replica_id is None else str(self.replica_id)
        return f"fh<{self.volume.allocator_id}:{self.volume.volume_num}:{self.file_id.issuing_replica}:{self.file_id.unique}:{rep}>"


@dataclass
class IdAllocator:
    """Uncoordinated id issuance for one allocator (i.e. one Ficus host).

    Each host was "issued a unique value as its allocator-id" prior to
    installation; from then on it can mint volume ids with no communication.
    Likewise each volume replica mints file unique-ids independently.
    """

    allocator_id: int
    _next_volume: itertools.count = field(default_factory=lambda: itertools.count(1))

    def __post_init__(self) -> None:
        _check_u32(self.allocator_id, "allocator-id")

    def new_volume_id(self) -> VolumeId:
        return VolumeId(self.allocator_id, next(self._next_volume))


@dataclass
class FileIdAllocator:
    """Per-volume-replica file-id mint (paper Section 4.2).

    "Each volume replica assigns file identifiers to new files independently.
    To ensure that file-ids are uniquely issued, a file-id is prefixed with
    the issuing volume replica's replica-id."
    """

    replica_id: int
    _next_unique: itertools.count = field(default_factory=lambda: itertools.count(1))

    def __post_init__(self) -> None:
        _check_u32(self.replica_id, "replica-id")

    def new_file_id(self) -> FileId:
        return FileId(self.replica_id, next(self._next_unique))

    def restore(self, highest_seen: int) -> None:
        """Resume issuance after restart, skipping already-issued uniques."""
        self._next_unique = itertools.count(highest_seen + 1)
