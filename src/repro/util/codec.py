"""Text record codec for on-disk Ficus metadata.

Ficus stores directories, auxiliary replication attributes and graft points
as ordinary UFS *files* (paper Sections 2.6, 4.3).  Those files need a byte
format.  We use a line-oriented ``key=value`` record format with escaping, so
that metadata files are human-inspectable (handy when debugging a simulated
disk image) and so that arbitrary user-supplied names round-trip exactly.

A *record* is one line of ``key=value`` fields separated by spaces; a file is
a sequence of records separated by newlines.  Values are escaped so they may
contain spaces, newlines, ``=`` and arbitrary unicode.
"""

from __future__ import annotations

from repro.errors import InvalidArgument

_ESCAPES = {
    "\\": "\\\\",
    " ": "\\s",
    "\n": "\\n",
    "=": "\\e",
    # Pipe separates fields of encoded operations (physical layer wire
    # format), so it must never appear raw in an escaped value.
    "|": "\\p",
}
_UNESCAPES = {v[1]: k for k, v in _ESCAPES.items()}
_ESCAPE_TABLE = str.maketrans(_ESCAPES)
_NEEDS_ESCAPE = set(_ESCAPES)


def escape_value(value: str) -> str:
    """Escape a field value so it contains no space, newline or ``=``."""
    # fast path: hex handles, plain names etc. need no escaping at all
    if not _NEEDS_ESCAPE.intersection(value):
        return value
    return value.translate(_ESCAPE_TABLE)


def unescape_value(value: str) -> str:
    """Inverse of :func:`escape_value`."""
    if "\\" not in value:
        return value
    pieces = value.split("\\")
    out = [pieces[0]]
    i = 1
    while i < len(pieces):
        piece = pieces[i]
        if piece:
            code = piece[0]
            if code not in _UNESCAPES:
                raise InvalidArgument(f"unknown escape in {value!r}")
            out.append(_UNESCAPES[code])
            out.append(piece[1:])
            i += 1
        else:
            # an empty piece between two backslashes encodes a literal
            # backslash; an empty piece at the END is a dangling escape
            if i == len(pieces) - 1:
                raise InvalidArgument(f"dangling escape in {value!r}")
            out.append("\\")
            out.append(pieces[i + 1])
            i += 2
    return "".join(out)


def encode_record(fields: dict[str, str]) -> str:
    """Encode one record (dict of string fields) as a single line."""
    parts = []
    for key, value in fields.items():
        if not key or any(c in key for c in " =\n\\"):
            raise InvalidArgument(f"bad record key {key!r}")
        parts.append(f"{key}={escape_value(value)}")
    return " ".join(parts)


def decode_record(line: str) -> dict[str, str]:
    """Decode one record line back into a dict of string fields."""
    fields: dict[str, str] = {}
    if not line:
        return fields
    for part in line.split(" "):
        if "=" not in part:
            raise InvalidArgument(f"bad record field {part!r}")
        key, _, raw = part.partition("=")
        fields[key] = unescape_value(raw)
    return fields


def encode_records(records: list[dict[str, str]]) -> bytes:
    """Encode a list of records as file contents."""
    return "\n".join(encode_record(r) for r in records).encode("utf-8")


def decode_records(data: bytes) -> list[dict[str, str]]:
    """Decode file contents back into a list of records."""
    text = data.decode("utf-8")
    if not text:
        return []
    return [decode_record(line) for line in text.split("\n")]
