"""Shared utilities: Ficus identifiers, virtual time, record codec."""

from repro.util.clock import VirtualClock
from repro.util.codec import (
    decode_record,
    decode_records,
    encode_record,
    encode_records,
    escape_value,
    unescape_value,
)
from repro.util.ids import (
    MAX_ID,
    FicusFileHandle,
    FileId,
    FileIdAllocator,
    IdAllocator,
    VolumeId,
    VolumeReplicaId,
)

__all__ = [
    "MAX_ID",
    "FicusFileHandle",
    "FileId",
    "FileIdAllocator",
    "IdAllocator",
    "VirtualClock",
    "VolumeId",
    "VolumeReplicaId",
    "decode_record",
    "decode_records",
    "encode_record",
    "encode_records",
    "escape_value",
    "unescape_value",
]
