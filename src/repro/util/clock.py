"""Virtual time.

Everything in the repro runs against a discrete-event virtual clock so that
experiments are deterministic: daemons, RPC timeouts, propagation delays and
partition schedules all consume the same time source.
"""

from __future__ import annotations

from repro.errors import InvalidArgument


class VirtualClock:
    """A monotonically advancing virtual clock (seconds as float)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise InvalidArgument(f"cannot advance clock by {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to absolute time ``when`` (no-op if in past)."""
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f})"
