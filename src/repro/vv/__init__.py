"""Version vectors for mutual-inconsistency detection (Parker et al.)."""

from repro.vv.vector import Ordering, VersionVector

__all__ = ["Ordering", "VersionVector"]
