"""Version vectors (Parker et al., IEEE TSE 1983; paper Section 3.1).

"Associated with each file replica is a version vector which encodes the
update history of the replica.  Version vectors are used to support
concurrent, unsynchronized updates to file replicas managed by
non-communicating physical layers."

A version vector maps a replica-id to the count of updates that replica has
originated.  Comparing two vectors classifies the replicas' histories:

* ``EQUAL``      — same history; nothing to do.
* ``DOMINATES``  — ours strictly includes theirs; they should pull from us.
* ``DOMINATED``  — theirs strictly includes ours; we should pull from them.
* ``CONCURRENT`` — neither includes the other: a conflicting update pair.
  For regular files this is reported to the owner; for directories Ficus
  repairs it automatically (paper Sections 1, 3.3).
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Mapping

from repro.errors import InvalidArgument


class Ordering(enum.Enum):
    """Result of comparing two version vectors (a partial order)."""

    EQUAL = "equal"
    DOMINATES = "dominates"
    DOMINATED = "dominated"
    CONCURRENT = "concurrent"


class VersionVector(Mapping[int, int]):
    """An immutable mapping replica-id -> update count.

    Zero entries are normalized away so that vectors compare by value
    regardless of which replicas happen to be mentioned explicitly.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[int, int] | None = None):
        cleaned: dict[int, int] = {}
        for rid, count in (counts or {}).items():
            if count < 0:
                raise InvalidArgument(f"negative count {count} for replica {rid}")
            if count:
                cleaned[int(rid)] = int(count)
        self._counts = cleaned

    # -- Mapping protocol --

    def __getitem__(self, rid: int) -> int:
        return self._counts.get(rid, 0)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, rid: object) -> bool:
        return rid in self._counts

    # -- value semantics --

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VersionVector):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        inner = ",".join(f"{r}:{c}" for r, c in sorted(self._counts.items()))
        return f"vv<{inner}>"

    # -- algebra --

    def bump(self, replica_id: int, by: int = 1) -> "VersionVector":
        """Record ``by`` more updates originated at ``replica_id``."""
        if by < 0:
            raise InvalidArgument("bump must be non-negative")
        fresh = dict(self._counts)
        fresh[replica_id] = fresh.get(replica_id, 0) + by
        return VersionVector(fresh)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum — the least upper bound of two histories."""
        fresh = dict(self._counts)
        for rid, count in other._counts.items():
            if count > fresh.get(rid, 0):
                fresh[rid] = count
        return VersionVector(fresh)

    def compare(self, other: "VersionVector") -> Ordering:
        """Classify the relationship of two update histories."""
        self_ge = all(self[rid] >= count for rid, count in other._counts.items())
        other_ge = all(other[rid] >= count for rid, count in self._counts.items())
        if self_ge and other_ge:
            return Ordering.EQUAL
        if self_ge:
            return Ordering.DOMINATES
        if other_ge:
            return Ordering.DOMINATED
        return Ordering.CONCURRENT

    def dominates(self, other: "VersionVector") -> bool:
        """True when this history includes the other (>= pointwise)."""
        return self.compare(other) in (Ordering.EQUAL, Ordering.DOMINATES)

    def strictly_dominates(self, other: "VersionVector") -> bool:
        return self.compare(other) is Ordering.DOMINATES

    def concurrent_with(self, other: "VersionVector") -> bool:
        return self.compare(other) is Ordering.CONCURRENT

    @property
    def total_updates(self) -> int:
        """Total updates across all replicas (a coarse recency measure)."""
        return sum(self._counts.values())

    # -- serialization (stored in the auxiliary attribute file) --

    def encode(self) -> str:
        return ",".join(f"{rid}:{count}" for rid, count in sorted(self._counts.items()))

    @classmethod
    def decode(cls, text: str) -> "VersionVector":
        if not text:
            return cls()
        counts: dict[int, int] = {}
        for item in text.split(","):
            rid, _, count = item.partition(":")
            try:
                counts[int(rid)] = int(count)
            except ValueError as exc:
                raise InvalidArgument(f"bad version vector text {text!r}") from exc
        return cls(counts)
