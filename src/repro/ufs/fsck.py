"""fsck-style consistency checker for the simulated UFS.

Used as a property-test oracle: after any sequence of namespace operations
(including injected crashes followed by remount) the file system must pass
these structural checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ufs.filesystem import Ufs
from repro.ufs.layout import NDIRECT, ROOT_INO


@dataclass
class FsckReport:
    """Findings of one checker run; clean when ``problems`` is empty."""

    problems: list[str] = field(default_factory=list)
    inodes_checked: int = 0
    blocks_referenced: int = 0

    @property
    def clean(self) -> bool:
        return not self.problems

    def complain(self, message: str) -> None:
        self.problems.append(message)


def fsck(fs: Ufs) -> FsckReport:
    """Run all structural checks; returns a report (never raises)."""
    report = FsckReport()
    seen_blocks: dict[int, int] = {}  # block -> owning ino
    link_counts: dict[int, int] = {}  # ino -> observed references
    subdir_counts: dict[int, int] = {}  # dir ino -> number of child dirs

    live = {}
    for ino in range(1, fs.sb.num_inodes + 1):
        inode = fs._get_inode_raw(ino)
        if inode.is_free:
            continue
        live[ino] = inode
        report.inodes_checked += 1

    # pass 1: block references and sizes
    for ino, inode in live.items():
        blocks = fs._file_blocks(inode)
        nonzero = [b for b in blocks if b]
        for blk in nonzero:
            if not fs.sb.data_start <= blk < fs.sb.num_blocks:
                report.complain(f"inode {ino}: block {blk} outside data region")
                continue
            if blk in seen_blocks:
                report.complain(f"block {blk} claimed by inodes {seen_blocks[blk]} and {ino}")
            seen_blocks[blk] = ino
            if not fs.block_allocated(blk):
                report.complain(f"inode {ino}: block {blk} in use but free in bitmap")
        if inode.indirect:
            if inode.indirect in seen_blocks:
                report.complain(f"indirect block {inode.indirect} of {ino} also claimed by {seen_blocks[inode.indirect]}")
            seen_blocks[inode.indirect] = ino
            if not fs.block_allocated(inode.indirect):
                report.complain(f"inode {ino}: indirect block {inode.indirect} free in bitmap")
        max_size = len(blocks) * fs.sb.block_size
        if blocks and inode.size > max_size:
            report.complain(f"inode {ino}: size {inode.size} exceeds mapped blocks")
        if inode.size > (NDIRECT + fs.sb.pointers_per_block) * fs.sb.block_size:
            report.complain(f"inode {ino}: size {inode.size} exceeds max file size")
    report.blocks_referenced = len(seen_blocks)

    # pass 2: bitmap has no blocks marked used that nobody references
    for blk in range(fs.sb.data_start, fs.sb.num_blocks):
        if fs.block_allocated(blk) and blk not in seen_blocks:
            report.complain(f"block {blk} marked used in bitmap but unreferenced")

    # pass 3: directory structure and link counts
    if ROOT_INO not in live:
        report.complain("root inode missing")
        return report
    reachable: set[int] = set()
    stack = [ROOT_INO]
    while stack:
        ino = stack.pop()
        if ino in reachable:
            continue
        reachable.add(ino)
        inode = live.get(ino)
        if inode is None:
            report.complain(f"directory tree references free inode {ino}")
            continue
        if not inode.is_dir:
            continue
        try:
            entries = fs._read_dir_entries(inode)
        except Exception as exc:  # corrupt directory data
            report.complain(f"directory {ino}: unreadable entries ({exc})")
            continue
        if entries.get(".") != ino:
            report.complain(f"directory {ino}: bad '.' entry {entries.get('.')}")
        if ".." not in entries:
            report.complain(f"directory {ino}: missing '..'")
        for name, child in entries.items():
            if child not in live:
                report.complain(f"directory {ino}: entry {name!r} -> free inode {child}")
                continue
            if name == ".":
                link_counts[ino] = link_counts.get(ino, 0) + 1
                continue
            if name == "..":
                link_counts[entries[".."]] = link_counts.get(entries[".."], 0) + 1
                continue
            link_counts[child] = link_counts.get(child, 0) + 1
            if live[child].is_dir:
                subdir_counts[ino] = subdir_counts.get(ino, 0) + 1
                stack.append(child)
            else:
                reachable.add(child)

    for ino, inode in live.items():
        if ino not in reachable:
            report.complain(f"inode {ino} allocated but unreachable from root")
            continue
        expected = link_counts.get(ino, 0)
        if inode.nlink != expected:
            report.complain(f"inode {ino}: nlink {inode.nlink}, observed references {expected}")

    return report
