"""The simulated UFS: inode-based file system over a block device.

This is the bottom layer of the Ficus stack ("Ficus can use the UFS as its
underlying nonvolatile storage service, which means Ficus is not burdened
with the details of how best to physically organize disk storage" — paper
Section 2.1).  It provides the classic Unix objects: inodes, regular files
with direct + single-indirect block mapping, directories with ``.``/``..``
entries and hard links, and a path lookup that exercises the buffer cache
and name cache the paper's performance notes rely on.
"""

from __future__ import annotations

from dataclasses import replace

from repro import fastpath
from repro.errors import (
    DirectoryNotEmpty,
    FicusError,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NameTooLong,
    NoSpace,
    NotADirectory,
)
from repro.storage import BlockDevice
from repro.ufs.cache import BufferCache, NameCache
from repro.ufs.inode import FileAttributes, FileType, Inode
from repro.ufs.layout import MAX_NAME_LEN, NDIRECT, ROOT_INO, Superblock
from repro.util import VirtualClock
from repro.util.codec import escape_value, unescape_value


def _encode_dirent(name: str, ino: int) -> str:
    return f"{escape_value(name)} {ino}"


def _decode_dirent(line: str) -> tuple[str, int]:
    raw, _, ino = line.rpartition(" ")
    return unescape_value(raw), int(ino)


class Ufs:
    """A mounted simulated Unix file system.

    Use :meth:`mkfs` to format a device and :meth:`mount` to attach to an
    already-formatted one (contents survive a simulated reboot).
    """

    def __init__(
        self,
        device: BlockDevice,
        superblock: Superblock,
        clock: VirtualClock | None = None,
        cache_blocks: int = 256,
        name_cache_size: int = 512,
    ):
        self.device = device
        self.sb = superblock
        self.clock = clock or VirtualClock()
        self.cache = BufferCache(device, capacity=cache_blocks)
        self.namecache = NameCache(capacity=name_cache_size)
        self._next_generation = 1
        # Decoded-inode cache: ino -> (buffer-cache epoch, master Inode).
        # Avoids re-unpacking the same inode block on every crossing; all
        # reads hand out CLONES (Inode is mutable) and every entry is
        # dropped when the buffer-cache epoch moves, so an invalidated
        # buffer cache also means cold decoded inodes (E3/E4 accounting).
        self._icache: dict[int, tuple[int, Inode]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def mkfs(
        cls,
        device: BlockDevice,
        num_inodes: int = 1024,
        clock: VirtualClock | None = None,
        cache_blocks: int = 256,
        name_cache_size: int = 512,
        inode_size: int | None = None,
    ) -> "Ufs":
        """Format ``device`` and return the mounted file system.

        ``inode_size`` overrides the bytes reserved per inode slot; pass
        the block size to isolate every inode in its own block (used by
        the Section-6 I/O-accounting experiments).
        """
        from repro.ufs.layout import INODE_SIZE

        sb = Superblock.compute(device, num_inodes, inode_size=inode_size or INODE_SIZE)
        device.write_block(0, sb.pack())
        zero = bytes(device.block_size)
        for blk in range(sb.inode_table_start, sb.data_start):
            device.write_block(blk, zero)
        fs = cls(device, sb, clock=clock, cache_blocks=cache_blocks, name_cache_size=name_cache_size)
        root = fs._alloc_inode(FileType.DIRECTORY, perm=0o755)
        assert root.ino == ROOT_INO, f"root allocated as {root.ino}"
        fs._write_dir_entries(root, {".": root.ino, "..": root.ino})
        root.nlink = 2
        fs._put_inode(root)
        return fs

    @classmethod
    def mount(
        cls,
        device: BlockDevice,
        clock: VirtualClock | None = None,
        cache_blocks: int = 256,
        name_cache_size: int = 512,
    ) -> "Ufs":
        """Attach to a previously formatted device (cold caches)."""
        sb = Superblock.unpack(device.read_block(0))
        fs = cls(device, sb, clock=clock, cache_blocks=cache_blocks, name_cache_size=name_cache_size)
        fs._next_generation = fs._scan_max_generation() + 1
        return fs

    def remount(self) -> "Ufs":
        """Simulate a reboot: same device, all caches cold."""
        return Ufs.mount(
            self.device,
            clock=self.clock,
            cache_blocks=self.cache.capacity,
            name_cache_size=self.namecache.capacity,
        )

    def _scan_max_generation(self) -> int:
        # Freed slots keep their generation, so scanning every slot (not
        # just allocated ones) yields the true high-water mark.
        return max(
            self._get_inode_raw(ino).generation for ino in range(1, self.sb.num_inodes + 1)
        )

    # -- inode table ----------------------------------------------------------

    def _get_inode_raw(self, ino: int) -> Inode:
        if fastpath.ENABLED and self.cache.capacity:
            entry = self._icache.get(ino)
            if entry is not None and entry[0] == self.cache.epoch:
                master = entry[1]
                return replace(master, direct=list(master.direct))
        block, offset = self.sb.inode_location(ino)
        data = self.cache.read(block)
        from repro.ufs.layout import INODE_SIZE

        inode = Inode.unpack(ino, data[offset : offset + INODE_SIZE])
        if fastpath.ENABLED and self.cache.capacity:
            self._icache[ino] = (
                self.cache.epoch,
                replace(inode, direct=list(inode.direct)),
            )
        return inode

    def get_inode(self, ino: int) -> Inode:
        """Read an inode; raises FileNotFound for a free slot."""
        inode = self._get_inode_raw(ino)
        if inode.is_free:
            raise FileNotFound(f"inode {ino} is not allocated")
        return inode

    def _put_inode(self, inode: Inode) -> None:
        block, offset = self.sb.inode_location(inode.ino)
        data = bytearray(self.cache.read(block))
        packed = inode.pack()
        data[offset : offset + len(packed)] = packed
        try:
            self.cache.write(block, bytes(data))
        except BaseException:
            # The block write may not have landed (fault injection): the
            # decoded copy can no longer be trusted to match the device.
            self._icache.pop(inode.ino, None)
            raise
        if fastpath.ENABLED and self.cache.capacity:
            self._icache[inode.ino] = (
                self.cache.epoch,
                replace(inode, direct=list(inode.direct)),
            )
        else:
            self._icache.pop(inode.ino, None)

    def _alloc_inode(self, ftype: FileType, perm: int = 0o644, uid: int = 0) -> Inode:
        for ino in range(ROOT_INO, self.sb.num_inodes + 1):
            inode = self._get_inode_raw(ino)
            if inode.is_free:
                now = self.clock.now()
                fresh = Inode(
                    ino=ino,
                    ftype=ftype,
                    perm=perm,
                    uid=uid,
                    nlink=0,
                    size=0,
                    atime=now,
                    mtime=now,
                    ctime=now,
                    generation=self._next_generation,
                )
                self._next_generation += 1
                self._put_inode(fresh)
                return fresh
        raise NoSpace("out of inodes")

    def _free_inode(self, inode: Inode) -> None:
        self._truncate_blocks(inode, 0)
        self.namecache.purge_ino(inode.ino)
        # Keep the generation in the freed slot (as 4.2BSD does) so a
        # re-allocation of this ino gets a strictly larger generation and
        # stale NFS file handles can be detected after remount.
        self._put_inode(Inode(ino=inode.ino, ftype=FileType.NONE, generation=inode.generation))

    # -- free-block bitmap ------------------------------------------------------

    def _alloc_block(self) -> int:
        for blk in range(self.sb.data_start, self.sb.num_blocks):
            bm_block, byte_off, bit = self.sb.bitmap_location(blk)
            data = self.cache.read(bm_block)
            if not (data[byte_off] >> bit) & 1:
                buf = bytearray(data)
                buf[byte_off] |= 1 << bit
                self.cache.write(bm_block, bytes(buf))
                return blk
        raise NoSpace("out of data blocks")

    def _free_block(self, blk: int) -> None:
        bm_block, byte_off, bit = self.sb.bitmap_location(blk)
        buf = bytearray(self.cache.read(bm_block))
        buf[byte_off] &= ~(1 << bit)
        self.cache.write(bm_block, bytes(buf))

    def block_allocated(self, blk: int) -> bool:
        bm_block, byte_off, bit = self.sb.bitmap_location(blk)
        data = self.cache.read(bm_block)
        return bool((data[byte_off] >> bit) & 1)

    # -- block mapping (direct + single indirect) --------------------------------

    def _max_file_blocks(self) -> int:
        return NDIRECT + self.sb.pointers_per_block

    def _read_indirect(self, inode: Inode) -> list[int]:
        if inode.indirect == 0:
            return [0] * self.sb.pointers_per_block
        data = self.cache.read(inode.indirect)
        ptrs = []
        for i in range(self.sb.pointers_per_block):
            ptrs.append(int.from_bytes(data[i * 4 : i * 4 + 4], "little"))
        return ptrs

    def _write_indirect(self, inode: Inode, ptrs: list[int]) -> None:
        if inode.indirect == 0:
            inode.indirect = self._alloc_block()
        raw = b"".join(p.to_bytes(4, "little") for p in ptrs)
        self.cache.write(inode.indirect, raw.ljust(self.sb.block_size, b"\x00"))

    def _bmap(self, inode: Inode, file_block: int, allocate: bool) -> int:
        """Map a file-relative block index to a device block (0 = hole)."""
        if file_block >= self._max_file_blocks():
            raise NoSpace(f"file block {file_block} exceeds max file size")
        if file_block < NDIRECT:
            blk = inode.direct[file_block]
            if blk == 0 and allocate:
                blk = self._alloc_block()
                inode.direct[file_block] = blk
            return blk
        ptrs = self._read_indirect(inode)
        idx = file_block - NDIRECT
        blk = ptrs[idx]
        if blk == 0 and allocate:
            blk = self._alloc_block()
            ptrs[idx] = blk
            self._write_indirect(inode, ptrs)
        return blk

    def _file_blocks(self, inode: Inode) -> list[int]:
        """All allocated device blocks of a file, in file order."""
        nblocks = (inode.size + self.sb.block_size - 1) // self.sb.block_size
        out = []
        ptrs = None
        for i in range(nblocks):
            if i < NDIRECT:
                out.append(inode.direct[i])
            else:
                if ptrs is None:
                    ptrs = self._read_indirect(inode)
                out.append(ptrs[i - NDIRECT])
        return out

    # -- file data I/O -------------------------------------------------------------

    def read_file(self, ino: int, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes at ``offset`` (to EOF when length is None)."""
        inode = self.get_inode(ino)
        return self._read_inode_data(inode, offset, length)

    def _read_inode_data(self, inode: Inode, offset: int = 0, length: int | None = None) -> bytes:
        if offset < 0:
            raise InvalidArgument("negative offset")
        if offset >= inode.size:
            return b""
        end = inode.size if length is None else min(inode.size, offset + length)
        bs = self.sb.block_size
        chunks = []
        pos = offset
        while pos < end:
            fblock, in_off = divmod(pos, bs)
            blk = self._bmap(inode, fblock, allocate=False)
            take = min(bs - in_off, end - pos)
            if blk == 0:
                chunks.append(bytes(take))
            else:
                chunks.append(self.cache.read(blk)[in_off : in_off + take])
            pos += take
        inode.atime = self.clock.now()
        return b"".join(chunks)

    def write_file(self, ino: int, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, extending the file as needed."""
        inode = self.get_inode(ino)
        try:
            self._write_inode_data(inode, offset, data)
        except BaseException:
            # Persist whatever landed even when the write fails part-way
            # (NoSpace, injected crash): blocks already allocated must be
            # reachable from the inode or fsck would report them leaked.
            # A secondary failure of this best-effort write (the device
            # just crashed, after all) must not mask the original error.
            try:
                self._put_inode(inode)
            except FicusError:
                pass
            raise
        self._put_inode(inode)

    def _write_inode_data(self, inode: Inode, offset: int, data: bytes) -> None:
        if offset < 0:
            raise InvalidArgument("negative offset")
        bs = self.sb.block_size
        pos = offset
        remaining = memoryview(bytes(data))
        while remaining:
            fblock, in_off = divmod(pos, bs)
            take = min(bs - in_off, len(remaining))
            blk = self._bmap(inode, fblock, allocate=True)
            if in_off == 0 and take == bs:
                block_data = bytes(remaining[:take])
            else:
                buf = bytearray(self.cache.read(blk))
                buf[in_off : in_off + take] = remaining[:take]
                block_data = bytes(buf)
            self.cache.write(blk, block_data)
            pos += take
            remaining = remaining[take:]
            # Grow size as blocks land so a mid-write failure (NoSpace,
            # injected crash) never leaves allocated blocks unaccounted.
            inode.size = max(inode.size, pos)
        inode.size = max(inode.size, offset + len(data))
        now = self.clock.now()
        inode.mtime = now
        inode.ctime = now

    def truncate_file(self, ino: int, size: int) -> None:
        """Shrink or zero-extend a file to ``size`` bytes."""
        inode = self.get_inode(ino)
        self._truncate_blocks(inode, size)
        inode.size = size
        now = self.clock.now()
        inode.mtime = now
        inode.ctime = now
        self._put_inode(inode)

    def _truncate_blocks(self, inode: Inode, size: int) -> None:
        bs = self.sb.block_size
        keep = (size + bs - 1) // bs
        ptrs = self._read_indirect(inode) if inode.indirect else None
        nblocks = (inode.size + bs - 1) // bs
        for i in range(keep, nblocks):
            if i < NDIRECT:
                if inode.direct[i]:
                    self._free_block(inode.direct[i])
                    inode.direct[i] = 0
            elif ptrs is not None and ptrs[i - NDIRECT]:
                self._free_block(ptrs[i - NDIRECT])
                ptrs[i - NDIRECT] = 0
        if ptrs is not None:
            if keep <= NDIRECT and inode.indirect:
                self._free_block(inode.indirect)
                inode.indirect = 0
            else:
                self._write_indirect(inode, ptrs)
        # Zero the tail of the final kept block so old bytes never resurface.
        if size % bs and keep <= nblocks:
            last = self._bmap(inode, keep - 1, allocate=False)
            if last:
                buf = bytearray(self.cache.read(last))
                buf[size % bs :] = bytes(bs - size % bs)
                self.cache.write(last, bytes(buf))

    # -- directories ------------------------------------------------------------

    def _read_dir_entries(self, inode: Inode) -> dict[str, int]:
        if not inode.is_dir:
            raise NotADirectory(f"inode {inode.ino} is not a directory")
        raw = self._read_inode_data(inode)
        entries: dict[str, int] = {}
        if raw:
            for line in raw.decode("utf-8").split("\n"):
                if line:
                    name, ino = _decode_dirent(line)
                    entries[name] = ino
        return entries

    def _write_dir_entries(self, inode: Inode, entries: dict[str, int]) -> None:
        """Rewrite a directory's entry records, in place where possible.

        Directory data is padded to whole blocks (the decoder skips blank
        lines), so an update that keeps the block count rewrites existing
        blocks in place with no inode change — a one-block directory is
        then updated by a SINGLE block write, which is the atomicity the
        shadow-commit rename relies on ("the shadow atomically replaces
        the original by changing a low-level directory reference").
        """
        text = "\n".join(_encode_dirent(name, ino) for name, ino in sorted(entries.items()))
        data = text.encode("utf-8")
        bs = self.sb.block_size
        new_size = max(bs, ((len(data) + bs - 1) // bs) * bs)
        padded = data.ljust(new_size, b"\n")
        old_size = inode.size
        self._write_inode_data(inode, 0, padded)
        if new_size < old_size:
            # shrink AFTER the new prefix is durable; the inode write is
            # the commit point, block frees follow
            self._truncate_blocks(inode, new_size)
            inode.size = new_size
        now = self.clock.now()
        inode.mtime = now
        inode.ctime = now
        self._put_inode(inode)

    def readdir(self, dir_ino: int) -> dict[str, int]:
        """Return all entries of a directory, including ``.`` and ``..``."""
        return self._read_dir_entries(self.get_inode(dir_ino))

    def lookup(self, dir_ino: int, name: str) -> int:
        """Resolve one name component (through the DNLC)."""
        self._check_name(name)
        cached = self.namecache.lookup(dir_ino, name)
        if cached is not None:
            return cached
        entries = self._read_dir_entries(self.get_inode(dir_ino))
        if name not in entries:
            raise FileNotFound(f"{name!r} not found in directory {dir_ino}")
        ino = entries[name]
        self.namecache.enter(dir_ino, name, ino)
        return ino

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or name == "." * len(name) and len(name) > 2:
            raise InvalidArgument(f"bad name component {name!r}")
        if "/" in name or "\x00" in name:
            raise InvalidArgument(f"name {name!r} contains / or NUL")
        if len(name) > MAX_NAME_LEN:
            raise NameTooLong(f"name of {len(name)} chars exceeds {MAX_NAME_LEN}")

    def _add_entry(self, dir_inode: Inode, name: str, ino: int) -> None:
        entries = self._read_dir_entries(dir_inode)
        if name in entries:
            raise FileExists(f"{name!r} already exists in directory {dir_inode.ino}")
        entries[name] = ino
        self._write_dir_entries(dir_inode, entries)
        self.namecache.enter(dir_inode.ino, name, ino)

    def _remove_entry(self, dir_inode: Inode, name: str) -> int:
        entries = self._read_dir_entries(dir_inode)
        if name not in entries:
            raise FileNotFound(f"{name!r} not found in directory {dir_inode.ino}")
        ino = entries.pop(name)
        self._write_dir_entries(dir_inode, entries)
        self.namecache.remove(dir_inode.ino, name)
        return ino

    # -- namespace operations -------------------------------------------------

    def create(self, dir_ino: int, name: str, perm: int = 0o644, uid: int = 0) -> int:
        """Create an empty regular file; returns its inode number."""
        self._check_name(name)
        dir_inode = self.get_inode(dir_ino)
        inode = self._alloc_inode(FileType.REGULAR, perm=perm, uid=uid)
        inode.nlink = 1
        self._put_inode(inode)
        try:
            self._add_entry(dir_inode, name, inode.ino)
        except FileExists:
            self._free_inode(inode)
            raise
        return inode.ino

    def mkdir(self, dir_ino: int, name: str, perm: int = 0o755, uid: int = 0) -> int:
        """Create a subdirectory with ``.`` and ``..``; returns its ino."""
        self._check_name(name)
        parent = self.get_inode(dir_ino)
        if not parent.is_dir:
            raise NotADirectory(f"inode {dir_ino} is not a directory")
        inode = self._alloc_inode(FileType.DIRECTORY, perm=perm, uid=uid)
        self._write_dir_entries(inode, {".": inode.ino, "..": dir_ino})
        inode = self.get_inode(inode.ino)
        inode.nlink = 2
        self._put_inode(inode)
        try:
            self._add_entry(parent, name, inode.ino)
        except FileExists:
            self._free_inode(inode)
            raise
        parent = self.get_inode(dir_ino)
        parent.nlink += 1
        self._put_inode(parent)
        return inode.ino

    def symlink(self, dir_ino: int, name: str, target: str, uid: int = 0) -> int:
        """Create a symbolic link whose data is ``target``."""
        self._check_name(name)
        dir_inode = self.get_inode(dir_ino)
        inode = self._alloc_inode(FileType.SYMLINK, perm=0o777, uid=uid)
        inode.nlink = 1
        self._write_inode_data(inode, 0, target.encode("utf-8"))
        self._put_inode(inode)
        try:
            self._add_entry(dir_inode, name, inode.ino)
        except FileExists:
            self._free_inode(inode)
            raise
        return inode.ino

    def readlink(self, ino: int) -> str:
        inode = self.get_inode(ino)
        if inode.ftype != FileType.SYMLINK:
            raise InvalidArgument(f"inode {ino} is not a symlink")
        return self._read_inode_data(inode).decode("utf-8")

    def link(self, ino: int, dir_ino: int, name: str) -> None:
        """Create a hard link to an existing file (not a directory)."""
        self._check_name(name)
        inode = self.get_inode(ino)
        if inode.is_dir:
            raise IsADirectory("hard links to directories are not allowed")
        dir_inode = self.get_inode(dir_ino)
        self._add_entry(dir_inode, name, ino)
        inode.nlink += 1
        inode.ctime = self.clock.now()
        self._put_inode(inode)

    def unlink(self, dir_ino: int, name: str) -> None:
        """Remove a name; frees the inode when the last link goes."""
        dir_inode = self.get_inode(dir_ino)
        entries = self._read_dir_entries(dir_inode)
        if name not in entries:
            raise FileNotFound(f"{name!r} not found in directory {dir_ino}")
        inode = self.get_inode(entries[name])
        if inode.is_dir:
            raise IsADirectory(f"{name!r} is a directory; use rmdir")
        self._remove_entry(dir_inode, name)
        inode.nlink -= 1
        inode.ctime = self.clock.now()
        if inode.nlink <= 0:
            self._free_inode(inode)
        else:
            self._put_inode(inode)

    def rmdir(self, dir_ino: int, name: str) -> None:
        """Remove an empty subdirectory."""
        if name in (".", ".."):
            raise InvalidArgument(f"cannot rmdir {name!r}")
        parent = self.get_inode(dir_ino)
        target_ino = self.lookup(dir_ino, name)
        target = self.get_inode(target_ino)
        if not target.is_dir:
            raise NotADirectory(f"{name!r} is not a directory")
        entries = self._read_dir_entries(target)
        if set(entries) - {".", ".."}:
            raise DirectoryNotEmpty(f"directory {name!r} is not empty")
        self._remove_entry(parent, name)
        self.namecache.purge_dir(target_ino)
        self._free_inode(target)
        parent = self.get_inode(dir_ino)
        parent.nlink -= 1
        self._put_inode(parent)

    def rename(self, src_dir: int, src_name: str, dst_dir: int, dst_name: str) -> None:
        """Rename within the file system; replaces a non-directory target.

        A same-directory rename is applied as ONE directory rewrite (for a
        one-block directory, one block write): the atomic low-level
        reference change that the Ficus shadow commit depends on.  Any
        replaced target's inode is released only after the new directory
        state is durable.
        """
        self._check_name(dst_name)
        src_ino = self.lookup(src_dir, src_name)
        src_inode = self.get_inode(src_ino)
        replaced_ino: int | None = None
        dst_dinode = self.get_inode(dst_dir)
        dst_entries = self._read_dir_entries(dst_dinode)
        if dst_name in dst_entries and dst_entries[dst_name] != src_ino:
            existing = self.get_inode(dst_entries[dst_name])
            if existing.is_dir:
                raise IsADirectory(f"rename target {dst_name!r} is a directory")
            replaced_ino = existing.ino

        if src_dir == dst_dir:
            entries = self._read_dir_entries(self.get_inode(src_dir))
            del entries[src_name]
            entries[dst_name] = src_ino
            self._write_dir_entries(self.get_inode(src_dir), entries)
            self.namecache.remove(src_dir, src_name)
            self.namecache.enter(src_dir, dst_name, src_ino)
        else:
            # cross-directory: add the new name first so a crash between
            # the two writes leaves the file reachable (never lost)
            if dst_name in dst_entries:
                entries = dict(dst_entries)
                entries[dst_name] = src_ino
                self._write_dir_entries(self.get_inode(dst_dir), entries)
                self.namecache.enter(dst_dir, dst_name, src_ino)
            else:
                self._add_entry(self.get_inode(dst_dir), dst_name, src_ino)
            self._remove_entry(self.get_inode(src_dir), src_name)

        if replaced_ino is not None:
            replaced = self.get_inode(replaced_ino)
            replaced.nlink -= 1
            replaced.ctime = self.clock.now()
            if replaced.nlink <= 0:
                self._free_inode(replaced)
            else:
                self._put_inode(replaced)
        if src_inode.is_dir and src_dir != dst_dir:
            # fix .. and parent link counts
            entries = self._read_dir_entries(self.get_inode(src_ino))
            entries[".."] = dst_dir
            self._write_dir_entries(self.get_inode(src_ino), entries)
            old_parent = self.get_inode(src_dir)
            old_parent.nlink -= 1
            self._put_inode(old_parent)
            new_parent = self.get_inode(dst_dir)
            new_parent.nlink += 1
            self._put_inode(new_parent)

    # -- attributes & paths ---------------------------------------------------

    def getattr(self, ino: int) -> FileAttributes:
        return FileAttributes.from_inode(self.get_inode(ino))

    def setattr(self, ino: int, perm: int | None = None, uid: int | None = None) -> None:
        inode = self.get_inode(ino)
        if perm is not None:
            inode.perm = perm & 0o7777
        if uid is not None:
            inode.uid = uid
        inode.ctime = self.clock.now()
        self._put_inode(inode)

    def path_lookup(self, path: str, base: int = ROOT_INO) -> int:
        """Resolve a slash-separated path to an inode number."""
        ino = ROOT_INO if path.startswith("/") else base
        for part in path.split("/"):
            if part:
                ino = self.lookup(ino, part)
        return ino

    # -- convenience for higher layers ----------------------------------------

    def write_file_atomic_contents(self, ino: int, data: bytes) -> None:
        """Replace the entire contents of a file (truncate + write)."""
        self.truncate_file(ino, 0)
        if data:
            self.write_file(ino, 0, data)

    def free_inode_count(self) -> int:
        return sum(
            1
            for ino in range(ROOT_INO, self.sb.num_inodes + 1)
            if self._get_inode_raw(ino).is_free
        )

    def free_block_count(self) -> int:
        return sum(
            1
            for blk in range(self.sb.data_start, self.sb.num_blocks)
            if not self.block_allocated(blk)
        )
