"""UFS caching: buffer cache and directory-name-lookup cache.

The paper leans on Floyd's locality studies ([5], [6]) to argue that "the
existing UFS caching mechanisms [can] continue to exploit the strong
directory and file reference locality", which is why the Ficus dual-mapping
scheme does not repeat the poor performance of the early AFS prototype.
Both caches here are the mechanisms that argument depends on:

* :class:`BufferCache` — an LRU write-through cache of disk blocks.  A warm
  hit costs zero device I/Os, which is exactly the paper's claim that
  "opening a recently accessed file or directory involves no overhead not
  already incurred by the normal Unix file system".
* :class:`NameCache` — the directory name lookup cache (DNLC): maps
  ``(directory inode, component name)`` to an inode number so warm lookups
  skip the directory scan entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import InvalidArgument
from repro.storage import BlockDevice


@dataclass
class CacheStats:
    """Hit/miss accounting for either cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses)


class BufferCache:
    """LRU write-through block cache in front of a :class:`BlockDevice`.

    Write-through keeps crash semantics trivial (the device always holds
    every acknowledged write) while still giving reads the locality benefit
    the paper's I/O accounting assumes.
    """

    def __init__(self, device: BlockDevice, capacity: int = 256):
        if capacity < 0:
            raise InvalidArgument(f"cache capacity must be >= 0, got {capacity}")
        self.device = device
        self.capacity = capacity
        self.stats = CacheStats()
        #: Coherence stamp for decoded-object caches layered above this
        #: one (inode cache, replica-store metadata caches).  Bumped when
        #: blocks are invalidated, so "cold buffer cache" also means
        #: "cold decoded caches" and the paper's E3/E4 disk-I/O counts
        #: stay byte-for-byte intact.
        self.epoch = 0
        self._lru: OrderedDict[int, bytes] = OrderedDict()

    @property
    def caching_enabled(self) -> bool:
        """False when capacity is 0 (the "no caches" ablation): decoded
        caches layered above must disable with the block cache, or a
        "warm" open would dodge the disk I/O the ablation measures."""
        return self.capacity > 0

    def read(self, blockno: int) -> bytes:
        """Read a block, hitting the cache when possible."""
        if blockno in self._lru:
            self.stats.hits += 1
            self._lru.move_to_end(blockno)
            return self._lru[blockno]
        self.stats.misses += 1
        data = self.device.read_block(blockno)
        self._insert(blockno, data)
        return data

    def write(self, blockno: int, data: bytes) -> None:
        """Write-through: the device sees the write immediately."""
        self.device.write_block(blockno, data)
        self._insert(blockno, bytes(data))

    def _insert(self, blockno: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        self._lru[blockno] = data
        self._lru.move_to_end(blockno)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def invalidate(self, blockno: int) -> None:
        self.epoch += 1
        self._lru.pop(blockno, None)

    def invalidate_all(self) -> None:
        """Drop every cached block (simulates a cold cache / reboot)."""
        self.epoch += 1
        self._lru.clear()

    def __contains__(self, blockno: int) -> bool:
        return blockno in self._lru

    def __len__(self) -> int:
        return len(self._lru)


class NameCache:
    """Directory name lookup cache: ``(dir ino, name) -> ino`` with LRU.

    Negative entries are not cached (matching the simple SunOS DNLC), and
    any directory modification must invalidate the affected names.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 0:
            raise InvalidArgument(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lru: OrderedDict[tuple[int, str], int] = OrderedDict()

    def lookup(self, dir_ino: int, name: str) -> int | None:
        key = (dir_ino, name)
        if key in self._lru:
            self.stats.hits += 1
            self._lru.move_to_end(key)
            return self._lru[key]
        self.stats.misses += 1
        return None

    def enter(self, dir_ino: int, name: str, ino: int) -> None:
        if self.capacity == 0:
            return
        key = (dir_ino, name)
        self._lru[key] = ino
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def remove(self, dir_ino: int, name: str) -> None:
        self._lru.pop((dir_ino, name), None)

    def purge_dir(self, dir_ino: int) -> None:
        """Drop every entry under one directory (e.g. after rmdir)."""
        stale = [key for key in self._lru if key[0] == dir_ino]
        for key in stale:
            del self._lru[key]

    def purge_ino(self, ino: int) -> None:
        """Drop every entry resolving to ``ino`` (e.g. after inode free)."""
        stale = [key for key, value in self._lru.items() if value == ino]
        for key in stale:
            del self._lru[key]

    def invalidate_all(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)
