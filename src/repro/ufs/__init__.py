"""Simulated UFS substrate: inodes, buffer cache, DNLC, directories, fsck."""

from repro.ufs.cache import BufferCache, CacheStats, NameCache
from repro.ufs.filesystem import Ufs
from repro.ufs.fsck import FsckReport, fsck
from repro.ufs.inode import FileAttributes, FileType, Inode
from repro.ufs.layout import MAX_NAME_LEN, NDIRECT, ROOT_INO, Superblock

__all__ = [
    "BufferCache",
    "CacheStats",
    "FileAttributes",
    "FileType",
    "FsckReport",
    "Inode",
    "MAX_NAME_LEN",
    "NDIRECT",
    "NameCache",
    "ROOT_INO",
    "Superblock",
    "Ufs",
    "fsck",
]
