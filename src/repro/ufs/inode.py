"""In-memory inode representation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ufs.layout import NDIRECT, pack_inode_slot, unpack_inode_slot


class FileType(enum.IntEnum):
    """File types, encoded in the high bits of the mode word."""

    NONE = 0  # free inode slot
    REGULAR = 1
    DIRECTORY = 2
    SYMLINK = 3


_TYPE_SHIFT = 12
_PERM_MASK = 0o7777


@dataclass
class Inode:
    """One in-memory inode.  Mirrors the 128-byte on-disk slot exactly."""

    ino: int
    ftype: FileType = FileType.NONE
    perm: int = 0o644
    nlink: int = 0
    uid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    direct: list[int] = field(default_factory=lambda: [0] * NDIRECT)
    indirect: int = 0
    generation: int = 0

    @property
    def mode(self) -> int:
        return (int(self.ftype) << _TYPE_SHIFT) | (self.perm & _PERM_MASK)

    @property
    def is_dir(self) -> bool:
        return self.ftype == FileType.DIRECTORY

    @property
    def is_regular(self) -> bool:
        return self.ftype == FileType.REGULAR

    @property
    def is_free(self) -> bool:
        return self.ftype == FileType.NONE

    def pack(self) -> bytes:
        fields = (
            self.mode,
            self.nlink,
            self.uid,
            self.size,
            self.atime,
            self.mtime,
            self.ctime,
            *self.direct,
            self.indirect,
            self.generation,
        )
        return pack_inode_slot(fields)

    @classmethod
    def unpack(cls, ino: int, data: bytes) -> "Inode":
        fields = unpack_inode_slot(data)
        mode, nlink, uid, size, atime, mtime, ctime = fields[:7]
        direct = list(fields[7 : 7 + NDIRECT])
        indirect, generation = fields[7 + NDIRECT :]
        return cls(
            ino=ino,
            ftype=FileType(mode >> _TYPE_SHIFT),
            perm=mode & _PERM_MASK,
            nlink=nlink,
            uid=uid,
            size=size,
            atime=atime,
            mtime=mtime,
            ctime=ctime,
            direct=direct,
            indirect=indirect,
            generation=generation,
        )


@dataclass(frozen=True)
class FileAttributes:
    """The getattr result passed across the vnode interface.

    A plain value object (never a live inode) so that attributes can cross
    an NFS hop by copy, matching NFS's fattr.
    """

    ftype: FileType
    perm: int
    nlink: int
    uid: int
    size: int
    atime: float
    mtime: float
    ctime: float
    fileid: int
    generation: int = 0

    @classmethod
    def from_inode(cls, inode: Inode) -> "FileAttributes":
        return cls(
            ftype=inode.ftype,
            perm=inode.perm,
            nlink=inode.nlink,
            uid=inode.uid,
            size=inode.size,
            atime=inode.atime,
            mtime=inode.mtime,
            ctime=inode.ctime,
            fileid=inode.ino,
            generation=inode.generation,
        )
