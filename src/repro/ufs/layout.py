"""On-disk layout of the simulated UFS.

The disk is divided into fixed regions, in the spirit of 4.2BSD (without
cylinder groups, which matter for seek locality we do not model):

    block 0                  superblock
    blocks 1 .. I            inode table   (INODES_PER_BLOCK slots per block)
    blocks I+1 .. B          free-block bitmap (1 bit per data block)
    blocks B+1 .. end        data blocks

Inodes are fixed 128-byte slots packed with :mod:`struct`, so every inode
read/write is one block I/O through the buffer cache — the unit the paper's
Section 6 accounting is stated in.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import InvalidArgument
from repro.storage import BlockDevice

#: Size of one on-disk inode slot.
INODE_SIZE = 128

#: Number of direct block pointers per inode (4.2BSD used 12).
NDIRECT = 12

#: Maximum length of one name component (classic UFS limit; the paper's
#: Section 2.3 note about 255 -> ~200 depends on this value).
MAX_NAME_LEN = 255

#: Reserved inode numbers. 0 = invalid, 1 = bad blocks (unused), 2 = root.
ROOT_INO = 2
FIRST_FREE_INO = 3

#: struct format of an inode slot:
#:   mode(u16) nlink(u16) uid(u32) size(u64) atime/mtime/ctime(f64 x3)
#:   direct pointers (u32 x NDIRECT) indirect(u32) generation(u32)
_INODE_FMT = f"<HHIQddd{NDIRECT}III"
_INODE_STRUCT = struct.Struct(_INODE_FMT)
assert _INODE_STRUCT.size <= INODE_SIZE

_SUPERBLOCK_MAGIC = b"UFSREPRO"
_SUPERBLOCK_FMT = "<8sIIIIIII"
_SUPERBLOCK_STRUCT = struct.Struct(_SUPERBLOCK_FMT)


@dataclass
class Superblock:
    """Filesystem geometry, stored in block 0."""

    block_size: int
    num_blocks: int
    num_inodes: int
    inode_table_start: int  # first block of the inode table
    bitmap_start: int  # first block of the free-block bitmap
    data_start: int  # first data block
    #: bytes reserved per inode slot.  The default packs several inodes
    #: per block (as 4.2BSD does); setting it to ``block_size`` isolates
    #: each inode in its own block, which makes "one inode fetch = one
    #: disk I/O" — the unit the paper's Section 6 accounting is stated in.
    inode_size: int = INODE_SIZE

    @property
    def inodes_per_block(self) -> int:
        return self.block_size // self.inode_size

    @property
    def num_data_blocks(self) -> int:
        return self.num_blocks - self.data_start

    @property
    def pointers_per_block(self) -> int:
        return self.block_size // 4

    def inode_location(self, ino: int) -> tuple[int, int]:
        """Map an inode number to (block number, byte offset in block)."""
        if not 1 <= ino <= self.num_inodes:
            raise InvalidArgument(f"inode {ino} out of range [1,{self.num_inodes}]")
        index = ino - 1
        block = self.inode_table_start + index // self.inodes_per_block
        offset = (index % self.inodes_per_block) * self.inode_size
        return block, offset

    def bitmap_location(self, data_block: int) -> tuple[int, int, int]:
        """Map a data block number to (bitmap block, byte offset, bit)."""
        if not self.data_start <= data_block < self.num_blocks:
            raise InvalidArgument(f"block {data_block} is not a data block")
        index = data_block - self.data_start
        bits_per_block = self.block_size * 8
        block = self.bitmap_start + index // bits_per_block
        rem = index % bits_per_block
        return block, rem // 8, rem % 8

    def pack(self) -> bytes:
        raw = _SUPERBLOCK_STRUCT.pack(
            _SUPERBLOCK_MAGIC,
            self.block_size,
            self.num_blocks,
            self.num_inodes,
            self.inode_table_start,
            self.bitmap_start,
            self.data_start,
            self.inode_size,
        )
        return raw.ljust(self.block_size, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "Superblock":
        magic, block_size, num_blocks, num_inodes, it, bm, ds, isz = _SUPERBLOCK_STRUCT.unpack_from(
            data
        )
        if magic != _SUPERBLOCK_MAGIC:
            raise InvalidArgument("not a repro-UFS superblock")
        return cls(block_size, num_blocks, num_inodes, it, bm, ds, isz)

    @classmethod
    def compute(
        cls, device: BlockDevice, num_inodes: int, inode_size: int = INODE_SIZE
    ) -> "Superblock":
        """Lay out regions for a device, validating there is room for data."""
        block_size = device.block_size
        if not INODE_SIZE <= inode_size <= block_size:
            raise InvalidArgument(
                f"inode_size must be in [{INODE_SIZE}, {block_size}], got {inode_size}"
            )
        inodes_per_block = block_size // inode_size
        inode_blocks = (num_inodes + inodes_per_block - 1) // inodes_per_block
        inode_table_start = 1
        bitmap_start = inode_table_start + inode_blocks
        # Upper bound on data blocks; a slightly generous bitmap is harmless.
        remaining = device.num_blocks - bitmap_start
        bits_per_block = block_size * 8
        bitmap_blocks = max(1, (remaining + bits_per_block - 1) // bits_per_block)
        data_start = bitmap_start + bitmap_blocks
        if data_start >= device.num_blocks:
            raise InvalidArgument(
                f"device too small: {device.num_blocks} blocks cannot hold "
                f"{num_inodes} inodes plus bitmap"
            )
        return cls(
            block_size=block_size,
            num_blocks=device.num_blocks,
            num_inodes=num_inodes,
            inode_table_start=inode_table_start,
            bitmap_start=bitmap_start,
            data_start=data_start,
            inode_size=inode_size,
        )


def pack_inode_slot(fields: tuple) -> bytes:
    """Pack inode fields into a 128-byte slot (padded)."""
    return _INODE_STRUCT.pack(*fields).ljust(INODE_SIZE, b"\x00")


def unpack_inode_slot(data: bytes) -> tuple:
    """Unpack a 128-byte inode slot into its field tuple."""
    return _INODE_STRUCT.unpack_from(data)
