"""Stackable vnode layer framework (paper Section 2)."""

from repro.vnode.interface import (
    ROOT_CRED,
    Credential,
    DirEntry,
    FileSystemLayer,
    OpCounters,
    SetAttrs,
    Vnode,
)
from repro.vnode.mount import MountLayer, MountVnode
from repro.vnode.passthrough import NullLayer, PassthroughVnode, build_null_stack
from repro.vnode.ufs_layer import UfsLayer, UfsVnode

__all__ = [
    "Credential",
    "DirEntry",
    "FileSystemLayer",
    "MountLayer",
    "MountVnode",
    "NullLayer",
    "OpCounters",
    "PassthroughVnode",
    "ROOT_CRED",
    "SetAttrs",
    "UfsLayer",
    "UfsVnode",
    "Vnode",
    "build_null_stack",
]
