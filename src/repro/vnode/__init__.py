"""Stackable vnode layer framework (paper Section 2)."""

from repro.vnode.context import ROOT_CRED, ROOT_CTX, Credential, OpContext
from repro.vnode.fusion import FusedStack, FusedVnode, fuse_stack
from repro.vnode.interface import (
    DirEntry,
    FileSystemLayer,
    OpCounters,
    SetAttrs,
    Vnode,
)
from repro.vnode.mount import MountLayer, MountVnode
from repro.vnode.passthrough import NullLayer, PassthroughVnode, build_null_stack
from repro.vnode.ufs_layer import UfsLayer, UfsVnode

__all__ = [
    "Credential",
    "DirEntry",
    "FileSystemLayer",
    "FusedStack",
    "FusedVnode",
    "fuse_stack",
    "MountLayer",
    "MountVnode",
    "NullLayer",
    "OpContext",
    "OpCounters",
    "PassthroughVnode",
    "ROOT_CRED",
    "ROOT_CTX",
    "SetAttrs",
    "UfsLayer",
    "UfsVnode",
    "Vnode",
    "build_null_stack",
]
