"""The null (pass-through) layer.

A layer that forwards every vnode operation unchanged to the layer below,
wrapping returned vnodes so the stack stays layered.  It demonstrates the
paper's transparency claim — "layers can indeed be transparently inserted
between other layers" — and its per-crossing cost is what benchmark E2
measures ("one additional procedure call, one pointer indirection, and
storage for another vnode block").
"""

from __future__ import annotations

from repro.ufs.inode import FileAttributes
from repro.vnode.interface import (
    ROOT_CRED,
    Credential,
    DirEntry,
    FileSystemLayer,
    SetAttrs,
    Vnode,
)


class PassthroughVnode(Vnode):
    """Wraps one lower vnode; every operation forwards after counting."""

    def __init__(self, layer: "NullLayer", lower: Vnode):
        self.layer = layer
        self.lower = lower

    def _wrap(self, lower: Vnode) -> "PassthroughVnode":
        return self.layer.wrap(lower)

    @staticmethod
    def _unwrap(node: Vnode) -> Vnode:
        """Peel our own wrapper off vnode-valued arguments."""
        return node.lower if isinstance(node, PassthroughVnode) else node

    # -- lifetime --

    def open(self, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("open")
        self.lower.open(cred)

    def close(self, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("close")
        self.lower.close(cred)

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")
        self.lower.inactive()

    # -- data --

    def read(self, offset: int, length: int, cred: Credential = ROOT_CRED) -> bytes:
        self.layer.counters.bump("read")
        return self.lower.read(offset, length, cred)

    def write(self, offset: int, data: bytes, cred: Credential = ROOT_CRED) -> int:
        self.layer.counters.bump("write")
        return self.lower.write(offset, data, cred)

    def truncate(self, size: int, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("truncate")
        self.lower.truncate(size, cred)

    def fsync(self, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("fsync")
        self.lower.fsync(cred)

    def ioctl(self, command: str, argument: object = None, cred: Credential = ROOT_CRED) -> object:
        self.layer.counters.bump("ioctl")
        return self.lower.ioctl(command, argument, cred)

    # -- attributes --

    def getattr(self, cred: Credential = ROOT_CRED) -> FileAttributes:
        self.layer.counters.bump("getattr")
        return self.lower.getattr(cred)

    def setattr(self, attrs: SetAttrs, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("setattr")
        self.lower.setattr(attrs, cred)

    def access(self, mode: int, cred: Credential = ROOT_CRED) -> bool:
        self.layer.counters.bump("access")
        return self.lower.access(mode, cred)

    # -- namespace --

    def lookup(self, name: str, cred: Credential = ROOT_CRED) -> Vnode:
        self.layer.counters.bump("lookup")
        return self._wrap(self.lower.lookup(name, cred))

    def create(self, name: str, perm: int = 0o644, cred: Credential = ROOT_CRED) -> Vnode:
        self.layer.counters.bump("create")
        return self._wrap(self.lower.create(name, perm, cred))

    def remove(self, name: str, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("remove")
        self.lower.remove(name, cred)

    def link(self, target: Vnode, name: str, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("link")
        self.lower.link(self._unwrap(target), name, cred)

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        cred: Credential = ROOT_CRED,
    ) -> None:
        self.layer.counters.bump("rename")
        self.lower.rename(src_name, self._unwrap(dst_dir), dst_name, cred)

    def mkdir(self, name: str, perm: int = 0o755, cred: Credential = ROOT_CRED) -> Vnode:
        self.layer.counters.bump("mkdir")
        return self._wrap(self.lower.mkdir(name, perm, cred))

    def rmdir(self, name: str, cred: Credential = ROOT_CRED) -> None:
        self.layer.counters.bump("rmdir")
        self.lower.rmdir(name, cred)

    def readdir(self, cred: Credential = ROOT_CRED) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        return self.lower.readdir(cred)

    def symlink(self, name: str, target: str, cred: Credential = ROOT_CRED) -> Vnode:
        self.layer.counters.bump("symlink")
        return self._wrap(self.lower.symlink(name, target, cred))

    def readlink(self, cred: Credential = ROOT_CRED) -> str:
        self.layer.counters.bump("readlink")
        return self.lower.readlink(cred)

    def __repr__(self) -> str:
        return f"PassthroughVnode({self.layer.layer_name}, {self.lower!r})"


class NullLayer(FileSystemLayer):
    """A file-system layer that adds nothing but a crossing.

    Stacking N of these over any other layer leaves behaviour unchanged
    while adding N crossings per operation — the measurable quantity in
    experiment E2.
    """

    layer_name = "null"

    def __init__(self, lower: FileSystemLayer, name: str = "null"):
        super().__init__()
        self.lower_layer = lower
        self.layer_name = name

    def wrap(self, lower: Vnode) -> PassthroughVnode:
        return PassthroughVnode(self, lower)

    def root(self) -> PassthroughVnode:
        return self.wrap(self.lower_layer.root())


def build_null_stack(base: FileSystemLayer, depth: int) -> FileSystemLayer:
    """Stack ``depth`` null layers over ``base`` and return the top layer."""
    layer = base
    for i in range(depth):
        layer = NullLayer(layer, name=f"null{i}")
    return layer
