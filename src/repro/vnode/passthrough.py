"""The null (pass-through) layer.

A layer that forwards every vnode operation unchanged to the layer below,
wrapping returned vnodes so the stack stays layered.  It demonstrates the
paper's transparency claim — "layers can indeed be transparently inserted
between other layers" — and its per-crossing cost is what benchmark E2
measures ("one additional procedure call, one pointer indirection, and
storage for another vnode block").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ufs.inode import FileAttributes
from repro.vnode.interface import (
    ROOT_CTX,
    DirEntry,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)

if TYPE_CHECKING:
    from repro.physical.wire import AttrBatch, BlockDigests, EntryId, SyncProbe


class PassthroughVnode(Vnode):
    """Wraps one lower vnode; every operation forwards after counting."""

    def __init__(self, layer: "NullLayer", lower: Vnode):
        self.layer = layer
        self.lower = lower

    def _wrap(self, lower: Vnode) -> "PassthroughVnode":
        return self.layer.wrap(lower)

    @staticmethod
    def _unwrap(node: Vnode) -> Vnode:
        """Peel our own wrapper off vnode-valued arguments."""
        return node.lower if isinstance(node, PassthroughVnode) else node

    # -- lifetime --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("open")
        self.lower.open(ctx)

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("close")
        self.lower.close(ctx)

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")
        self.lower.inactive()

    # -- data --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        self.layer.counters.bump("read")
        return self.lower.read(offset, length, ctx)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.counters.bump("write")
        return self.lower.write(offset, data, ctx)

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("truncate")
        self.lower.truncate(size, ctx)

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("fsync")
        self.lower.fsync(ctx)

    def ioctl(self, command: str, argument: object = None, ctx: OpContext = ROOT_CTX) -> object:
        self.layer.counters.bump("ioctl")
        return self.lower.ioctl(command, argument, ctx)

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        return self.lower.getattr(ctx)

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        self.lower.setattr(attrs, ctx)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("access")
        return self.lower.access(mode, ctx)

    # -- namespace --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        return self._wrap(self.lower.lookup(name, ctx))

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("create")
        return self._wrap(self.lower.create(name, perm, ctx))

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("remove")
        self.lower.remove(name, ctx)

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("link")
        self.lower.link(self._unwrap(target), name, ctx)

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        self.layer.counters.bump("rename")
        self.lower.rename(src_name, self._unwrap(dst_dir), dst_name, ctx)

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("mkdir")
        return self._wrap(self.lower.mkdir(name, perm, ctx))

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("rmdir")
        self.lower.rmdir(name, ctx)

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        return self.lower.readdir(ctx)

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("symlink")
        return self._wrap(self.lower.symlink(name, target, ctx))

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        self.layer.counters.bump("readlink")
        return self.lower.readlink(ctx)

    # -- Ficus extensions --

    def session_open(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("session_open")
        self.lower.session_open(fh, ctx)

    def session_close(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> bool:
        self.layer.counters.bump("session_close")
        return self.lower.session_close(fh, ctx)

    def getattrs_batch(
        self,
        fhs: list["EntryId"] | None = None,
        ctx: OpContext = ROOT_CTX,
    ) -> "AttrBatch":
        self.layer.counters.bump("getattrs_batch")
        return self.lower.getattrs_batch(fhs, ctx)

    def sync_probe(self, fh: "EntryId | None" = None, ctx: OpContext = ROOT_CTX) -> "SyncProbe":
        self.layer.counters.bump("sync_probe")
        return self.lower.sync_probe(fh, ctx)

    def block_digests(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> "BlockDigests":
        self.layer.counters.bump("block_digests")
        return self.lower.block_digests(fh, ctx)

    def read_blocks(
        self, fh: "EntryId", indices: list[int], ctx: OpContext = ROOT_CTX
    ) -> dict[int, bytes]:
        self.layer.counters.bump("read_blocks")
        return self.lower.read_blocks(fh, indices, ctx)

    def __repr__(self) -> str:
        return f"PassthroughVnode({self.layer.layer_name}, {self.lower!r})"


class NullLayer(FileSystemLayer):
    """A file-system layer that adds nothing but a crossing.

    Stacking N of these over any other layer leaves behaviour unchanged
    while adding N crossings per operation — the measurable quantity in
    experiment E2.
    """

    layer_name = "null"

    #: A pure pass-through interposes on nothing — fusion elides it entirely.
    INTERCEPTS: frozenset[str] = frozenset()

    def __init__(self, lower: FileSystemLayer, name: str = "null"):
        super().__init__()
        self.lower_layer = lower
        self.layer_name = name

    def wrap(self, lower: Vnode) -> PassthroughVnode:
        return PassthroughVnode(self, lower)

    def root(self) -> PassthroughVnode:
        return self.wrap(self.lower_layer.root())


def build_null_stack(base: FileSystemLayer, depth: int) -> FileSystemLayer:
    """Stack ``depth`` null layers over ``base`` and return the top layer."""
    layer = base
    for i in range(depth):
        layer = NullLayer(layer, name=f"null{i}")
    return layer
