"""Namespace composition: mounting layers into one vnode tree.

The vnode interface exists so SunOS could stitch "multiple file system
types" into one namespace (Kleiman [12]).  :class:`MountLayer` is that
mechanism for this framework: any :class:`FileSystemLayer` can be mounted
at a directory of a base layer, and lookups cross mount points
transparently — including mounting a *Ficus logical layer* into a local
UFS tree, which is exactly how a workstation would publish the replicated
namespace beside its private files.
"""

from __future__ import annotations

from repro.errors import CrossDevice, FileNotFound, InvalidArgument
from repro.ufs.inode import FileAttributes
from repro.vnode.interface import (
    ROOT_CTX,
    DirEntry,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)


def _split_mount_path(path: str) -> tuple[str, ...]:
    parts = tuple(p for p in path.split("/") if p)
    if not parts:
        raise InvalidArgument("cannot mount over the root")
    if any(p in (".", "..") for p in parts):
        raise InvalidArgument("mount paths may not contain . or ..")
    return parts


class MountLayer(FileSystemLayer):
    """A base layer with other layers grafted at chosen directories."""

    layer_name = "mount"

    def __init__(self, base: FileSystemLayer):
        super().__init__()
        self.base = base
        self._mounts: dict[tuple[str, ...], FileSystemLayer] = {}

    # -- mount table ---------------------------------------------------------

    def mount(self, path: str, layer: FileSystemLayer) -> None:
        """Graft ``layer`` at ``path`` (which must resolve to a directory
        of the base namespace — the classic mount-over-directory rule)."""
        parts = _split_mount_path(path)
        if parts in self._mounts:
            raise InvalidArgument(f"{path!r} is already a mount point")
        # validate against the COMPOSED namespace so mounts can nest
        node: Vnode = self.root()
        for part in parts:
            node = node.lookup(part)  # raises FileNotFound if absent
        if not node.is_dir:
            raise InvalidArgument(f"mount point {path!r} is not a directory")
        self._mounts[parts] = layer

    def unmount(self, path: str) -> None:
        parts = _split_mount_path(path)
        if self._mounts.pop(parts, None) is None:
            raise InvalidArgument(f"{path!r} is not a mount point")

    @property
    def mount_points(self) -> list[str]:
        return ["/" + "/".join(parts) for parts in sorted(self._mounts)]

    def _covering_mount(self, path: tuple[str, ...]) -> FileSystemLayer | None:
        return self._mounts.get(path)

    def _mount_owner(self, path: tuple[str, ...]) -> FileSystemLayer:
        """Which layer's objects live at ``path``: the layer of the
        longest mount-point prefix, or the base layer."""
        best: FileSystemLayer = self.base
        best_len = -1
        for mount_path, layer in self._mounts.items():
            if len(mount_path) > best_len and path[: len(mount_path)] == mount_path:
                best = layer
                best_len = len(mount_path)
        return best

    # -- layer interface -------------------------------------------------------

    def root(self) -> "MountVnode":
        return MountVnode(self, self.base.root(), ())


class MountVnode(Vnode):
    """Wraps a vnode of whichever layer owns this point in the namespace,
    remembering the path so lookups can detect mount crossings."""

    def __init__(self, layer: MountLayer, lower: Vnode, path: tuple[str, ...]):
        self.layer = layer
        self.lower = lower
        self.path = path

    def _wrap(self, lower: Vnode, path: tuple[str, ...]) -> "MountVnode":
        return MountVnode(self.layer, lower, path)

    @staticmethod
    def _unwrap(node: Vnode) -> Vnode:
        return node.lower if isinstance(node, MountVnode) else node

    # -- namespace: the interesting part --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        child_path = (*self.path, name)
        mounted = self.layer._covering_mount(child_path)
        if mounted is not None:
            # crossing a mount point: the mounted layer's root covers the
            # underlying directory
            return self._wrap(mounted.root(), child_path)
        return self._wrap(self.lower.lookup(name, ctx), child_path)

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("create")
        if self.layer._covering_mount((*self.path, name)) is not None:
            raise InvalidArgument(f"{name!r} is a mount point")
        return self._wrap(self.lower.create(name, perm, ctx), (*self.path, name))

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("mkdir")
        return self._wrap(self.lower.mkdir(name, perm, ctx), (*self.path, name))

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("remove")
        if self.layer._covering_mount((*self.path, name)) is not None:
            raise InvalidArgument(f"cannot remove mount point {name!r}")
        self.lower.remove(name, ctx)

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("rmdir")
        if self.layer._covering_mount((*self.path, name)) is not None:
            raise InvalidArgument(f"cannot rmdir mount point {name!r}")
        self.lower.rmdir(name, ctx)

    def rename(
        self, src_name: str, dst_dir: Vnode, dst_name: str, ctx: OpContext = ROOT_CTX
    ) -> None:
        self.layer.counters.bump("rename")
        if not isinstance(dst_dir, MountVnode):
            raise InvalidArgument("rename destination must be in the mounted namespace")
        if self.layer._mount_owner(self.path) is not self.layer._mount_owner(dst_dir.path):
            raise CrossDevice("rename across mount boundaries")
        self.lower.rename(src_name, self._unwrap(dst_dir), dst_name, ctx)

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("link")
        if not isinstance(target, MountVnode):
            raise InvalidArgument("link target must be in the mounted namespace")
        if self.layer._mount_owner(self.path) is not self.layer._mount_owner(target.path):
            raise CrossDevice("hard link across mount boundaries")
        self.lower.link(self._unwrap(target), name, ctx)

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        return self.lower.readdir(ctx)

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("symlink")
        return self._wrap(self.lower.symlink(name, target, ctx), (*self.path, name))

    # -- everything else passes straight through --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self.lower.open(ctx)

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.lower.close(ctx)

    def inactive(self) -> None:
        self.lower.inactive()

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        return self.lower.read(offset, length, ctx)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        return self.lower.write(offset, data, ctx)

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.lower.truncate(size, ctx)

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self.lower.fsync(ctx)

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        return self.lower.getattr(ctx)

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.lower.setattr(attrs, ctx)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        return self.lower.access(mode, ctx)

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        return self.lower.readlink(ctx)

    def __repr__(self) -> str:
        return f"MountVnode(/{'/'.join(self.path)})"
