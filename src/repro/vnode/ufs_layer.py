"""UFS as a vnode layer — the storage bottom of every Ficus stack.

"Ficus can use the UFS as its underlying nonvolatile storage service"
(paper Section 2.1).  This module adapts :class:`repro.ufs.Ufs` to the
vnode interface, making it a drop-in bottom layer.
"""

from __future__ import annotations

from repro.errors import FicusError, PermissionDenied
from repro.ufs import ROOT_INO, FileType, Ufs
from repro.ufs.inode import FileAttributes
from repro.vnode.interface import (
    ROOT_CTX,
    DirEntry,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)


class UfsVnode(Vnode):
    """A vnode backed directly by a UFS inode."""

    def __init__(self, layer: "UfsLayer", ino: int):
        self.layer = layer
        self.ino = ino

    @property
    def fs(self) -> Ufs:
        return self.layer.fs

    @property
    def cache_epoch(self) -> int:
        """Coherence stamp for decoded-object caches layered above this
        storage bottom (see :attr:`BufferCache.epoch`).  Layers that keep
        decoded metadata (the replica store) walk down to this provider
        so "buffer cache went cold" also invalidates their caches."""
        return self.fs.cache.epoch

    @property
    def caches_enabled(self) -> bool:
        """Whether the storage bottom caches at all (see
        :attr:`BufferCache.caching_enabled`)."""
        return self.fs.cache.caching_enabled

    def _node(self, ino: int) -> "UfsVnode":
        return UfsVnode(self.layer, ino)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UfsVnode) and other.layer is self.layer and other.ino == self.ino

    def __hash__(self) -> int:
        return hash((id(self.layer), self.ino))

    # -- lifetime: UFS keeps no open state, but honours the calls -------------

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("open")

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("close")

    def inactive(self) -> None:
        self.layer.counters.bump("inactive")

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("fsync")
        # write-through buffer cache: everything is already on the device

    # -- data --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        self.layer.counters.bump("read")
        return self.fs.read_file(self.ino, offset, length)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        self.layer.counters.bump("write")
        self.fs.write_file(self.ino, offset, data)
        return len(data)

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("truncate")
        self.fs.truncate_file(self.ino, size)

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        self.layer.counters.bump("getattr")
        return self.fs.getattr(self.ino)

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("setattr")
        if attrs.size is not None:
            self.fs.truncate_file(self.ino, attrs.size)
        if attrs.perm is not None or attrs.uid is not None:
            self.fs.setattr(self.ino, perm=attrs.perm, uid=attrs.uid)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        """Classic Unix permission check against owner/other bits."""
        self.layer.counters.bump("access")
        attrs = self.fs.getattr(self.ino)
        if ctx.cred.uid == 0:
            return True
        perm = attrs.perm
        shift = 6 if ctx.cred.uid == attrs.uid else 0
        return (perm >> shift) & mode == mode

    # -- namespace --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("lookup")
        return self._node(self.fs.lookup(self.ino, name))

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("create")
        return self._node(self.fs.create(self.ino, name, perm=perm, uid=ctx.cred.uid))

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("remove")
        self.fs.unlink(self.ino, name)

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("link")
        if not isinstance(target, UfsVnode) or target.layer is not self.layer:
            raise PermissionDenied("cross-layer hard link")
        self.fs.link(target.ino, self.ino, name)

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        self.layer.counters.bump("rename")
        if not isinstance(dst_dir, UfsVnode) or dst_dir.layer is not self.layer:
            raise PermissionDenied("cross-layer rename")
        self.fs.rename(self.ino, src_name, dst_dir.ino, dst_name)

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("mkdir")
        return self._node(self.fs.mkdir(self.ino, name, perm=perm, uid=ctx.cred.uid))

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self.layer.counters.bump("rmdir")
        self.fs.rmdir(self.ino, name)

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        self.layer.counters.bump("readdir")
        out = []
        for name, ino in sorted(self.fs.readdir(self.ino).items()):
            try:
                ftype = self.fs.getattr(ino).ftype
            except FicusError:
                ftype = FileType.NONE
            out.append(DirEntry(name=name, fileid=ino, ftype=ftype))
        return out

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        self.layer.counters.bump("symlink")
        return self._node(self.fs.symlink(self.ino, name, target, uid=ctx.cred.uid))

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        self.layer.counters.bump("readlink")
        return self.fs.readlink(self.ino)

    def __repr__(self) -> str:
        return f"UfsVnode(ino={self.ino})"


class UfsLayer(FileSystemLayer):
    """The UFS file system as a stackable vnode layer."""

    layer_name = "ufs"

    def __init__(self, fs: Ufs):
        super().__init__()
        self.fs = fs

    def root(self) -> UfsVnode:
        return UfsVnode(self, ROOT_INO)

    def vnode_for(self, ino: int) -> UfsVnode:
        """Re-materialize a vnode from a stable inode number (NFS server use)."""
        self.fs.get_inode(ino)  # validates liveness
        return UfsVnode(self, ino)
