"""The vnode interface (paper Section 2.1).

"The vnode interface is defined by a set of about two dozen services,
together with their calling syntax and parameters."  We reproduce that
contract: :class:`Vnode` declares the operations, and every layer — UFS,
NFS client, Ficus physical, Ficus logical — implements the *same* interface
above and below, which is what makes the layers stackable.

The symmetric-interface property is the whole point: a layer cannot tell
whether the layer beneath it is local UFS, another Ficus layer, or an NFS
hop to a different host.

Every operation takes an :class:`~repro.vnode.context.OpContext` carrying
identity, trace parentage, and cache-control flags; see that module.  The
interface also carries three operations the original SunOS set lacked but
Ficus needs first-class (rather than smuggled through ``lookup`` names):
``session_open``/``session_close`` for replica update sessions, and
``getattrs_batch`` for the batched attribute plane.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import NotSupported
from repro.ufs.inode import FileAttributes, FileType
from repro.vnode.context import ROOT_CRED, ROOT_CTX, Credential, OpContext

if TYPE_CHECKING:
    from repro.physical.wire import AttrBatch, BlockDigests, EntryId, SyncProbe

__all__ = [
    "Credential",
    "ROOT_CRED",
    "OpContext",
    "ROOT_CTX",
    "DirEntry",
    "SetAttrs",
    "OpCounters",
    "Vnode",
    "read_whole",
    "FileSystemLayer",
]


@dataclass(frozen=True)
class DirEntry:
    """One readdir result row."""

    name: str
    fileid: int
    ftype: FileType


@dataclass
class SetAttrs:
    """Fields settable via setattr; ``None`` means "leave unchanged"."""

    perm: int | None = None
    uid: int | None = None
    size: int | None = None


@dataclass
class OpCounters:
    """Per-layer count of vnode operations handled.

    The paper's Section 6 argues the cost of a layer crossing is "one
    additional procedure call, one pointer indirection, and storage for
    another vnode block"; counting crossings lets benchmark E2 report the
    measured overhead per crossing.
    """

    by_op: dict[str, int] = field(default_factory=dict)

    def bump(self, op: str) -> None:
        self.by_op[op] = self.by_op.get(op, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_op.values())


class Vnode(abc.ABC):
    """One file-system object as seen through the vnode interface.

    Concrete layers subclass this.  The default implementation of every
    operation raises :class:`~repro.errors.NotSupported`, mirroring a vnode
    ops vector with missing entries; layers override what they support.
    """

    #: Operations comprising the interface ("about two dozen services").
    OPERATIONS = (
        "open",
        "close",
        "read",
        "write",
        "ioctl",
        "select",
        "getattr",
        "setattr",
        "access",
        "lookup",
        "create",
        "remove",
        "link",
        "rename",
        "mkdir",
        "rmdir",
        "readdir",
        "symlink",
        "readlink",
        "fsync",
        "inactive",
        "bmap",
        "truncate",
        "sync",
        "session_open",
        "session_close",
        "getattrs_batch",
        "sync_probe",
        "block_digests",
        "read_blocks",
    )

    # -- object lifetime ----------------------------------------------------

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        """Prepare the object for I/O.  NFS famously drops this call."""
        raise NotSupported("open")

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        """Release the object.  NFS famously drops this call too."""
        raise NotSupported("close")

    def inactive(self) -> None:
        """Hint that no references remain (used for cache teardown)."""
        raise NotSupported("inactive")

    # -- data ----------------------------------------------------------------

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        raise NotSupported("read")

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        """Write bytes; returns the number written."""
        raise NotSupported("write")

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        raise NotSupported("truncate")

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        raise NotSupported("fsync")

    def ioctl(self, command: str, argument: object = None, ctx: OpContext = ROOT_CTX) -> object:
        raise NotSupported("ioctl")

    def select(self, which: str, ctx: OpContext = ROOT_CTX) -> bool:
        raise NotSupported("select")

    def bmap(self, file_block: int) -> int:
        raise NotSupported("bmap")

    def sync(self) -> None:
        raise NotSupported("sync")

    # -- attributes -------------------------------------------------------------

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        raise NotSupported("getattr")

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        raise NotSupported("setattr")

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        raise NotSupported("access")

    # -- namespace ---------------------------------------------------------------

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> "Vnode":
        raise NotSupported("lookup")

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> "Vnode":
        raise NotSupported("create")

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        raise NotSupported("remove")

    def link(self, target: "Vnode", name: str, ctx: OpContext = ROOT_CTX) -> None:
        raise NotSupported("link")

    def rename(
        self,
        src_name: str,
        dst_dir: "Vnode",
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        raise NotSupported("rename")

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> "Vnode":
        raise NotSupported("mkdir")

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        raise NotSupported("rmdir")

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        raise NotSupported("readdir")

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> "Vnode":
        raise NotSupported("symlink")

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        raise NotSupported("readlink")

    # -- Ficus extensions (first-class, not smuggled through lookup) -----------

    def session_open(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> None:
        """Begin an update session on the replica holding ``fh``.

        Directory vnodes implement this for their children; the physical
        layer coalesces version-vector bumps per open session (one bump at
        session close instead of one per write).
        """
        raise NotSupported("session_open")

    def session_close(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> bool:
        """End an update session; flushes the coalesced version bump.
        Returns True when the closing session updated the object."""
        raise NotSupported("session_close")

    def getattrs_batch(
        self,
        fhs: list["EntryId"] | None = None,
        ctx: OpContext = ROOT_CTX,
    ) -> "AttrBatch":
        """Fetch this directory's aux record plus its children's in one call.

        ``fhs=None`` means "all children stored here"; a list restricts the
        result.  This is the attribute plane: one RPC returns every version
        vector the logical layer needs for replica selection, replacing one
        encoded-lookup RPC per replica per open.
        """
        raise NotSupported("getattrs_batch")

    def sync_probe(self, fh: "EntryId | None" = None, ctx: OpContext = ROOT_CTX) -> "SyncProbe":
        """Fetch the recon digest of a directory subtree in one call.

        ``fh=None`` means this directory; otherwise any directory of the
        same volume replica.  Reconciliation compares the remote digest
        against its own before descending, so a converged subtree costs
        one probe instead of a directory read plus an attribute batch per
        directory (Merkle-style anti-entropy pruning).
        """
        raise NotSupported("sync_probe")

    def block_digests(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> "BlockDigests":
        """Content hashes of a stored file's fixed-size blocks.

        The reply carries the replica's version vector so the puller can
        detect an out-of-band change between its attribute fetch and this
        call and fall back to a whole-file copy.
        """
        raise NotSupported("block_digests")

    def read_blocks(
        self, fh: "EntryId", indices: list[int], ctx: OpContext = ROOT_CTX
    ) -> dict[int, bytes]:
        """Fetch selected fixed-size blocks of a stored file in one call."""
        raise NotSupported("read_blocks")

    # -- conveniences shared by all layers -----------------------------------------

    @property
    def is_dir(self) -> bool:
        return self.getattr().ftype == FileType.DIRECTORY

    def read_all(self, ctx: OpContext = ROOT_CTX) -> bytes:
        """Read the entire contents (getattr + read)."""
        return self.read(0, self.getattr(ctx).size, ctx)

    def walk(self, path: str, ctx: OpContext = ROOT_CTX) -> "Vnode":
        """Resolve a slash-separated relative path via repeated lookup."""
        node: Vnode = self
        for part in path.split("/"):
            if part:
                node = node.lookup(part, ctx)
        return node


def read_whole(vnode: "Vnode", chunk: int = 1 << 20, ctx: OpContext = ROOT_CTX) -> bytes:
    """Read a vnode to EOF without trusting getattr's size.

    Through an NFS hop, getattr may serve a *cached, stale* size (the
    uncontrollable caching the paper complains about in Section 2.2), so
    ``read_all`` can truncate or over-read a file that just changed.
    Reading fixed-size chunks until a short read sidesteps the attribute
    cache entirely.  Use this for anything mutable read across layers —
    Ficus directory files, auxiliary attributes, file pulls.
    """
    pieces = []
    offset = 0
    while True:
        data = vnode.read(offset, chunk, ctx)
        if not data:
            break
        pieces.append(data)
        offset += len(data)
        if len(data) < chunk:
            break
    return b"".join(pieces)


class FileSystemLayer(abc.ABC):
    """One layer in a vnode stack (a "virtual file system type").

    A layer exposes a root vnode; everything else is reached via lookup.
    Layers keep :class:`OpCounters` so experiments can observe crossings.
    """

    layer_name = "layer"

    #: Operations this layer interposes on (adds behaviour beyond forwarding).
    #: The conservative default is "everything": an unknown layer is assumed
    #: to care about every crossing, so mount-time fusion never skips it.
    #: Transparent layers narrow this set (the null layer to nothing) so the
    #: fused hot path can bypass their pure-forwarding crossings.
    INTERCEPTS: frozenset[str] = frozenset(Vnode.OPERATIONS)

    #: Class-wide count of interposition changes across ALL layers.  Fused
    #: stacks compare one integer per dispatch against this; only when it
    #: moved (rare: an enablement toggle somewhere) do they re-derive their
    #: own members' epochs.  Keeps the fused dispatch check O(1).
    _fusion_generation = 0

    def __init__(self) -> None:
        self.counters = OpCounters()
        #: Bumped whenever this layer's interposition behaviour changes
        #: (e.g. a monitor toggling off).  Fusion plans are stamped with the
        #: sum of their members' epochs and rebuilt on mismatch.
        self._fusion_epoch = 0

    def intercepted_ops(self) -> frozenset[str]:
        """The operations this layer currently interposes on.

        Layers whose interposition depends on runtime state (an enable
        flag, a key being loaded) override this and must call
        :meth:`invalidate_fusion` whenever the answer changes.
        """
        return self.INTERCEPTS

    def invalidate_fusion(self) -> None:
        """Force fused stacks over this layer to rebuild their plans."""
        self._fusion_epoch += 1
        FileSystemLayer._fusion_generation += 1

    @abc.abstractmethod
    def root(self) -> Vnode:
        """The root vnode of this layer."""

    def unmount(self) -> None:
        """Release resources (default: nothing to do)."""
