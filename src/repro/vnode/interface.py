"""The vnode interface (paper Section 2.1).

"The vnode interface is defined by a set of about two dozen services,
together with their calling syntax and parameters."  We reproduce that
contract: :class:`Vnode` declares the operations, and every layer — UFS,
NFS client, Ficus physical, Ficus logical — implements the *same* interface
above and below, which is what makes the layers stackable.

The symmetric-interface property is the whole point: a layer cannot tell
whether the layer beneath it is local UFS, another Ficus layer, or an NFS
hop to a different host.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import NotSupported
from repro.ufs.inode import FileAttributes, FileType


@dataclass(frozen=True)
class Credential:
    """Identity presented with each vnode call (cred in SunOS)."""

    uid: int = 0
    gids: tuple[int, ...] = ()


#: The default credential used when callers do not care about identity.
ROOT_CRED = Credential(uid=0)


@dataclass(frozen=True)
class DirEntry:
    """One readdir result row."""

    name: str
    fileid: int
    ftype: FileType


@dataclass
class SetAttrs:
    """Fields settable via setattr; ``None`` means "leave unchanged"."""

    perm: int | None = None
    uid: int | None = None
    size: int | None = None


@dataclass
class OpCounters:
    """Per-layer count of vnode operations handled.

    The paper's Section 6 argues the cost of a layer crossing is "one
    additional procedure call, one pointer indirection, and storage for
    another vnode block"; counting crossings lets benchmark E2 report the
    measured overhead per crossing.
    """

    by_op: dict[str, int] = field(default_factory=dict)

    def bump(self, op: str) -> None:
        self.by_op[op] = self.by_op.get(op, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_op.values())


class Vnode(abc.ABC):
    """One file-system object as seen through the vnode interface.

    Concrete layers subclass this.  The default implementation of every
    operation raises :class:`~repro.errors.NotSupported`, mirroring a vnode
    ops vector with missing entries; layers override what they support.
    """

    #: Operations comprising the interface ("about two dozen services").
    OPERATIONS = (
        "open",
        "close",
        "read",
        "write",
        "ioctl",
        "select",
        "getattr",
        "setattr",
        "access",
        "lookup",
        "create",
        "remove",
        "link",
        "rename",
        "mkdir",
        "rmdir",
        "readdir",
        "symlink",
        "readlink",
        "fsync",
        "inactive",
        "bmap",
        "truncate",
        "sync",
    )

    # -- object lifetime ----------------------------------------------------

    def open(self, cred: Credential = ROOT_CRED) -> None:
        """Prepare the object for I/O.  NFS famously drops this call."""
        raise NotSupported("open")

    def close(self, cred: Credential = ROOT_CRED) -> None:
        """Release the object.  NFS famously drops this call too."""
        raise NotSupported("close")

    def inactive(self) -> None:
        """Hint that no references remain (used for cache teardown)."""
        raise NotSupported("inactive")

    # -- data ----------------------------------------------------------------

    def read(self, offset: int, length: int, cred: Credential = ROOT_CRED) -> bytes:
        raise NotSupported("read")

    def write(self, offset: int, data: bytes, cred: Credential = ROOT_CRED) -> int:
        """Write bytes; returns the number written."""
        raise NotSupported("write")

    def truncate(self, size: int, cred: Credential = ROOT_CRED) -> None:
        raise NotSupported("truncate")

    def fsync(self, cred: Credential = ROOT_CRED) -> None:
        raise NotSupported("fsync")

    def ioctl(self, command: str, argument: object = None, cred: Credential = ROOT_CRED) -> object:
        raise NotSupported("ioctl")

    def select(self, which: str, cred: Credential = ROOT_CRED) -> bool:
        raise NotSupported("select")

    def bmap(self, file_block: int) -> int:
        raise NotSupported("bmap")

    def sync(self) -> None:
        raise NotSupported("sync")

    # -- attributes -------------------------------------------------------------

    def getattr(self, cred: Credential = ROOT_CRED) -> FileAttributes:
        raise NotSupported("getattr")

    def setattr(self, attrs: SetAttrs, cred: Credential = ROOT_CRED) -> None:
        raise NotSupported("setattr")

    def access(self, mode: int, cred: Credential = ROOT_CRED) -> bool:
        raise NotSupported("access")

    # -- namespace ---------------------------------------------------------------

    def lookup(self, name: str, cred: Credential = ROOT_CRED) -> "Vnode":
        raise NotSupported("lookup")

    def create(self, name: str, perm: int = 0o644, cred: Credential = ROOT_CRED) -> "Vnode":
        raise NotSupported("create")

    def remove(self, name: str, cred: Credential = ROOT_CRED) -> None:
        raise NotSupported("remove")

    def link(self, target: "Vnode", name: str, cred: Credential = ROOT_CRED) -> None:
        raise NotSupported("link")

    def rename(
        self,
        src_name: str,
        dst_dir: "Vnode",
        dst_name: str,
        cred: Credential = ROOT_CRED,
    ) -> None:
        raise NotSupported("rename")

    def mkdir(self, name: str, perm: int = 0o755, cred: Credential = ROOT_CRED) -> "Vnode":
        raise NotSupported("mkdir")

    def rmdir(self, name: str, cred: Credential = ROOT_CRED) -> None:
        raise NotSupported("rmdir")

    def readdir(self, cred: Credential = ROOT_CRED) -> list[DirEntry]:
        raise NotSupported("readdir")

    def symlink(self, name: str, target: str, cred: Credential = ROOT_CRED) -> "Vnode":
        raise NotSupported("symlink")

    def readlink(self, cred: Credential = ROOT_CRED) -> str:
        raise NotSupported("readlink")

    # -- conveniences shared by all layers -----------------------------------------

    @property
    def is_dir(self) -> bool:
        return self.getattr().ftype == FileType.DIRECTORY

    def read_all(self, cred: Credential = ROOT_CRED) -> bytes:
        """Read the entire contents (getattr + read)."""
        return self.read(0, self.getattr(cred).size, cred)

    def walk(self, path: str, cred: Credential = ROOT_CRED) -> "Vnode":
        """Resolve a slash-separated relative path via repeated lookup."""
        node: Vnode = self
        for part in path.split("/"):
            if part:
                node = node.lookup(part, cred)
        return node


def read_whole(vnode: "Vnode", chunk: int = 1 << 20, cred: Credential = ROOT_CRED) -> bytes:
    """Read a vnode to EOF without trusting getattr's size.

    Through an NFS hop, getattr may serve a *cached, stale* size (the
    uncontrollable caching the paper complains about in Section 2.2), so
    ``read_all`` can truncate or over-read a file that just changed.
    Reading fixed-size chunks until a short read sidesteps the attribute
    cache entirely.  Use this for anything mutable read across layers —
    Ficus directory files, auxiliary attributes, file pulls.
    """
    pieces = []
    offset = 0
    while True:
        data = vnode.read(offset, chunk, cred)
        if not data:
            break
        pieces.append(data)
        offset += len(data)
        if len(data) < chunk:
            break
    return b"".join(pieces)


class FileSystemLayer(abc.ABC):
    """One layer in a vnode stack (a "virtual file system type").

    A layer exposes a root vnode; everything else is reached via lookup.
    Layers keep :class:`OpCounters` so experiments can observe crossings.
    """

    layer_name = "layer"

    def __init__(self) -> None:
        self.counters = OpCounters()

    @abc.abstractmethod
    def root(self) -> Vnode:
        """The root vnode of this layer."""

    def unmount(self) -> None:
        """Release resources (default: nothing to do)."""
