"""The per-operation context threaded through every vnode call.

The paper's vnode interface passes a bare SunOS ``cred`` with each call.
That worked until layers needed to carry *more* than identity across the
stack — trace context for the telemetry subsystem, replica preferences for
the logical layer, cache-control flags for the attribute plane.  Rather
than growing N ad-hoc side channels (a dedicated trace RPC kwarg was the
first), every operation now takes one :class:`OpContext` that aggregates:

* ``cred`` — the classic identity (uid + groups);
* ``trace`` — distributed-trace parentage, propagated across the NFS hop;
* ``replica_hint`` — a preferred host for replica selection;
* ``no_cache`` — bypass the logical layer's version-vector cache.

The context is immutable (``with_*`` constructors derive variants) and has
a compact wire form so the NFS client can ship it as a single structured
RPC field instead of smuggling pieces through names and kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.telemetry import TraceContext


@dataclass(frozen=True)
class Credential:
    """Identity presented with each vnode call (cred in SunOS)."""

    uid: int = 0
    gids: tuple[int, ...] = ()


#: The default credential used when callers do not care about identity.
ROOT_CRED = Credential(uid=0)


@dataclass(frozen=True)
class OpContext:
    """Everything a vnode operation carries besides its own arguments."""

    cred: Credential = ROOT_CRED
    trace: TraceContext | None = None
    replica_hint: str | None = None
    no_cache: bool = False

    # -- derivation (immutability means "modify" = "derive") ----------------

    def with_cred(self, cred: Credential) -> "OpContext":
        return replace(self, cred=cred)

    def with_trace(self, trace: TraceContext | None) -> "OpContext":
        return replace(self, trace=trace)

    def with_no_cache(self, no_cache: bool = True) -> "OpContext":
        return replace(self, no_cache=no_cache)

    # -- wire form (one structured field on the NFS RPC) --------------------

    def to_wire(self) -> dict[str, object]:
        """Compact dict form; omits defaulted fields to keep RPCs small.

        The context is frozen, so the encoded form is computed once and
        cached — a session's worth of NFS RPCs reuses one dict instead of
        rebuilding it per call.  Receivers treat the payload as read-only
        (:meth:`from_wire` only reads it), so sharing is safe.
        """
        cached = self.__dict__.get("_wire")
        if cached is not None:
            return cached
        wire: dict[str, object] = {}
        if self.cred.uid:
            wire["u"] = self.cred.uid
        if self.cred.gids:
            wire["g"] = list(self.cred.gids)
        if self.trace is not None:
            wire["t"] = self.trace.to_wire()
        if self.replica_hint is not None:
            wire["rh"] = self.replica_hint
        if self.no_cache:
            wire["nc"] = True
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_wire(cls, payload: object) -> "OpContext":
        """Rebuild a context from its wire form; malformed input degrades
        to the defaults rather than failing the whole RPC."""
        if not isinstance(payload, dict):
            return ROOT_CTX
        uid = payload.get("u", 0)
        gids = payload.get("g", ())
        try:
            cred = Credential(uid=int(uid), gids=tuple(int(g) for g in gids))
        except (TypeError, ValueError):
            cred = ROOT_CRED
        trace = TraceContext.from_wire(payload.get("t"))
        hint = payload.get("rh")
        return cls(
            cred=cred,
            trace=trace,
            replica_hint=hint if isinstance(hint, str) else None,
            no_cache=bool(payload.get("nc", False)),
        )


#: The default context: root identity, no trace, no hints.
ROOT_CTX = OpContext()
