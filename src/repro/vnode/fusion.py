"""Mount-time layer fusion — collapse pure-passthrough crossings.

The paper (Section 6) prices a layer crossing at "one additional procedure
call, one pointer indirection, and storage for another vnode block" and
argues the cost is tolerable because stacks are short.  Stacks in this
reproduction are not always short: a replicated volume viewed through
auth + crypt + monitor crosses six layers before touching storage, and
most of those crossings forward most operations unchanged.

Fusion removes the crossings that provably do nothing.  At fuse time the
stack's transparent prefix (every :class:`NullLayer` descendant above the
first opaque layer) declares, per operation, whether it interposes
(:meth:`FileSystemLayer.intercepted_ops`).  The fused vnode then
dispatches each operation either

* straight to the base vnode (no member intercepts it — zero transparent
  crossings), or
* through a *shortened* wrapped chain containing only the members that do
  intercept it (a disabled monitor, a null layer, crypt's non-data ops
  all drop out).

Correctness contract: a fused stack returns byte-identical results,
raises the same errors, and produces the same interposition side effects
(auth denials, crypt transforms, monitor profiles when enabled) as the
unfused stack.  What it deliberately omits is the per-crossing
bookkeeping of *elided* members — their ``counters`` no longer see fused
ops, which is the point (E2 measures unfused stacks; fusion is opt-in
via :func:`fuse_stack`).

Plans are stamped with the sum of the member layers' ``_fusion_epoch``
values; a layer whose interposition changes at runtime (e.g.
:meth:`MonitorLayer.set_enabled`) bumps its epoch and every fused stack
over it rebuilds its plan on the next dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ufs.inode import FileAttributes
from repro.vnode.interface import (
    ROOT_CTX,
    DirEntry,
    FileSystemLayer,
    OpContext,
    SetAttrs,
    Vnode,
)
from repro.vnode.passthrough import NullLayer, PassthroughVnode

if TYPE_CHECKING:
    from repro.physical.wire import AttrBatch, BlockDigests, EntryId, SyncProbe

__all__ = ["FusedStack", "FusedVnode", "fuse_stack"]


def fuse_stack(top: FileSystemLayer) -> "FusedStack":
    """Fuse the transparent prefix of ``top``'s stack into one layer.

    The returned layer is a drop-in replacement for ``top``: same root,
    same semantics, fewer crossings.  Layers below the first opaque layer
    (Ficus logical, a mount table, UFS...) are untouched — fusion only
    ever elides :class:`NullLayer` descendants, whose wrap/forward
    behaviour is mechanical.
    """
    return FusedStack(top)


class FusedStack(FileSystemLayer):
    """A fused view over a stack's transparent prefix.

    Keeps a per-operation dispatch plan mapping each vnode operation to
    the tuple of member layers (top to bottom) that intercept it.  The
    plan is rebuilt whenever a member's fusion epoch changes.
    """

    layer_name = "fused"

    def __init__(self, top: FileSystemLayer):
        super().__init__()
        members: list[NullLayer] = []
        layer = top
        while isinstance(layer, NullLayer):
            members.append(layer)
            layer = layer.lower_layer
        self.top = top
        #: transparent members, top to bottom (possibly empty)
        self.members: tuple[NullLayer, ...] = tuple(members)
        #: first opaque layer — the dispatch target for fully fused ops
        self.base_layer: FileSystemLayer = layer
        self._plan: dict[str, tuple[NullLayer, ...]] = {}
        self._plan_stamp = -1
        self._seen_generation = -1
        #: dispatches that skipped every transparent crossing
        self.fused_dispatches = 0
        #: dispatches routed through a (shortened) interposing chain
        self.chained_dispatches = 0
        #: dispatch-plan rebuilds (1 = initial build; more = invalidations)
        self.rebuilds = 0

    def _stamp(self) -> int:
        return sum(member._fusion_epoch for member in self.members)

    def plan(self) -> dict[str, tuple[NullLayer, ...]]:
        """The current per-op dispatch plan, rebuilt if any member changed.

        The steady-state check is one class-attribute read and compare;
        the per-member epoch sum only runs after SOME layer, anywhere,
        invalidated fusion — and the plan is rebuilt only when one of
        *this* stack's members was among them.
        """
        generation = FileSystemLayer._fusion_generation
        if generation == self._seen_generation and self._plan:
            return self._plan
        stamp = self._stamp()
        if stamp != self._plan_stamp or not self._plan:
            plan: dict[str, tuple[NullLayer, ...]] = {}
            for op in Vnode.OPERATIONS:
                plan[op] = tuple(
                    member for member in self.members if op in member.intercepted_ops()
                )
            self._plan = plan
            self._plan_stamp = stamp
            self.rebuilds += 1
        self._seen_generation = generation
        return self._plan

    def root(self) -> "FusedVnode":
        return FusedVnode(self, self.base_layer.root())

    def hit_rate(self) -> float:
        """Fraction of dispatches that crossed zero transparent layers."""
        total = self.fused_dispatches + self.chained_dispatches
        return self.fused_dispatches / total if total else 0.0

    def stats(self) -> dict[str, float | int]:
        return {
            "members": len(self.members),
            "fused_dispatches": self.fused_dispatches,
            "chained_dispatches": self.chained_dispatches,
            "hit_rate": self.hit_rate(),
            "plan_rebuilds": self.rebuilds,
        }


def _unwrap_to_base(node: Vnode) -> Vnode:
    """Peel transparent wrappers down to the opaque base vnode."""
    while isinstance(node, PassthroughVnode):
        node = node.lower
    return node


class FusedVnode(Vnode):
    """A vnode dispatching through the fused plan.

    Holds the *base-layer* vnode and, per interposing chain actually in
    use, a lazily built wrapped vnode (``chain[-1].wrap`` innermost,
    ``chain[0].wrap`` outermost) so interposed ops run the exact same
    layer code they would unfused — just without the transparent hops.
    """

    def __init__(self, stack: FusedStack, base: Vnode):
        self.layer = stack
        self.base = base
        # wrapped-chain memo, keyed by the chain tuple (plans are rebuilt
        # on invalidation, producing new tuples, so stale chains age out)
        self._wrapped: dict[tuple[NullLayer, ...], Vnode] = {}

    def _target(self, op: str) -> Vnode:
        """The vnode that should execute ``op`` — base or wrapped chain."""
        chain = self.layer.plan()[op]
        if not chain:
            self.layer.fused_dispatches += 1
            return self.base
        self.layer.chained_dispatches += 1
        wrapped = self._wrapped.get(chain)
        if wrapped is None:
            wrapped = self.base
            for member in reversed(chain):
                wrapped = member.wrap(wrapped)
            self._wrapped[chain] = wrapped
        return wrapped

    def _refuse(self, result: Vnode) -> "FusedVnode":
        """Re-fuse a vnode-valued result (peeling any chain wrappers)."""
        return FusedVnode(self.layer, _unwrap_to_base(result))

    @staticmethod
    def _unfuse_arg(node: Vnode) -> Vnode:
        """Lower a vnode-valued argument to its base for dispatch."""
        return node.base if isinstance(node, FusedVnode) else node

    # -- lifetime --

    def open(self, ctx: OpContext = ROOT_CTX) -> None:
        self._target("open").open(ctx)

    def close(self, ctx: OpContext = ROOT_CTX) -> None:
        self._target("close").close(ctx)

    def inactive(self) -> None:
        self._target("inactive").inactive()

    # -- data --

    def read(self, offset: int, length: int, ctx: OpContext = ROOT_CTX) -> bytes:
        return self._target("read").read(offset, length, ctx)

    def write(self, offset: int, data: bytes, ctx: OpContext = ROOT_CTX) -> int:
        return self._target("write").write(offset, data, ctx)

    def truncate(self, size: int, ctx: OpContext = ROOT_CTX) -> None:
        self._target("truncate").truncate(size, ctx)

    def fsync(self, ctx: OpContext = ROOT_CTX) -> None:
        self._target("fsync").fsync(ctx)

    def ioctl(self, command: str, argument: object = None, ctx: OpContext = ROOT_CTX) -> object:
        return self._target("ioctl").ioctl(command, argument, ctx)

    # -- attributes --

    def getattr(self, ctx: OpContext = ROOT_CTX) -> FileAttributes:
        return self._target("getattr").getattr(ctx)

    def setattr(self, attrs: SetAttrs, ctx: OpContext = ROOT_CTX) -> None:
        self._target("setattr").setattr(attrs, ctx)

    def access(self, mode: int, ctx: OpContext = ROOT_CTX) -> bool:
        return self._target("access").access(mode, ctx)

    # -- namespace --

    def lookup(self, name: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self._refuse(self._target("lookup").lookup(name, ctx))

    def create(self, name: str, perm: int = 0o644, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self._refuse(self._target("create").create(name, perm, ctx))

    def remove(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._target("remove").remove(name, ctx)

    def link(self, target: Vnode, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._target("link").link(self._unfuse_arg(target), name, ctx)

    def rename(
        self,
        src_name: str,
        dst_dir: Vnode,
        dst_name: str,
        ctx: OpContext = ROOT_CTX,
    ) -> None:
        self._target("rename").rename(src_name, self._unfuse_arg(dst_dir), dst_name, ctx)

    def mkdir(self, name: str, perm: int = 0o755, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self._refuse(self._target("mkdir").mkdir(name, perm, ctx))

    def rmdir(self, name: str, ctx: OpContext = ROOT_CTX) -> None:
        self._target("rmdir").rmdir(name, ctx)

    def readdir(self, ctx: OpContext = ROOT_CTX) -> list[DirEntry]:
        return self._target("readdir").readdir(ctx)

    def symlink(self, name: str, target: str, ctx: OpContext = ROOT_CTX) -> Vnode:
        return self._refuse(self._target("symlink").symlink(name, target, ctx))

    def readlink(self, ctx: OpContext = ROOT_CTX) -> str:
        return self._target("readlink").readlink(ctx)

    # -- Ficus extensions --

    def session_open(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> None:
        self._target("session_open").session_open(fh, ctx)

    def session_close(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> bool:
        return self._target("session_close").session_close(fh, ctx)

    def getattrs_batch(
        self,
        fhs: list["EntryId"] | None = None,
        ctx: OpContext = ROOT_CTX,
    ) -> "AttrBatch":
        return self._target("getattrs_batch").getattrs_batch(fhs, ctx)

    def sync_probe(self, fh: "EntryId | None" = None, ctx: OpContext = ROOT_CTX) -> "SyncProbe":
        return self._target("sync_probe").sync_probe(fh, ctx)

    def block_digests(self, fh: "EntryId", ctx: OpContext = ROOT_CTX) -> "BlockDigests":
        return self._target("block_digests").block_digests(fh, ctx)

    def read_blocks(
        self, fh: "EntryId", indices: list[int], ctx: OpContext = ROOT_CTX
    ) -> dict[int, bytes]:
        return self._target("read_blocks").read_blocks(fh, indices, ctx)

    def __repr__(self) -> str:
        return f"FusedVnode({len(self.layer.members)} members, {self.base!r})"
